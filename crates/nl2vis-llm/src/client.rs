//! The model-client abstraction: everything downstream (evaluation harness,
//! repair strategies, user-study simulator) talks to an [`LlmClient`], so a
//! simulated model, an HTTP-fronted model, or a real remote endpoint are
//! interchangeable.
//!
//! Remote backends can fail for reasons the model is not responsible for —
//! a refused connection, a stalled socket, a 5xx from the serving layer.
//! Those failures must never be scored as model output (the paper's
//! Execution Accuracy and failure taxonomy both assume every scored
//! completion is something the model actually said), so the trait carries a
//! *typed* completion path, [`LlmClient::try_complete_with`], whose error
//! arm is a [`TransportError`]. Scoring code (the eval runner, the
//! pipeline) uses the typed path; the infallible `complete` surface remains
//! for display-only callers and for backends that cannot fail.

use crate::sim::{GenOptions, SimLlm};

/// Why a completion never produced model output.
///
/// The distinction that matters downstream is *attribution*: all of these
/// mean the infrastructure failed, so the request lands in the
/// `error.transport` bucket instead of the model-failure taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// A read/write/connect deadline expired.
    Timeout,
    /// The connection could not be established.
    Connect,
    /// The peer closed the connection before sending a response.
    ConnectionClosed,
    /// The server answered with a non-2xx status.
    Status(u16),
    /// The response violated the HTTP or JSON protocol.
    Protocol,
    /// Any other socket-level failure.
    Io,
}

impl std::fmt::Display for TransportErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportErrorKind::Timeout => write!(f, "timeout"),
            TransportErrorKind::Connect => write!(f, "connect"),
            TransportErrorKind::ConnectionClosed => write!(f, "connection-closed"),
            TransportErrorKind::Status(code) => write!(f, "status-{code}"),
            TransportErrorKind::Protocol => write!(f, "protocol"),
            TransportErrorKind::Io => write!(f, "io"),
        }
    }
}

/// A completion request that failed below the model: no text was generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// What went wrong.
    pub kind: TransportErrorKind,
    /// How many attempts were made before giving up (1 = no retries).
    pub attempts: u32,
    /// Human-readable detail of the last failure.
    pub message: String,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transport error ({}, {} attempt{}): {}",
            self.kind,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl std::error::Error for TransportError {}

/// The typed result of a completion call: model text, or a transport
/// failure that must be attributed to the infrastructure.
pub type CompletionOutcome = Result<String, TransportError>;

/// A text-completion model.
pub trait LlmClient {
    /// Completes a prompt.
    fn complete(&self, prompt: &str) -> String;

    /// Model identifier.
    fn name(&self) -> &str;

    /// Completes with generation options. Backends that cannot honor the
    /// options (e.g. remote HTTP models) fall back to plain completion.
    fn complete_with(&self, prompt: &str, _opts: &GenOptions) -> String {
        self.complete(prompt)
    }

    /// Completes a prompt, surfacing transport failures as a typed error
    /// instead of folding them into the completion text. Local backends
    /// cannot fail and use this default; remote backends override it.
    ///
    /// Scoring paths (the eval runner, the pipeline) must call this, never
    /// `complete`, so infrastructure failures land in `error.transport`
    /// rather than the model-failure counts.
    fn try_complete_with(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        Ok(self.complete_with(prompt, opts))
    }
}

/// Boxed clients forward to their contents, so wrappers generic over
/// `C: LlmClient` (retry, caching) compose with `Box<dyn LlmClient>` too.
impl<T: LlmClient + ?Sized> LlmClient for Box<T> {
    fn complete(&self, prompt: &str) -> String {
        (**self).complete(prompt)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn complete_with(&self, prompt: &str, opts: &GenOptions) -> String {
        (**self).complete_with(prompt, opts)
    }

    fn try_complete_with(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        (**self).try_complete_with(prompt, opts)
    }
}

impl LlmClient for SimLlm {
    fn complete(&self, prompt: &str) -> String {
        SimLlm::complete(self, prompt)
    }

    fn name(&self) -> &str {
        self.profile.name
    }

    fn complete_with(&self, prompt: &str, opts: &GenOptions) -> String {
        SimLlm::complete_with(self, prompt, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelProfile;

    #[test]
    fn sim_llm_implements_client() {
        let llm = SimLlm::new(ModelProfile::gpt_4(), 1);
        let client: &dyn LlmClient = &llm;
        assert_eq!(client.name(), "gpt-4");
        let out = client.complete("not a prompt");
        assert!(!out.is_empty());
    }

    #[test]
    fn local_backends_never_fail_the_typed_path() {
        let llm = SimLlm::new(ModelProfile::gpt_4(), 1);
        let client: &dyn LlmClient = &llm;
        let out = client
            .try_complete_with("not a prompt", &GenOptions::default())
            .expect("a local model has no transport");
        assert_eq!(out, client.complete("not a prompt"));
    }

    #[test]
    fn transport_error_display_is_informative() {
        let e = TransportError {
            kind: TransportErrorKind::Status(503),
            attempts: 3,
            message: "http 503: overloaded".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("status-503"), "{text}");
        assert!(text.contains("3 attempts"), "{text}");
        let single = TransportError {
            kind: TransportErrorKind::Timeout,
            attempts: 1,
            message: "read deadline".to_string(),
        };
        assert!(single.to_string().contains("1 attempt)"));
    }
}
