//! The model-client abstraction: everything downstream (evaluation harness,
//! repair strategies, user-study simulator) talks to an [`LlmClient`], so a
//! simulated model, an HTTP-fronted model, or a real remote endpoint are
//! interchangeable.

use crate::sim::{GenOptions, SimLlm};

/// A text-completion model.
pub trait LlmClient {
    /// Completes a prompt.
    fn complete(&self, prompt: &str) -> String;

    /// Model identifier.
    fn name(&self) -> &str;

    /// Completes with generation options. Backends that cannot honor the
    /// options (e.g. remote HTTP models) fall back to plain completion.
    fn complete_with(&self, prompt: &str, _opts: &GenOptions) -> String {
        self.complete(prompt)
    }
}

impl LlmClient for SimLlm {
    fn complete(&self, prompt: &str) -> String {
        SimLlm::complete(self, prompt)
    }

    fn name(&self) -> &str {
        self.profile.name
    }

    fn complete_with(&self, prompt: &str, opts: &GenOptions) -> String {
        SimLlm::complete_with(self, prompt, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelProfile;

    #[test]
    fn sim_llm_implements_client() {
        let llm = SimLlm::new(ModelProfile::gpt_4(), 1);
        let client: &dyn LlmClient = &llm;
        assert_eq!(client.name(), "gpt-4");
        let out = client.complete("not a prompt");
        assert!(!out.is_empty());
    }
}
