//! A minimal OpenAI-compatible HTTP transport.
//!
//! The paper drives GPT-3.5/GPT-4 through the OpenAI completions API over
//! HTTPS. This module reproduces that wire surface with a small HTTP/1.1
//! implementation over `std::net`: a [`CompletionServer`] that fronts a
//! [`SimLlm`], and a [`HttpLlmClient`] that speaks the same
//! `POST /v1/completions` JSON protocol. The rest of the system only sees
//! the [`crate::client::LlmClient`] trait, so swapping the
//! simulated backend for a real endpoint is a URL change.

use crate::client::LlmClient;
use crate::sim::SimLlm;
use nl2vis_data::Json;
use nl2vis_obs as obs;
use nl2vis_obs::MetricsRegistry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Errors from the HTTP layer.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed HTTP traffic.
    Protocol(String),
    /// Non-2xx status.
    Status(u16, String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Protocol(m) => write!(f, "protocol error: {m}"),
            HttpError::Status(code, body) => write!(f, "http {code}: {body}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// A completion server exposing a [`SimLlm`] on `127.0.0.1`.
///
/// Each connection is served on its own thread (concurrent clients are
/// never head-of-line blocked behind a slow completion), and every request
/// is instrumented against a shared [`MetricsRegistry`]:
///
/// - `llm.requests_total` / `llm.request_latency_us` — completion calls;
/// - `server.http_requests_total`, `llm.status_<code>` — all traffic;
/// - `server.active_connections` / `server.concurrent_peak` — in-flight
///   connection gauge and its high-water mark;
/// - one `llm` access-log event per request on the installed sink.
///
/// Besides the OpenAI-compatible surface, the server exposes
/// `GET /metrics` (plain-text exposition of the registry) and
/// `GET /healthz`.
pub struct CompletionServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    registry: Arc<MetricsRegistry>,
}

impl CompletionServer {
    /// Starts the server on an ephemeral local port, instrumented against
    /// the process-wide global registry.
    pub fn start(llm: SimLlm) -> Result<CompletionServer, HttpError> {
        CompletionServer::start_with_registry(llm, Arc::clone(obs::global()))
    }

    /// Starts the server against an explicit registry (test isolation, or
    /// one registry per hosted model).
    pub fn start_with_registry(
        llm: SimLlm,
        registry: Arc<MetricsRegistry>,
    ) -> Result<CompletionServer, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_list = Arc::clone(&connections);
        let reg = Arc::clone(&registry);
        let llm = Arc::new(llm);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let llm = Arc::clone(&llm);
                        let reg = Arc::clone(&reg);
                        let worker = std::thread::spawn(move || {
                            let active = reg.gauge("server.active_connections");
                            let now_active = active.add(1);
                            reg.gauge("server.concurrent_peak").set_max(now_active);
                            let _ = handle_connection(stream, &llm, &reg);
                            active.add(-1);
                        });
                        let mut conns = conn_list.lock().expect("connection list");
                        conns.retain(|h| !h.is_finished());
                        conns.push(worker);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(CompletionServer {
            addr,
            stop,
            handle: Some(handle),
            connections,
            registry,
        })
    }

    /// The server's base URL host:port.
    pub fn address(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The registry this server records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl Drop for CompletionServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.connections.lock().expect("connection list"));
        for c in conns {
            let _ = c.join();
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    llm: &SimLlm,
    registry: &MetricsRegistry,
) -> Result<(), HttpError> {
    let started = Instant::now();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body).to_string();

    let (status, response_body, content_type) = route(&method, &path, &body, llm, registry);

    registry.counter("server.http_requests_total").inc();
    registry.counter(&format!("llm.status_{status}")).inc();
    let elapsed = started.elapsed();
    if method == "POST" && path == "/v1/completions" {
        registry.counter("llm.requests_total").inc();
        registry
            .histogram("llm.request_latency_us")
            .record_duration(elapsed);
    }
    obs::log(
        "llm",
        "access",
        vec![
            ("method".to_string(), method),
            ("path".to_string(), path),
            ("status".to_string(), status.to_string()),
            ("bytes".to_string(), response_body.len().to_string()),
            ("duration_us".to_string(), elapsed.as_micros().to_string()),
        ],
    );

    let mut out = stream;
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{response_body}",
        match status {
            200 => "OK",
            404 => "Not Found",
            _ => "Bad Request",
        },
        response_body.len()
    )?;
    out.flush()?;
    Ok(())
}

const JSON: &str = "application/json";
const TEXT: &str = "text/plain; charset=utf-8";

fn route(
    method: &str,
    path: &str,
    body: &str,
    llm: &SimLlm,
    registry: &MetricsRegistry,
) -> (u16, String, &'static str) {
    match (method, path) {
        ("POST", "/v1/completions") => match Json::parse(body) {
            Ok(req) => {
                let prompt = req.get("prompt").and_then(Json::as_str).unwrap_or("");
                let requested_model = req
                    .get("model")
                    .and_then(Json::as_str)
                    .unwrap_or(llm.profile.name);
                if requested_model != llm.profile.name {
                    let err = Json::object(vec![(
                        "error",
                        Json::from(format!("model `{requested_model}` not hosted here").as_str()),
                    )]);
                    return (400, err.to_compact(), JSON);
                }
                let completion = llm.complete(prompt);
                let response = Json::object(vec![
                    ("object", Json::from("text_completion")),
                    ("model", Json::from(llm.profile.name)),
                    (
                        "choices",
                        Json::Array(vec![Json::object(vec![
                            ("text", Json::from(completion.as_str())),
                            ("index", Json::from(0i64)),
                            ("finish_reason", Json::from("stop")),
                        ])]),
                    ),
                ]);
                (200, response.to_compact(), JSON)
            }
            Err(e) => (
                400,
                Json::object(vec![("error", Json::from(e.to_string().as_str()))]).to_compact(),
                JSON,
            ),
        },
        ("GET", "/v1/models") => {
            let response = Json::object(vec![(
                "data",
                Json::Array(vec![Json::object(vec![(
                    "id",
                    Json::from(llm.profile.name),
                )])]),
            )]);
            (200, response.to_compact(), JSON)
        }
        ("GET", "/metrics") => (200, obs::report::render_exposition(registry), TEXT),
        ("GET", "/healthz") => (
            200,
            Json::object(vec![
                ("status", Json::from("ok")),
                ("model", Json::from(llm.profile.name)),
            ])
            .to_compact(),
            JSON,
        ),
        _ => (404, r#"{"error":"not found"}"#.to_string(), JSON),
    }
}

/// A client for the completions protocol.
pub struct HttpLlmClient {
    addr: std::net::SocketAddr,
    /// Model name sent with each request.
    pub model: String,
}

impl HttpLlmClient {
    /// Creates a client for a server address.
    pub fn new(addr: std::net::SocketAddr, model: impl Into<String>) -> HttpLlmClient {
        HttpLlmClient {
            addr,
            model: model.into(),
        }
    }

    /// Issues a completion request.
    pub fn complete_http(&self, prompt: &str) -> Result<String, HttpError> {
        let request = Json::object(vec![
            ("model", Json::from(self.model.as_str())),
            ("prompt", Json::from(prompt)),
        ])
        .to_compact();
        let mut stream = TcpStream::connect(self.addr)?;
        write!(
            stream,
            "POST /v1/completions HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{request}",
            self.addr,
            request.len()
        )?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::Protocol(format!("bad status line: {status_line}")))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        let body = String::from_utf8_lossy(&body).to_string();
        if status != 200 {
            return Err(HttpError::Status(status, body));
        }
        let json = Json::parse(&body).map_err(|e| HttpError::Protocol(format!("bad body: {e}")))?;
        json.get("choices")
            .and_then(|c| c.at(0))
            .and_then(|c| c.get("text"))
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| HttpError::Protocol("missing choices[0].text".to_string()))
    }
}

impl LlmClient for HttpLlmClient {
    fn complete(&self, prompt: &str) -> String {
        self.complete_http(prompt)
            .unwrap_or_else(|e| format!("error: {e}"))
    }

    fn name(&self) -> &str {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelProfile;

    #[test]
    fn end_to_end_completion_over_http() {
        let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
        let direct = llm.clone();
        let server = CompletionServer::start(llm).unwrap();
        let client = HttpLlmClient::new(server.address(), "gpt-4");

        // Build a real prompt so the model emits real VQL.
        let corpus = nl2vis_corpus::Corpus::build(&nl2vis_corpus::CorpusConfig::small(29));
        let e = &corpus.examples[0];
        let db = corpus.catalog.database(&e.db).unwrap();
        let p = nl2vis_prompt::build_prompt(
            &nl2vis_prompt::PromptOptions::default(),
            db,
            &e.nl,
            &[],
            |d| corpus.catalog.database(&d.db).unwrap(),
        );
        let via_http = client.complete_http(&p.text).unwrap();
        let direct_out = direct.complete(&p.text);
        assert_eq!(via_http, direct_out, "HTTP transport must be lossless");
    }

    #[test]
    fn wrong_model_is_rejected() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let client = HttpLlmClient::new(server.address(), "gpt-4");
        match client.complete_http("-- Test:\n-- Database:\nx\nQ: hello\nVQL:") {
            Err(HttpError::Status(400, body)) => assert!(body.contains("not hosted")),
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let addr = server.address();
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = "{not json";
        write!(
            stream,
            "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.contains("400"), "{status_line}");
    }

    #[test]
    fn unknown_path_is_404() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let mut stream = TcpStream::connect(server.address()).unwrap();
        write!(
            stream,
            "GET /nope HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    }

    #[test]
    fn concurrent_clients_are_served() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let addr = server.address();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = HttpLlmClient::new(addr, "text-davinci-003");
                    let prompt = format!(
                        "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:"
                    );
                    client.complete_http(&prompt).unwrap()
                })
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn large_prompt_roundtrips() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let client = HttpLlmClient::new(server.address(), "text-davinci-003");
        // A prompt with a large serialized body (tens of KB) survives the
        // length-delimited transport, including JSON escaping.
        let filler = "x\"y\\z\n".repeat(5_000);
        let prompt = format!("-- Test:\n-- Database:\n{filler}\nQ: hello\nVQL:");
        let out = client.complete_http(&prompt).unwrap();
        assert!(!out.is_empty());
    }

    /// Issues a bare GET and returns the whole HTTP response as text.
    fn raw_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        response
    }

    #[test]
    fn healthz_reports_ok_and_hosted_model() {
        let registry = Arc::new(MetricsRegistry::new());
        let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
        let server = CompletionServer::start_with_registry(llm, registry).unwrap();
        let response = raw_get(server.address(), "/healthz");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains(r#""status":"ok""#), "{response}");
        assert!(response.contains("gpt-4"), "{response}");
    }

    #[test]
    fn metrics_endpoint_exposes_request_counters_and_latency() {
        let registry = Arc::new(MetricsRegistry::new());
        let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
        let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
        let client = HttpLlmClient::new(server.address(), "gpt-4");
        for i in 0..3 {
            let prompt = format!(
                "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:"
            );
            client.complete_http(&prompt).unwrap();
        }
        let response = raw_get(server.address(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("text/plain"), "{response}");
        assert!(response.contains("llm.requests_total 3"), "{response}");
        assert!(response.contains("llm.status_200"), "{response}");
        assert!(
            response.contains("llm.request_latency_us count 3"),
            "{response}"
        );
        assert!(response.contains("p95"), "{response}");
        // The registry handle agrees with the exposition.
        assert_eq!(registry.counter("llm.requests_total").get(), 3);
        assert!(registry.histogram("llm.request_latency_us").count() == 3);
        // /metrics and /healthz traffic is counted, completions are not
        // inflated by it.
        assert!(registry.counter("server.http_requests_total").get() >= 4);
    }

    #[test]
    fn concurrent_connections_record_a_peak_gauge() {
        let registry = Arc::new(MetricsRegistry::new());
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
        let addr = server.address();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = HttpLlmClient::new(addr, "text-davinci-003");
                    let prompt = format!(
                        "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: peak {i}\nVQL:"
                    );
                    client.complete_http(&prompt).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!(!h.join().unwrap().is_empty());
        }
        assert_eq!(registry.counter("llm.requests_total").get(), 8);
        let peak = registry.gauge("server.concurrent_peak").get();
        assert!(
            peak >= 1,
            "peak gauge must have recorded at least one connection: {peak}"
        );
        // Connection threads decrement the gauge just after the response is
        // flushed; give them a moment to drain.
        for _ in 0..100 {
            if registry.gauge("server.active_connections").get() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(registry.gauge("server.active_connections").get(), 0);
    }

    #[test]
    fn models_endpoint_lists_hosted_model() {
        let llm = SimLlm::new(ModelProfile::turbo_16k(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let mut stream = TcpStream::connect(server.address()).unwrap();
        write!(
            stream,
            "GET /v1/models HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.contains("gpt-3.5-turbo-16k"));
    }
}
