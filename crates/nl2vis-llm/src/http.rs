//! A minimal OpenAI-compatible HTTP transport.
//!
//! The paper drives GPT-3.5/GPT-4 through the OpenAI completions API over
//! HTTPS. This module reproduces that wire surface with a small HTTP/1.1
//! implementation over `std::net`: a [`CompletionServer`] that fronts a
//! [`SimLlm`], and a [`HttpLlmClient`] that speaks the same
//! `POST /v1/completions` JSON protocol. The rest of the system only sees
//! the [`crate::client::LlmClient`] trait, so swapping the
//! simulated backend for a real endpoint is a URL change.

use crate::client::{CompletionOutcome, LlmClient, TransportError, TransportErrorKind};
use crate::event;
use crate::fault::FaultInjector;
use crate::sim::{GenOptions, SimLlm};
use nl2vis_data::Json;
use nl2vis_obs as obs;
use nl2vis_obs::{MetricsRegistry, WindowedRegistry};
use nl2vis_service::CompletionService;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest request/response body either side will buffer. Prompts run to
/// tens of kilobytes; anything past this is a protocol violation, not a
/// bigger prompt, and must not translate an untrusted `Content-Length`
/// header into an allocation.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Deadline for a fresh connection to produce a complete request, and for
/// response writes. A stalled or dead peer is swept (and the response
/// write abandoned) after this long instead of being held forever.
pub(crate) const SERVER_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// How long the server keeps an idle kept-alive connection before closing
/// it. Idle sockets cost the event-driven core only a poller table entry
/// (not a thread), but pooling clients give up after [`CLIENT_POOL_IDLE`]
/// anyway, so anything older is dead weight.
pub(crate) const SERVER_KEEPALIVE_IDLE: Duration = Duration::from_secs(5);

/// How long the client keeps an idle pooled connection before discarding
/// it. Kept below [`SERVER_KEEPALIVE_IDLE`] so the client usually gives up
/// on a socket before the server closes it (the stale-retry path covers
/// the race when it does not).
const CLIENT_POOL_IDLE: Duration = Duration::from_secs(3);

/// Max idle connections the client parks per [`HttpLlmClient`].
const CLIENT_POOL_MAX_IDLE: usize = 8;

/// Errors from the HTTP layer.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A connect/read/write deadline expired.
    Timeout(String),
    /// The peer closed the connection before sending a response.
    Closed,
    /// Malformed HTTP traffic.
    Protocol(String),
    /// Non-2xx status.
    Status(u16, String),
    /// The server shed the request under admission control (`429`),
    /// optionally naming the backoff it wants honored before a retry.
    Overloaded {
        /// Parsed `Retry-After` header, if the server sent one.
        retry_after: Option<Duration>,
        /// Response body.
        body: String,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Timeout(stage) => write!(f, "timed out: {stage}"),
            HttpError::Closed => write!(f, "connection closed before a response"),
            HttpError::Protocol(m) => write!(f, "protocol error: {m}"),
            HttpError::Status(code, body) => write!(f, "http {code}: {body}"),
            HttpError::Overloaded { body, .. } => write!(f, "http 429: {body}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                HttpError::Timeout(e.to_string())
            }
            _ => HttpError::Io(e),
        }
    }
}

impl HttpError {
    /// The attribution bucket this failure belongs to. Mid-stream
    /// connection loss (reset, abort, broken pipe, truncation) maps to
    /// [`TransportErrorKind::ConnectionClosed`] — like a clean pre-response
    /// EOF, the peer went away, and a retry layer treats both the same.
    pub fn transport_kind(&self) -> TransportErrorKind {
        match self {
            HttpError::Timeout(_) => TransportErrorKind::Timeout,
            HttpError::Closed => TransportErrorKind::ConnectionClosed,
            HttpError::Status(code, _) => TransportErrorKind::Status(*code),
            HttpError::Overloaded { .. } => TransportErrorKind::Status(429),
            HttpError::Protocol(_) => TransportErrorKind::Protocol,
            HttpError::Io(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                TransportErrorKind::Connect
            }
            HttpError::Io(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                        | std::io::ErrorKind::UnexpectedEof
                ) =>
            {
                TransportErrorKind::ConnectionClosed
            }
            HttpError::Io(_) => TransportErrorKind::Io,
        }
    }

    /// Converts the final failure of `attempts` tries into the typed
    /// [`TransportError`], carrying any server-requested `Retry-After`
    /// through so a retry layer can honor it. Does *not* touch counters —
    /// in the layered stack, error attribution belongs to the metrics
    /// layer, which counts a request's final outcome exactly once.
    pub fn transport_error(self, attempts: u32) -> TransportError {
        let retry_after = match &self {
            HttpError::Overloaded { retry_after, .. } => *retry_after,
            _ => None,
        };
        let mut error = TransportError::new(self.transport_kind(), attempts, self.to_string());
        error.retry_after = retry_after;
        error
    }

    /// Converts the final failure of `attempts` tries into the typed
    /// [`TransportError`] *and* records it on the `llm.error.transport`
    /// counter. The legacy conversion for bare [`LlmClient`] call paths
    /// that run without a metrics layer above them.
    pub fn into_transport_error(self, attempts: u32) -> TransportError {
        let error = self.transport_error(attempts);
        obs::transport_error("llm", &error.message);
        error
    }
}

/// Sizing and load-shed behavior of the bounded server runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads, i.e. the maximum connections served concurrently.
    pub max_inflight: usize,
    /// Accepted connections allowed to wait for a worker before the
    /// accept thread starts shedding with `429`.
    pub queue_depth: usize,
    /// The backoff advertised in the `Retry-After` header of a shed
    /// response. Honored by the client's retry layer over its own
    /// schedule.
    pub retry_after: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_inflight: 16,
            queue_depth: 64,
            retry_after: Duration::from_millis(50),
        }
    }
}

/// Tuning knobs of the event-driven core that are not part of the sizing
/// contract in [`ServerConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerTuning {
    /// Poller threads sharing the connection table. Each owns its shard of
    /// nonblocking sockets; total server threads are
    /// `pollers + max_inflight` regardless of connection count.
    pub pollers: usize,
    /// How long a worker lingers for more same-key completions after
    /// forming a batch. Zero (the default) batches opportunistically: only
    /// requests already queued together coalesce, and an unsaturated
    /// server adds no latency.
    pub batch_window: Duration,
    /// Most completions one [`SimLlm`] invocation may serve.
    pub batch_max: usize,
}

impl Default for ServerTuning {
    fn default() -> ServerTuning {
        ServerTuning {
            pollers: 2,
            batch_window: Duration::ZERO,
            batch_max: 32,
        }
    }
}

/// A completion server exposing a [`SimLlm`] on `127.0.0.1`.
///
/// The runtime is event-driven: a few poller threads own every accepted
/// socket in nonblocking mode (see [`crate::poll`]), parse requests
/// incrementally, and hand *complete* requests to a bounded worker pool
/// ([`ServerConfig::max_inflight`] threads) through a fixed-depth queue;
/// when the queue is full the poller *sheds* the request with
/// `429 Too Many Requests` and a `Retry-After` header instead of letting
/// load grow unboundedly. Queued completions sharing generation options
/// are coalesced into one [`SimLlm`] invocation ([`ServerTuning`]).
/// Shutdown is a graceful drain: requests already read are all served
/// before the workers exit. Every request is instrumented against a
/// shared [`MetricsRegistry`]:
///
/// - `llm.requests_total` / `llm.request_latency_us` — completion calls;
/// - `server.http_requests_total`, `llm.status_<code>` — all traffic;
/// - `server.shed_total` — requests rejected by admission control;
/// - `server.active_connections` / `server.concurrent_peak` — busy-worker
///   gauge and its high-water mark (bounded by the pool size);
/// - `server.poller.open_connections` / `server.serving_threads` — the
///   decoupling pair: sockets held open vs. threads serving them;
/// - `server.batch.*` — batching effectiveness (batches formed, requests
///   batched, backend invocations, prompt-dedup hits, size histogram);
/// - one `llm` access-log event per request on the installed sink.
///
/// Besides the OpenAI-compatible surface, the server exposes
/// `GET /metrics` (plain-text exposition of the registry),
/// `GET /stats` (a JSON snapshot pairing a sliding-window view — rolling
/// throughput, windowed p50/p95/p99, shed rate over the last 10 seconds —
/// with the cumulative totals), and `GET /healthz`.
pub struct CompletionServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    core: Option<event::Core>,
    registry: Arc<MetricsRegistry>,
    windowed: Arc<WindowedRegistry>,
    faults: Arc<FaultInjector>,
    config: ServerConfig,
    tuning: ServerTuning,
}

impl CompletionServer {
    /// Starts the server on an ephemeral local port, instrumented against
    /// the process-wide global registry.
    pub fn start(llm: SimLlm) -> Result<CompletionServer, HttpError> {
        CompletionServer::start_with_registry(llm, Arc::clone(obs::global()))
    }

    /// Starts the server against an explicit registry (test isolation, or
    /// one registry per hosted model).
    pub fn start_with_registry(
        llm: SimLlm,
        registry: Arc<MetricsRegistry>,
    ) -> Result<CompletionServer, HttpError> {
        CompletionServer::start_with_faults(llm, registry, FaultInjector::none())
    }

    /// Starts the server with a [`FaultInjector`] deciding, per completion
    /// request, whether to stall, drop the connection, or answer `500` —
    /// the offline test double for a flaky remote API.
    pub fn start_with_faults(
        llm: SimLlm,
        registry: Arc<MetricsRegistry>,
        faults: FaultInjector,
    ) -> Result<CompletionServer, HttpError> {
        CompletionServer::start_with_config(llm, registry, faults, ServerConfig::default())
    }

    /// Starts the server with explicit runtime sizing and default
    /// [`ServerTuning`].
    pub fn start_with_config(
        llm: SimLlm,
        registry: Arc<MetricsRegistry>,
        faults: FaultInjector,
        config: ServerConfig,
    ) -> Result<CompletionServer, HttpError> {
        CompletionServer::start_with_tuning(llm, registry, faults, config, ServerTuning::default())
    }

    /// Starts the server with explicit sizing *and* event-core tuning —
    /// the full constructor every other SimLlm-hosting `start_*`
    /// delegates to.
    pub fn start_with_tuning(
        llm: SimLlm,
        registry: Arc<MetricsRegistry>,
        faults: FaultInjector,
        config: ServerConfig,
        tuning: ServerTuning,
    ) -> Result<CompletionServer, HttpError> {
        CompletionServer::start_backend(
            event::Backend::Sim(Arc::new(llm)),
            registry,
            faults,
            config,
            tuning,
        )
    }

    /// Hosts a composed [`CompletionService`] stack — e.g. a
    /// [`TieredService`](nl2vis_service::TieredService) — natively behind
    /// the HTTP surface, on the global registry. The server answers as
    /// the stack's [`model`](CompletionService::model); server-side
    /// batching is disabled (the stack decides per-request).
    pub fn start_with_service<S>(service: S) -> Result<CompletionServer, HttpError>
    where
        S: CompletionService + Send + Sync + 'static,
    {
        CompletionServer::start_with_service_registry(service, Arc::clone(obs::global()))
    }

    /// Like [`CompletionServer::start_with_service`], against an explicit
    /// registry.
    pub fn start_with_service_registry<S>(
        service: S,
        registry: Arc<MetricsRegistry>,
    ) -> Result<CompletionServer, HttpError>
    where
        S: CompletionService + Send + Sync + 'static,
    {
        CompletionServer::start_backend(
            event::Backend::Service(Arc::new(service)),
            registry,
            FaultInjector::none(),
            ServerConfig::default(),
            ServerTuning::default(),
        )
    }

    /// Like [`CompletionServer::start_with_service_registry`], with
    /// explicit fault injection and admission configuration — the load
    /// harness path, where tiered stacks still want injected service
    /// times and a bounded accept queue.
    pub fn start_with_service_config<S>(
        service: S,
        registry: Arc<MetricsRegistry>,
        faults: FaultInjector,
        config: ServerConfig,
    ) -> Result<CompletionServer, HttpError>
    where
        S: CompletionService + Send + Sync + 'static,
    {
        CompletionServer::start_backend(
            event::Backend::Service(Arc::new(service)),
            registry,
            faults,
            config,
            ServerTuning::default(),
        )
    }

    fn start_backend(
        backend: event::Backend,
        registry: Arc<MetricsRegistry>,
        faults: FaultInjector,
        config: ServerConfig,
        tuning: ServerTuning,
    ) -> Result<CompletionServer, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let faults = Arc::new(faults);
        let windowed = Arc::new(WindowedRegistry::new(obs::WindowConfig::seconds_10()));
        let core = event::Core::start(
            backend,
            Arc::clone(&registry),
            Arc::clone(&windowed),
            Arc::clone(&faults),
            config,
            tuning,
        )?;
        let pollers = core.pollers.clone();
        // The accept loop blocks in `accept` — zero CPU while idle — and is
        // woken on shutdown by `Drop` connecting to the listener itself. It
        // does nothing but deal accepted sockets to the poller shards.
        let handle = std::thread::spawn(move || {
            let rr = AtomicUsize::new(0);
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop_flag.load(Ordering::Relaxed) {
                            break;
                        }
                        event::hand_off(&pollers, &rr, stream);
                    }
                    Err(_) => {
                        if stop_flag.load(Ordering::Relaxed) {
                            break;
                        }
                        // Transient accept failure (e.g. fd pressure): back
                        // off briefly instead of spinning.
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        });
        Ok(CompletionServer {
            addr,
            stop,
            handle: Some(handle),
            core: Some(core),
            registry,
            windowed,
            faults,
            config,
            tuning,
        })
    }

    /// The server's base URL host:port.
    pub fn address(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The registry this server records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The sliding-window registry backing `GET /stats` — rolling
    /// throughput/latency/shed over the last 10 seconds.
    pub fn windowed(&self) -> &Arc<WindowedRegistry> {
        &self.windowed
    }

    /// The fault injector driving this server (inactive unless the server
    /// was started with [`CompletionServer::start_with_faults`]).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// The runtime sizing this server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The event-core tuning this server was started with.
    pub fn tuning(&self) -> &ServerTuning {
        &self.tuning
    }
}

impl Drop for CompletionServer {
    fn drop(&mut self) {
        // Phase 1: stop accepting. The throwaway connection wakes the
        // blocking accept loop, which re-checks the stop flag.
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        // Phase 2: drain. Pollers serve what has already been read, then
        // the workers drain the request queue (see [`event::Core::shutdown`]).
        if let Some(core) = self.core.take() {
            core.shutdown();
        }
    }
}

/// A parsed inbound request.
pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
    /// Did the client ask to keep the connection open (`Connection:
    /// keep-alive`)? Despite HTTP/1.1's persistent-by-default rule, this
    /// server is close-by-default and only keeps connections the client
    /// explicitly asked for — raw-socket callers that read to EOF keep
    /// working, and pooling clients opt in per request.
    pub keep_alive: bool,
    /// Trace context imported from `X-Nl2vis-Trace-Id` /
    /// `X-Nl2vis-Parent-Span` headers, if the client is propagating one —
    /// the server-side handling span then joins the caller's trace instead
    /// of starting its own.
    pub trace: Option<obs::TraceContext>,
}

/// A request that could not be read: the status and body of the error
/// response the client deserves before the connection closes.
pub(crate) struct BadRequest {
    pub status: u16,
    pub message: String,
}

impl BadRequest {
    pub fn new(status: u16, message: impl Into<String>) -> BadRequest {
        BadRequest {
            status,
            message: message.into(),
        }
    }

    pub fn ended(message: impl Into<String>) -> BadRequest {
        BadRequest::new(400, message)
    }
}

/// Extracts a header value from one `Name: value` line when the *name*
/// matches `name` case-insensitively (RFC 9110 §5.1 — field names are
/// case-insensitive). The value is returned from the original line,
/// whitespace-trimmed but otherwise byte-for-byte: header values are NOT
/// case-insensitive, and folding them (as an earlier lowercase-the-line
/// parser did) silently corrupts case-sensitive payloads like trace ids.
pub fn header_value<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let (field, value) = line.split_once(':')?;
    if field.trim().eq_ignore_ascii_case(name) {
        Some(value.trim())
    } else {
        None
    }
}

/// Does a `Connection:` header value ask for keep-alive? The value is a
/// comma-separated token list (`keep-alive, TE`), so membership is tested
/// per token, case-insensitively — exact-equality matching would read any
/// multi-token list as "close". A list naming both tokens closes: `close`
/// is the stronger directive.
pub fn connection_keeps_alive(value: &str) -> bool {
    let mut keep = false;
    for token in value.split(',') {
        let token = token.trim();
        if token.eq_ignore_ascii_case("close") {
            return false;
        }
        if token.eq_ignore_ascii_case("keep-alive") {
            keep = true;
        }
    }
    keep
}

/// Serializes one complete response. Kept in one place so the worker
/// pool, the poller-side shed/error paths, and tests all emit the same
/// wire bytes.
pub(crate) fn render_response(
    status: u16,
    body: &str,
    content_type: &str,
    keep_alive: bool,
    retry_after: Option<Duration>,
) -> String {
    // Fractional seconds in Retry-After are a protocol extension over RFC
    // 9110 (which allows only whole seconds): local tests and benchmarks
    // shed with millisecond backoffs, and rounding them up to 1s would
    // serialize the whole recovery. Our client parses either form.
    let retry_after = match retry_after {
        Some(backoff) => format!("Retry-After: {}\r\n", backoff.as_secs_f64()),
        None => String::new(),
    };
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry_after}Connection: {}\r\n\r\n{body}",
        match status {
            200 => "OK",
            404 => "Not Found",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Bad Request",
        },
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    )
}

/// Writes one response, advertising `Connection: keep-alive` or `close` to
/// match what the serving loop will actually do next. Best-effort by
/// construction: the caller decides whether a write failure matters.
pub(crate) fn respond(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    content_type: &str,
    keep_alive: bool,
) -> Result<(), HttpError> {
    // Serialize the whole response first and send it in one write: header
    // and body as separate writes would let Nagle hold the body back a
    // delayed-ACK round trip on connections without NODELAY.
    let response = render_response(status, body, content_type, keep_alive, None);
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// Renders the OpenAI-style completion response body.
pub(crate) fn completion_json(model: &str, completion: &str) -> String {
    Json::object(vec![
        ("object", Json::from("text_completion")),
        ("model", Json::from(model)),
        (
            "choices",
            Json::Array(vec![Json::object(vec![
                ("text", Json::from(completion)),
                ("index", Json::from(0i64)),
                ("finish_reason", Json::from("stop")),
            ])]),
        ),
    ])
    .to_compact()
}

pub(crate) const JSON: &str = "application/json";
const TEXT: &str = "text/plain; charset=utf-8";

/// Renders the `GET /stats` body: the sliding-window view (rolling
/// throughput, windowed latency percentiles, shed rate over the last
/// [`obs::WindowConfig`] span) next to the cumulative totals, so a load
/// generator polling once a second sees live movement instead of an
/// ever-flattening average.
fn stats_json(registry: &MetricsRegistry, windowed: &WindowedRegistry) -> String {
    let window = windowed.histogram("llm.request_latency_us").summary();
    let cumulative = registry.histogram("llm.request_latency_us").summary();
    let shed_window = windowed.counter("server.shed_total").window_total();
    let served_window = window.count;
    let shed_rate = if served_window + shed_window == 0 {
        0.0
    } else {
        shed_window as f64 / (served_window + shed_window) as f64
    };
    let latency = obs::window::summary_json(&window, Some(&cumulative));
    let batch_requests = registry.counter("server.batch.requests_total").get();
    let batch_batches = registry.counter("server.batch.batches_total").get();
    let avg_batch_size = if batch_batches == 0 {
        0.0
    } else {
        batch_requests as f64 / batch_batches as f64
    };
    format!(
        concat!(
            "{{\"window_seconds\":{:.1},",
            "\"throughput_rps\":{:.3},",
            "\"window_requests\":{},",
            "\"window_shed\":{},",
            "\"window_shed_rate\":{:.4},",
            "\"requests_total\":{},",
            "\"shed_total\":{},",
            "\"active_connections\":{},",
            "\"concurrent_peak\":{},",
            "\"open_connections\":{},",
            "\"serving_threads\":{},",
            "\"batch_requests\":{},",
            "\"batch_batches\":{},",
            "\"batch_invocations\":{},",
            "\"avg_batch_size\":{:.3},",
            "\"latency_us\":{}}}"
        ),
        windowed.config().span().as_secs_f64(),
        window.rate_per_sec(),
        served_window,
        shed_window,
        shed_rate,
        registry.counter("llm.requests_total").get(),
        registry.counter("server.shed_total").get(),
        registry.gauge("server.active_connections").get(),
        registry.gauge("server.concurrent_peak").get(),
        registry.gauge("server.poller.open_connections").get(),
        registry.gauge("server.serving_threads").get(),
        batch_requests,
        batch_batches,
        registry.counter("server.batch.invocations_total").get(),
        avg_batch_size,
        latency,
    )
}

/// Routes the non-completion surface (`/v1/models`, `/metrics`,
/// `/metrics.json`, `/stats`, `/requests`, `/trace/<id>`, `/healthz`). `POST /v1/completions` never
/// reaches here: the pollers pre-parse it and the worker pool serves it
/// (batched) directly — see [`crate::event`].
pub(crate) fn route(
    method: &str,
    path: &str,
    _body: &str,
    model: &str,
    registry: &MetricsRegistry,
    windowed: &WindowedRegistry,
) -> (u16, String, &'static str) {
    match (method, path) {
        ("GET", "/v1/models") => {
            let response = Json::object(vec![(
                "data",
                Json::Array(vec![Json::object(vec![("id", Json::from(model))])]),
            )]);
            (200, response.to_compact(), JSON)
        }
        ("GET", "/metrics") => (200, obs::report::render_exposition(registry), TEXT),
        ("GET", "/metrics.json") => (
            200,
            obs::Snapshot::collect(registry, Some(windowed)).to_json(),
            JSON,
        ),
        ("GET", "/stats") => (200, stats_json(registry, windowed), JSON),
        ("GET", "/requests") => match obs::recorder::installed() {
            Some(recorder) => (200, recorder.index_json(50), JSON),
            None => (
                404,
                r#"{"error":"flight recorder not installed"}"#.to_string(),
                JSON,
            ),
        },
        ("GET", trace_path) if trace_path.starts_with("/trace/") => {
            let id = trace_path["/trace/".len()..].parse::<u64>();
            match (obs::recorder::installed(), id) {
                (None, _) => (
                    404,
                    r#"{"error":"flight recorder not installed"}"#.to_string(),
                    JSON,
                ),
                (_, Err(_)) => (
                    400,
                    r#"{"error":"trace id must be a decimal integer"}"#.to_string(),
                    JSON,
                ),
                (Some(recorder), Ok(id)) => match recorder.get(id) {
                    Some(record) => (200, record.to_json(), JSON),
                    None => (
                        404,
                        format!(r#"{{"error":"trace {id} not retained"}}"#),
                        JSON,
                    ),
                },
            }
        }
        ("GET", "/healthz") => (
            200,
            Json::object(vec![
                ("status", Json::from("ok")),
                ("model", Json::from(model)),
            ])
            .to_compact(),
            JSON,
        ),
        _ => (404, r#"{"error":"not found"}"#.to_string(), JSON),
    }
}

/// Connect/read/write deadlines for [`HttpLlmClient`].
///
/// Defaults are generous for a local simulated backend; eval runs against
/// flaky or remote endpoints tighten them so a stalled peer costs one
/// deadline, not an eval worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeouts {
    /// TCP connect deadline.
    pub connect: Duration,
    /// Socket read deadline (per read syscall).
    pub read: Duration,
    /// Socket write deadline (per write syscall).
    pub write: Duration,
}

impl Default for Timeouts {
    fn default() -> Timeouts {
        Timeouts {
            connect: Duration::from_secs(2),
            read: Duration::from_secs(15),
            write: Duration::from_secs(15),
        }
    }
}

/// An idle connection parked in the client pool.
struct PooledConn {
    stream: TcpStream,
    parked_at: Instant,
}

/// A client for the completions protocol.
///
/// By default the client keeps connections alive: it sends
/// `Connection: keep-alive`, parks the socket after each successful
/// response, and reuses it for the next request instead of paying a TCP
/// handshake per completion. A reused socket can always have been closed
/// by the server in the meantime (idle deadline, restart, injected fault);
/// a request that fails on a *reused* connection with a stale-socket error
/// is transparently retried exactly once on a fresh connection, so callers
/// never observe the race. Metrics: `http.connections_opened`,
/// `http.conn_reused`, `http.conn_stale_retries`.
pub struct HttpLlmClient {
    addr: std::net::SocketAddr,
    /// Model name sent with each request.
    pub model: String,
    /// Connect/read/write deadlines applied to every request.
    pub timeouts: Timeouts,
    /// Idle kept-alive connections; `None` disables pooling entirely.
    pool: Option<Mutex<Vec<PooledConn>>>,
}

/// Is this error consistent with the server having silently closed a
/// pooled connection while it sat idle? Only these justify the one-shot
/// fresh-connection retry — anything else (timeout, HTTP status, protocol
/// violation) is a real answer from a live server and must be surfaced.
fn is_stale_conn_error(e: &HttpError) -> bool {
    match e {
        HttpError::Closed => true,
        HttpError::Io(io) => matches!(
            io.kind(),
            std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::UnexpectedEof
        ),
        _ => false,
    }
}

/// A [`HttpLlmClient::roundtrip`] failure, tagged with whether any response
/// byte had arrived first. The stale-socket retry is only legal while the
/// response has *not* started: after that the server demonstrably processed
/// the request, so replaying it would double-send — and a readable 429
/// whose remainder got truncated must stay a 429, never a
/// `http.conn_stale_retries` increment.
struct RoundtripError {
    error: HttpError,
    response_started: bool,
}

impl RoundtripError {
    fn before_response(error: HttpError) -> RoundtripError {
        RoundtripError {
            error,
            response_started: false,
        }
    }

    fn mid_response(error: HttpError) -> RoundtripError {
        RoundtripError {
            error,
            response_started: true,
        }
    }
}

impl HttpLlmClient {
    /// Creates a client for a server address with default [`Timeouts`] and
    /// connection keep-alive enabled.
    pub fn new(addr: std::net::SocketAddr, model: impl Into<String>) -> HttpLlmClient {
        HttpLlmClient::with_timeouts(addr, model, Timeouts::default())
    }

    /// Creates a client with explicit deadlines (keep-alive enabled).
    pub fn with_timeouts(
        addr: std::net::SocketAddr,
        model: impl Into<String>,
        timeouts: Timeouts,
    ) -> HttpLlmClient {
        HttpLlmClient {
            addr,
            model: model.into(),
            timeouts,
            pool: Some(Mutex::new(Vec::new())),
        }
    }

    /// Disables connection reuse: every request opens (and closes) its own
    /// TCP connection, as the pre-keep-alive client did.
    pub fn without_keep_alive(mut self) -> HttpLlmClient {
        self.pool = None;
        self
    }

    /// Takes a live-looking idle connection from the pool, discarding any
    /// that have sat past [`CLIENT_POOL_IDLE`] (the server has likely
    /// dropped those already).
    fn checkout(&self) -> Option<TcpStream> {
        let pool = self.pool.as_ref()?;
        let mut idle = pool.lock().expect("http client pool");
        while let Some(conn) = idle.pop() {
            if conn.parked_at.elapsed() < CLIENT_POOL_IDLE {
                obs::count("http.conn_reused", 1);
                return Some(conn.stream);
            }
            // Too old: drop it (closing the socket) and keep looking.
        }
        None
    }

    /// Parks a connection whose response said `keep-alive`, bounded at
    /// [`CLIENT_POOL_MAX_IDLE`].
    fn park(&self, stream: TcpStream) {
        if let Some(pool) = self.pool.as_ref() {
            let mut idle = pool.lock().expect("http client pool");
            if idle.len() < CLIENT_POOL_MAX_IDLE {
                idle.push(PooledConn {
                    stream,
                    parked_at: Instant::now(),
                });
            }
        }
    }

    fn connect_fresh(&self) -> Result<TcpStream, HttpError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeouts.connect)?;
        stream.set_read_timeout(Some(self.timeouts.read))?;
        stream.set_write_timeout(Some(self.timeouts.write))?;
        // Each request is a complete message followed by a read; Nagle
        // would only add delayed-ACK stalls to the round trip.
        let _ = stream.set_nodelay(true);
        obs::count("http.connections_opened", 1);
        Ok(stream)
    }

    /// Issues a completion request. Every socket operation runs under the
    /// client's [`Timeouts`], so a stalled or vanished server surfaces as
    /// [`HttpError::Timeout`] / [`HttpError::Closed`] instead of hanging
    /// the caller forever. With keep-alive enabled the request may ride a
    /// pooled connection; a stale-socket failure there is retried once on
    /// a fresh connection before any error reaches the caller.
    pub fn complete_http(&self, prompt: &str) -> Result<String, HttpError> {
        self.complete_http_with(prompt, &GenOptions::default())
    }

    /// Like [`HttpLlmClient::complete_http`], carrying non-default
    /// [`GenOptions`] in the request body's `options` object so the server
    /// generates with them (and batches only requests whose options
    /// match). Default options are omitted from the wire: the common case
    /// stays byte-identical to the pre-options protocol.
    pub fn complete_http_with(&self, prompt: &str, opts: &GenOptions) -> Result<String, HttpError> {
        let mut fields = vec![
            ("model", Json::from(self.model.as_str())),
            ("prompt", Json::from(prompt)),
        ];
        let defaults = GenOptions::default();
        if opts.attempt != defaults.attempt
            || opts.error_scale != defaults.error_scale
            || opts.structural_scale != defaults.structural_scale
        {
            fields.push((
                "options",
                Json::object(vec![
                    ("attempt", Json::from(opts.attempt as f64)),
                    ("error_scale", Json::from(opts.error_scale)),
                    ("structural_scale", Json::from(opts.structural_scale)),
                ]),
            ));
        }
        let request = Json::object(fields).to_compact();
        if let Some(stream) = self.checkout() {
            let attempt = obs::span!("llm.attempt");
            attempt.annotate("conn", "reused");
            match self.roundtrip(stream, &request) {
                Err(e) if !e.response_started && is_stale_conn_error(&e.error) => {
                    // The parked socket died while idle, before a single
                    // response byte. The request never reached the
                    // application layer, so retrying it on a fresh
                    // connection is safe and invisible to the caller. A
                    // failure *after* the response started (e.g. a 429
                    // truncated mid-body) never takes this path.
                    attempt.annotate("stale", "true");
                    obs::count("http.conn_stale_retries", 1);
                }
                Err(e) => return Err(e.error),
                Ok(done) => return Ok(done),
            }
        }
        let attempt = obs::span!("llm.attempt");
        attempt.annotate("conn", "fresh");
        let stream = self.connect_fresh()?;
        self.roundtrip(stream, &request).map_err(|e| e.error)
    }

    /// One request/response exchange on `stream`. On success, a response
    /// tagged `Connection: keep-alive` sends the socket back to the pool.
    /// Failures carry whether the response had started (see
    /// [`RoundtripError`]); only pre-response failures are stale-retryable.
    fn roundtrip(&self, mut stream: TcpStream, request: &str) -> Result<String, RoundtripError> {
        let want_keep_alive = self.pool.is_some();
        // Propagate the caller's trace so the server's handling span joins
        // it instead of starting a disconnected one.
        let trace_headers = match obs::current_context() {
            Some(ctx) => format!(
                "X-Nl2vis-Trace-Id: {}\r\nX-Nl2vis-Parent-Span: {}\r\n",
                ctx.trace_header(),
                ctx.parent_header()
            ),
            None => String::new(),
        };
        // One buffered write for the whole request (see `respond` for the
        // Nagle/delayed-ACK rationale).
        let wire_request = format!(
            "POST /v1/completions HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n{trace_headers}\r\n{request}",
            self.addr,
            request.len(),
            if want_keep_alive { "keep-alive" } else { "close" }
        );
        stream
            .write_all(wire_request.as_bytes())
            .and_then(|()| stream.flush())
            .map_err(|e| RoundtripError::before_response(e.into()))?;

        // Exactly one length-delimited response is outstanding, so a
        // temporary reader over a clone of the socket cannot buffer bytes
        // that a later request would need.
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| RoundtripError::before_response(e.into()))?,
        );
        let mut status_line = String::new();
        match reader.read_line(&mut status_line) {
            // Clean EOF before any response byte: the server (or an
            // injected fault) dropped the connection.
            Ok(0) => return Err(RoundtripError::before_response(HttpError::Closed)),
            Ok(_) => {}
            Err(e) => {
                // A read error counts as pre-response only while the
                // status line is still empty.
                return Err(RoundtripError {
                    response_started: !status_line.is_empty(),
                    error: e.into(),
                });
            }
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                RoundtripError::mid_response(HttpError::Protocol(format!(
                    "bad status line: {status_line}"
                )))
            })?;
        self.read_response_rest(reader, stream, status)
            .map_err(RoundtripError::mid_response)
    }

    /// Reads headers and body after a parsed status line, parks the socket
    /// on keep-alive, and maps the status to the final result. The status
    /// is authoritative from here: a 429 whose headers or body get
    /// truncated still surfaces as [`HttpError::Overloaded`].
    fn read_response_rest(
        &self,
        mut reader: BufReader<TcpStream>,
        stream: TcpStream,
        status: u16,
    ) -> Result<String, HttpError> {
        let want_keep_alive = self.pool.is_some();
        let mut content_length: Option<usize> = None;
        let mut server_keeps_alive = false;
        let mut retry_after: Option<Duration> = None;
        // The shed verdict is carried by the status line alone; the body
        // and `Retry-After` are advisory. So a truncation below is reported
        // as `Overloaded` when the status was 429.
        let overloaded_or = |e: HttpError, retry_after: Option<Duration>| -> HttpError {
            if status == 429 {
                HttpError::Overloaded {
                    retry_after,
                    body: String::new(),
                }
            } else {
                e
            }
        };
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    return Err(overloaded_or(
                        HttpError::Protocol("truncated response headers".to_string()),
                        retry_after,
                    ))
                }
                Ok(_) => {}
                Err(e) => return Err(overloaded_or(e.into(), retry_after)),
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = header_value(line, "content-length") {
                let parsed = v.parse::<usize>().map_err(|_| {
                    HttpError::Protocol(format!("malformed response content-length: `{v}`"))
                })?;
                if content_length.is_some_and(|prev| prev != parsed) {
                    // Two different lengths means we cannot know where this
                    // response ends — the next response on the connection
                    // would be misframed (the smuggling-shaped failure).
                    return Err(HttpError::Protocol(
                        "conflicting duplicate content-length headers".to_string(),
                    ));
                }
                content_length = Some(parsed);
            }
            if let Some(v) = header_value(line, "connection") {
                server_keeps_alive = connection_keeps_alive(v);
            }
            if let Some(v) = header_value(line, "retry-after") {
                // Seconds, fractional allowed (see `render_response`); an
                // unparseable value degrades to "no advertised backoff",
                // never an error.
                retry_after = v
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .map(Duration::from_secs_f64);
            }
        }
        let content_length = content_length.unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::Protocol(format!(
                "response body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )));
        }
        let mut body = vec![0u8; content_length];
        if let Err(e) = reader.read_exact(&mut body) {
            return Err(overloaded_or(e.into(), retry_after));
        }
        drop(reader);
        let body = String::from_utf8_lossy(&body).to_string();
        if want_keep_alive && server_keeps_alive {
            self.park(stream);
        }
        if status == 429 {
            return Err(HttpError::Overloaded { retry_after, body });
        }
        if status != 200 {
            return Err(HttpError::Status(status, body));
        }
        let json = Json::parse(&body).map_err(|e| HttpError::Protocol(format!("bad body: {e}")))?;
        json.get("choices")
            .and_then(|c| c.at(0))
            .and_then(|c| c.get("text"))
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| HttpError::Protocol("missing choices[0].text".to_string()))
    }
}

impl LlmClient for HttpLlmClient {
    fn name(&self) -> &str {
        &self.model
    }

    /// Bare-client typed path: no metrics layer sits above this call, so
    /// the counting conversion attributes the failure to
    /// `llm.error.transport` here. (The infallible `complete` /
    /// `complete_with` wrappers fold the result into a marker string that
    /// cannot parse as VQL — display-only callers; scoring paths must stay
    /// on this method.)
    fn try_complete_with(&self, prompt: &str, opts: &crate::sim::GenOptions) -> CompletionOutcome {
        self.complete_http_with(prompt, opts)
            .map_err(|e| e.into_transport_error(1))
    }
}

/// The HTTP client as a leaf [`CompletionService`]. Unlike the bare
/// [`LlmClient`] impl, the conversion here is *uncounted*: in a layered
/// stack, per-attempt failures feed the retry layer, and only the
/// request's final outcome is attributed — by the metrics layer, exactly
/// once.
impl nl2vis_service::CompletionService for HttpLlmClient {
    fn model(&self) -> &str {
        &self.model
    }

    fn call(&self, prompt: &str, opts: &crate::sim::GenOptions) -> CompletionOutcome {
        self.complete_http_with(prompt, opts)
            .map_err(|e| e.transport_error(1))
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("http");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelProfile;

    #[test]
    fn end_to_end_completion_over_http() {
        let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
        let direct = llm.clone();
        let server = CompletionServer::start(llm).unwrap();
        let client = HttpLlmClient::new(server.address(), "gpt-4");

        // Build a real prompt so the model emits real VQL.
        let corpus = nl2vis_corpus::Corpus::build(&nl2vis_corpus::CorpusConfig::small(29));
        let e = &corpus.examples[0];
        let db = corpus.catalog.database(&e.db).unwrap();
        let p = nl2vis_prompt::build_prompt(
            &nl2vis_prompt::PromptOptions::default(),
            db,
            &e.nl,
            &[],
            |d| corpus.catalog.database(&d.db).unwrap(),
        );
        let via_http = client.complete_http(&p.text).unwrap();
        let direct_out = direct.complete(&p.text);
        assert_eq!(via_http, direct_out, "HTTP transport must be lossless");
    }

    #[test]
    fn wrong_model_is_rejected() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let client = HttpLlmClient::new(server.address(), "gpt-4");
        match client.complete_http("-- Test:\n-- Database:\nx\nQ: hello\nVQL:") {
            Err(HttpError::Status(400, body)) => assert!(body.contains("not hosted")),
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let addr = server.address();
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = "{not json";
        write!(
            stream,
            "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.contains("400"), "{status_line}");
    }

    #[test]
    fn unknown_path_is_404() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let mut stream = TcpStream::connect(server.address()).unwrap();
        write!(
            stream,
            "GET /nope HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    }

    #[test]
    fn concurrent_clients_are_served() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let addr = server.address();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = HttpLlmClient::new(addr, "text-davinci-003");
                    let prompt = format!(
                        "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:"
                    );
                    client.complete_http(&prompt).unwrap()
                })
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn large_prompt_roundtrips() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let client = HttpLlmClient::new(server.address(), "text-davinci-003");
        // A prompt with a large serialized body (tens of KB) survives the
        // length-delimited transport, including JSON escaping.
        let filler = "x\"y\\z\n".repeat(5_000);
        let prompt = format!("-- Test:\n-- Database:\n{filler}\nQ: hello\nVQL:");
        let out = client.complete_http(&prompt).unwrap();
        assert!(!out.is_empty());
    }

    /// Issues a bare GET and returns the whole HTTP response as text.
    fn raw_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        response
    }

    #[test]
    fn healthz_reports_ok_and_hosted_model() {
        let registry = Arc::new(MetricsRegistry::new());
        let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
        let server = CompletionServer::start_with_registry(llm, registry).unwrap();
        let response = raw_get(server.address(), "/healthz");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains(r#""status":"ok""#), "{response}");
        assert!(response.contains("gpt-4"), "{response}");
    }

    #[test]
    fn metrics_endpoint_exposes_request_counters_and_latency() {
        let registry = Arc::new(MetricsRegistry::new());
        let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
        let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
        let client = HttpLlmClient::new(server.address(), "gpt-4");
        for i in 0..3 {
            let prompt = format!(
                "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:"
            );
            client.complete_http(&prompt).unwrap();
        }
        let response = raw_get(server.address(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("text/plain"), "{response}");
        assert!(response.contains("llm.requests_total 3"), "{response}");
        assert!(response.contains("llm.status_200"), "{response}");
        assert!(
            response.contains("llm.request_latency_us count 3"),
            "{response}"
        );
        assert!(response.contains("p95"), "{response}");
        // The registry handle agrees with the exposition.
        assert_eq!(registry.counter("llm.requests_total").get(), 3);
        assert!(registry.histogram("llm.request_latency_us").count() == 3);
        // /metrics and /healthz traffic is counted, completions are not
        // inflated by it.
        assert!(registry.counter("server.http_requests_total").get() >= 4);
    }

    #[test]
    fn metrics_json_endpoint_serves_a_mergeable_snapshot() {
        let registry = Arc::new(MetricsRegistry::new());
        let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
        let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
        let client = HttpLlmClient::new(server.address(), "gpt-4");
        for i in 0..3 {
            let prompt = format!(
                "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:"
            );
            client.complete_http(&prompt).unwrap();
        }
        let response = raw_get(server.address(), "/metrics.json");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("application/json"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        let json = Json::parse(body).unwrap();
        assert_eq!(
            json.get("format").and_then(Json::as_str),
            Some("nl2vis.metrics.v1")
        );
        assert_eq!(json.get("sources").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("llm.requests_total"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        // The cumulative histogram exports raw buckets whose counts sum
        // to the request count — the property fleet merging relies on.
        let hist = json
            .get("histograms")
            .and_then(|h| h.get("llm.request_latency_us"))
            .expect("latency histogram in snapshot");
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(3.0));
        let bucket_sum: f64 = hist
            .get("buckets")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(Json::as_f64)
            .sum();
        assert_eq!(bucket_sum, 3.0);
        // The windowed section is present and saw the same burst.
        assert_eq!(
            json.get("windowed_histograms")
                .and_then(|h| h.get("llm.request_latency_us"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert!(
            json.get("window_covered_us")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0,
            "{body}"
        );
    }

    #[test]
    fn stats_endpoint_pairs_window_with_cumulative() {
        let registry = Arc::new(MetricsRegistry::new());
        let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
        let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
        let client = HttpLlmClient::new(server.address(), "gpt-4");
        for i in 0..3 {
            let prompt = format!(
                "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:"
            );
            client.complete_http(&prompt).unwrap();
        }
        let response = raw_get(server.address(), "/stats");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        let json = Json::parse(body).unwrap();
        assert_eq!(
            json.get("window_seconds").and_then(Json::as_f64),
            Some(10.0)
        );
        // All three completions landed within the last 10 s: window and
        // cumulative agree.
        assert_eq!(
            json.get("window_requests").and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(json.get("requests_total").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            json.get("window_shed_rate").and_then(Json::as_f64),
            Some(0.0)
        );
        assert!(json.get("throughput_rps").and_then(Json::as_f64).unwrap() > 0.0);
        let latency = json.get("latency_us").unwrap();
        let wp99 = latency.at(0).is_none(); // object, not array
        assert!(wp99);
        let window_p99 = latency
            .get("window")
            .and_then(|w| w.get("p99_us"))
            .and_then(Json::as_f64)
            .unwrap();
        let cumulative_p99 = latency
            .get("cumulative")
            .and_then(|c| c.get("p99_us"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(window_p99 > 0.0);
        assert_eq!(window_p99, cumulative_p99, "identical samples, same p99");
        assert_eq!(server.windowed().config().buckets, 10);
    }

    #[test]
    fn concurrent_connections_record_a_peak_gauge() {
        let registry = Arc::new(MetricsRegistry::new());
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
        let addr = server.address();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = HttpLlmClient::new(addr, "text-davinci-003");
                    let prompt = format!(
                        "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: peak {i}\nVQL:"
                    );
                    client.complete_http(&prompt).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!(!h.join().unwrap().is_empty());
        }
        assert_eq!(registry.counter("llm.requests_total").get(), 8);
        let peak = registry.gauge("server.concurrent_peak").get();
        assert!(
            peak >= 1,
            "peak gauge must have recorded at least one connection: {peak}"
        );
        // Connection threads decrement the gauge just after the response is
        // flushed; give them a moment to drain.
        for _ in 0..100 {
            if registry.gauge("server.active_connections").get() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(registry.gauge("server.active_connections").get(), 0);
    }

    #[test]
    fn malformed_content_length_is_rejected_with_400() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let mut stream = TcpStream::connect(server.address()).unwrap();
        write!(
            stream,
            "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("malformed content-length"), "{response}");
    }

    #[test]
    fn oversized_declared_body_is_rejected_with_413() {
        let registry = Arc::new(MetricsRegistry::new());
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
        let mut stream = TcpStream::connect(server.address()).unwrap();
        // Declares a body far past the cap; the server must reject from the
        // header alone rather than allocate half a gigabyte.
        write!(
            stream,
            "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: 536870912\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        assert_eq!(registry.counter("server.bad_requests_total").get(), 1);
    }

    #[test]
    fn truncated_body_gets_best_effort_400() {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let mut stream = TcpStream::connect(server.address()).unwrap();
        // Promise 100 bytes, deliver 3, then half-close: the server's
        // read_exact fails mid-request and the client must still see a
        // status line, not a bare closed socket.
        write!(
            stream,
            "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\nabc"
        )
        .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("request read failed"), "{response}");
    }

    #[test]
    fn trace_headers_stitch_client_and_server_spans() {
        let recorder = Arc::new(obs::FlightRecorder::new(32));
        obs::recorder::install(Arc::clone(&recorder));
        let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
        let server =
            CompletionServer::start_with_registry(llm, Arc::new(MetricsRegistry::new())).unwrap();
        let client = HttpLlmClient::new(server.address(), "gpt-4");
        let trace_id = {
            let root = obs::Span::enter("httptest.request");
            client
                .complete_http(
                    "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: traced\nVQL:",
                )
                .unwrap();
            root.trace()
        };
        // The trace is finalized once the root closes; the server span must
        // have joined it via the propagated headers.
        let record = recorder.get(trace_id).expect("trace recorded");
        assert!(record.has_span("httptest.request"), "{:?}", record.spans);
        assert!(record.has_span("llm.attempt"), "{:?}", record.spans);
        assert!(record.has_span("server.handle"), "{:?}", record.spans);
        assert!(record.has_annotation("path", "/v1/completions"));
        assert!(record.has_annotation("status", "200"));
        // The server span is parented to the client attempt span.
        let attempt_id = record.spans_named("llm.attempt")[0].span_id;
        assert_eq!(
            record.spans_named("server.handle")[0].parent,
            Some(attempt_id)
        );

        // The stitched record is fetchable over HTTP.
        let response = raw_get(server.address(), &format!("/trace/{trace_id}"));
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains(&format!("\"trace_id\":{trace_id}")));
        assert!(response.contains("server.handle"), "{response}");
        let index = raw_get(server.address(), "/requests");
        assert!(
            index.contains(&format!("\"trace_id\":{trace_id}")),
            "{index}"
        );

        // Unknown and malformed ids fail cleanly.
        assert!(raw_get(server.address(), "/trace/999999999").starts_with("HTTP/1.1 404"));
        assert!(raw_get(server.address(), "/trace/banana").starts_with("HTTP/1.1 400"));
        obs::recorder::disable();
        // Without a recorder the endpoints say so instead of pretending.
        assert!(raw_get(server.address(), "/requests").starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn models_endpoint_lists_hosted_model() {
        let llm = SimLlm::new(ModelProfile::turbo_16k(), 1);
        let server = CompletionServer::start(llm).unwrap();
        let mut stream = TcpStream::connect(server.address()).unwrap();
        write!(
            stream,
            "GET /v1/models HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.contains("gpt-3.5-turbo-16k"));
    }
}
