//! Sliding-window aggregation: rolling throughput and latency percentiles
//! over the last N seconds, next to the cumulative registry.
//!
//! Cumulative counters and histograms answer "what happened since the
//! process started"; a sustained load run needs "what is happening *right
//! now*" — rolling throughput, the windowed p99, the shed rate over the
//! last ten seconds. [`WindowedCounter`] and [`WindowedHistogram`] provide
//! that as a ring of fixed-duration buckets: each recording lands in the
//! bucket owning the current time slice, and a summary aggregates the
//! buckets still inside the window, so old traffic ages out bucket by
//! bucket instead of lingering forever.
//!
//! The ring reuses the registry's log-scale bucket layout
//! ([`crate::registry::BUCKETS`]) so windowed percentiles interpolate with
//! the same [`crate::registry::percentile`] math as the cumulative ones —
//! a windowed p99 and a cumulative p99 over the same steady workload
//! converge to the same bucket.
//!
//! Recording is relaxed atomics on the hot path; a bucket is reset under a
//! short per-slot mutex only when the ring rotates into it (once per
//! bucket duration). A thread that stalls between reading the clock and
//! recording can land its sample one bucket late, and samples recorded
//! concurrently with a rotation can be lost — bounded, telemetry-grade
//! imprecision, never unbounded error.
//!
//! Time is measured from a per-structure epoch (`Instant` at
//! construction). Every operation has an `_at` variant taking the elapsed
//! duration explicitly, so tests drive the clock deterministically.

use crate::registry::{percentile, HistogramSummary, BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Ring sizing: `buckets` slices of `bucket` each; the window covers
/// `bucket * buckets` of wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Duration of one ring slot.
    pub bucket: Duration,
    /// Number of ring slots.
    pub buckets: usize,
}

impl WindowConfig {
    /// The server default: ten one-second buckets (a 10 s rolling view).
    pub fn seconds_10() -> WindowConfig {
        WindowConfig {
            bucket: Duration::from_secs(1),
            buckets: 10,
        }
    }

    /// Total window span.
    pub fn span(&self) -> Duration {
        self.bucket * self.buckets as u32
    }
}

impl Default for WindowConfig {
    fn default() -> WindowConfig {
        WindowConfig::seconds_10()
    }
}

/// One ring slot. `generation` holds `tick + 1` of the time slice the slot
/// currently represents (0 = never used); per-slot generations are
/// monotonic because slot `i` only ever holds ticks `≡ i (mod n)`.
#[derive(Debug)]
struct Slot {
    generation: AtomicU64,
    rotate: Mutex<()>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Slot {
    fn default() -> Slot {
        Slot {
            generation: AtomicU64::new(0),
            rotate: Mutex::new(()),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Slot {
    /// Makes the slot represent `tick`, zeroing stale contents. Returns
    /// `false` when the slot already moved past `tick` (the caller's clock
    /// read is stale; its sample belongs to a newer slice and recording it
    /// there is a bounded, acceptable skew).
    fn rotate_to(&self, tick: u64) -> bool {
        let want = tick + 1;
        let current = self.generation.load(Ordering::Acquire);
        if current == want {
            return true;
        }
        if current > want {
            return false;
        }
        let _guard = self.rotate.lock().expect("window slot rotation");
        let current = self.generation.load(Ordering::Acquire);
        if current >= want {
            return current == want;
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.generation.store(want, Ordering::Release);
        true
    }
}

/// A point-in-time view of a window: the aggregate of every ring slot
/// still inside it, plus the rate it implies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSummary {
    /// Wall-clock the window actually covers — `min(elapsed, span)`, so
    /// early-life rates aren't diluted by empty future buckets.
    pub covered: Duration,
    /// Samples (or counter increments) inside the window.
    pub count: u64,
    /// Sum of samples inside the window.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median estimate over the window.
    pub p50: f64,
    /// 95th-percentile estimate over the window.
    pub p95: f64,
    /// 99th-percentile estimate over the window.
    pub p99: f64,
}

impl WindowSummary {
    /// Events per second over the covered duration (0 when nothing is
    /// covered yet).
    pub fn rate_per_sec(&self) -> f64 {
        let secs = self.covered.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.count as f64 / secs
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A log-scale histogram over a sliding window: the windowed counterpart
/// of [`crate::registry::Histogram`].
#[derive(Debug)]
pub struct WindowedHistogram {
    slots: Vec<Slot>,
    bucket_us: u64,
    epoch: Instant,
}

impl WindowedHistogram {
    /// An empty windowed histogram; the window starts now.
    pub fn new(config: WindowConfig) -> WindowedHistogram {
        WindowedHistogram::with_epoch(config, Instant::now())
    }

    /// An empty windowed histogram measuring time from `epoch`. A registry
    /// passes its own construction time so that a metric first touched
    /// long after startup doesn't report a near-zero covered duration
    /// (which would wildly inflate its first rate reading).
    pub fn with_epoch(config: WindowConfig, epoch: Instant) -> WindowedHistogram {
        WindowedHistogram {
            slots: (0..config.buckets.max(1))
                .map(|_| Slot::default())
                .collect(),
            bucket_us: (config.bucket.as_micros() as u64).max(1),
            epoch,
        }
    }

    fn tick_of(&self, elapsed: Duration) -> u64 {
        (elapsed.as_micros() as u64) / self.bucket_us
    }

    /// Records one sample at the current time.
    pub fn record(&self, v: u64) {
        self.record_at(v, self.epoch.elapsed());
    }

    /// Records a wall-clock duration in whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one sample as of `elapsed` since the epoch (the
    /// deterministic entry point tests use).
    pub fn record_at(&self, v: u64, elapsed: Duration) {
        let mut tick = self.tick_of(elapsed);
        let mut slot = &self.slots[(tick as usize) % self.slots.len()];
        if !slot.rotate_to(tick) {
            // Our clock read was stale: the ring already moved on. Land the
            // sample in the slice the slot now represents instead of
            // dropping it.
            tick = (slot.generation.load(Ordering::Acquire)).saturating_sub(1);
            slot = &self.slots[(tick as usize) % self.slots.len()];
        }
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(v, Ordering::Relaxed);
        slot.min.fetch_min(v, Ordering::Relaxed);
        slot.max.fetch_max(v, Ordering::Relaxed);
        slot.buckets[crate::registry::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// The rolling summary as of now.
    pub fn summary(&self) -> WindowSummary {
        self.summary_at(self.epoch.elapsed())
    }

    /// Aggregates the slots whose tick lies in `(now_tick - n, now_tick]`
    /// into `(bucket counts, count, sum, min, max, covered)`.
    fn aggregate_at(&self, elapsed: Duration) -> ([u64; BUCKETS], u64, u64, u64, u64, Duration) {
        let now_tick = self.tick_of(elapsed);
        let n = self.slots.len() as u64;
        let oldest = (now_tick + 1).saturating_sub(n);
        let mut counts = [0u64; BUCKETS];
        let (mut count, mut sum) = (0u64, 0u64);
        let (mut min, mut max) = (u64::MAX, 0u64);
        for slot in &self.slots {
            let generation = slot.generation.load(Ordering::Acquire);
            if generation == 0 {
                continue;
            }
            let tick = generation - 1;
            if tick < oldest || tick > now_tick {
                continue;
            }
            let slot_count = slot.count.load(Ordering::Relaxed);
            if slot_count == 0 {
                continue;
            }
            count += slot_count;
            sum += slot.sum.load(Ordering::Relaxed);
            min = min.min(slot.min.load(Ordering::Relaxed));
            max = max.max(slot.max.load(Ordering::Relaxed));
            for (acc, b) in counts.iter_mut().zip(&slot.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        let span_us = self.bucket_us.saturating_mul(n);
        let covered = Duration::from_micros((elapsed.as_micros() as u64).min(span_us));
        (counts, count, sum, min, max, covered)
    }

    /// The current window frozen into a mergeable
    /// [`HistSnapshot`](crate::snapshot::HistSnapshot) — the windowed
    /// section of a process's `/metrics.json`.
    pub fn snapshot(&self) -> crate::snapshot::HistSnapshot {
        self.snapshot_at(self.epoch.elapsed())
    }

    /// [`WindowedHistogram::snapshot`] as of `elapsed` since the epoch.
    pub fn snapshot_at(&self, elapsed: Duration) -> crate::snapshot::HistSnapshot {
        let (counts, count, sum, min, max, _) = self.aggregate_at(elapsed);
        let (min, max) = if count == 0 { (0, 0) } else { (min, max) };
        crate::snapshot::HistSnapshot {
            count,
            sum,
            min,
            max,
            buckets: counts.to_vec(),
        }
    }

    /// The rolling summary as of `elapsed` since the epoch: aggregates the
    /// slots whose tick lies in `(now_tick - n, now_tick]`.
    pub fn summary_at(&self, elapsed: Duration) -> WindowSummary {
        let (counts, count, sum, min, max, covered) = self.aggregate_at(elapsed);
        if count == 0 {
            return WindowSummary {
                covered,
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let pct = |q: f64| percentile(&counts, count, q, min, max);
        WindowSummary {
            covered,
            count,
            sum,
            min,
            max,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

/// A counter over a sliding window — rolling rates (requests/sec, sheds in
/// the last N seconds) instead of an ever-growing total.
#[derive(Debug)]
pub struct WindowedCounter {
    inner: WindowedHistogram,
}

impl WindowedCounter {
    /// An empty windowed counter; the window starts now.
    pub fn new(config: WindowConfig) -> WindowedCounter {
        WindowedCounter {
            inner: WindowedHistogram::new(config),
        }
    }

    /// An empty windowed counter measuring time from `epoch` (see
    /// [`WindowedHistogram::with_epoch`]).
    pub fn with_epoch(config: WindowConfig, epoch: Instant) -> WindowedCounter {
        WindowedCounter {
            inner: WindowedHistogram::with_epoch(config, epoch),
        }
    }

    /// Adds `n` at the current time.
    pub fn add(&self, n: u64) {
        self.add_at(n, self.inner.epoch.elapsed());
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` as of `elapsed` since the epoch.
    pub fn add_at(&self, n: u64, elapsed: Duration) {
        // One sample of value n: `sum` aggregates to the windowed total.
        self.inner.record_at(n, elapsed);
    }

    /// Total added inside the window as of now.
    pub fn window_total(&self) -> u64 {
        self.inner.summary().sum
    }

    /// Total added inside the window as of `elapsed`.
    pub fn window_total_at(&self, elapsed: Duration) -> u64 {
        self.inner.summary_at(elapsed).sum
    }

    /// Additions per second over the covered window.
    pub fn rate_per_sec(&self) -> f64 {
        let s = self.inner.summary();
        let secs = s.covered.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            s.sum as f64 / secs
        }
    }
}

/// A thread-safe registry of named windowed metrics, mirroring
/// [`crate::registry::MetricsRegistry`]'s create-on-first-use contract.
/// All metrics share one [`WindowConfig`].
#[derive(Debug)]
pub struct WindowedRegistry {
    config: WindowConfig,
    /// Shared epoch for every metric: covered durations measure from
    /// registry creation, not first touch, so first-scrape rates are
    /// honest for metrics that start recording late.
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<WindowedCounter>>>,
    histograms: Mutex<BTreeMap<String, Arc<WindowedHistogram>>>,
}

impl WindowedRegistry {
    /// An empty registry whose metrics all use `config`.
    pub fn new(config: WindowConfig) -> WindowedRegistry {
        WindowedRegistry {
            config,
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shared window sizing.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// The windowed counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<WindowedCounter> {
        let mut map = self.counters.lock().expect("windowed counter map");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(WindowedCounter::with_epoch(self.config, self.epoch))),
        )
    }

    /// The windowed histogram registered under `name`, created on first
    /// use.
    pub fn histogram(&self, name: &str) -> Arc<WindowedHistogram> {
        let mut map = self.histograms.lock().expect("windowed histogram map");
        Arc::clone(
            map.entry(name.to_string()).or_insert_with(|| {
                Arc::new(WindowedHistogram::with_epoch(self.config, self.epoch))
            }),
        )
    }

    /// Sorted `(name, summary)` pairs of every windowed histogram.
    pub fn histograms(&self) -> Vec<(String, WindowSummary)> {
        let map = self.histograms.lock().expect("windowed histogram map");
        map.iter().map(|(k, v)| (k.clone(), v.summary())).collect()
    }

    /// Sorted `(name, snapshot)` pairs of every windowed histogram's raw
    /// window buckets.
    pub fn histogram_snapshots(&self) -> Vec<(String, crate::snapshot::HistSnapshot)> {
        let map = self.histograms.lock().expect("windowed histogram map");
        map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }

    /// Wall-clock the window currently covers: the registry's age,
    /// saturating at the configured span.
    pub fn covered(&self) -> Duration {
        self.epoch.elapsed().min(self.config.span())
    }

    /// Sorted `(name, window_total)` pairs of every windowed counter.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().expect("windowed counter map");
        map.iter()
            .map(|(k, v)| (k.clone(), v.window_total()))
            .collect()
    }
}

/// Renders one windowed histogram summary next to its cumulative
/// counterpart as a compact JSON object — the building block of the
/// server's `/stats` body.
pub fn summary_json(window: &WindowSummary, cumulative: Option<&HistogramSummary>) -> String {
    let mut out = format!(
        "{{\"window\":{{\"count\":{},\"rate_per_sec\":{:.3},\"min_us\":{},\"max_us\":{},\"p50_us\":{:.0},\"p95_us\":{:.0},\"p99_us\":{:.0}}}",
        window.count,
        window.rate_per_sec(),
        window.min,
        window.max,
        window.p50,
        window.p95,
        window.p99,
    );
    if let Some(c) = cumulative {
        out.push_str(&format!(
            ",\"cumulative\":{{\"count\":{},\"min_us\":{},\"max_us\":{},\"p50_us\":{:.0},\"p95_us\":{:.0},\"p99_us\":{:.0}}}",
            c.count, c.min, c.max, c.p50, c.p95, c.p99
        ));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: WindowConfig = WindowConfig {
        bucket: Duration::from_secs(1),
        buckets: 4,
    };

    fn at(secs: f64) -> Duration {
        Duration::from_secs_f64(secs)
    }

    #[test]
    fn window_aggregates_only_recent_buckets() {
        let h = WindowedHistogram::new(CFG);
        h.record_at(100, at(0.5)); // tick 0
        h.record_at(200, at(1.5)); // tick 1
        h.record_at(400, at(3.5)); // tick 3

        // At t=3.5 every bucket is inside the 4-bucket window.
        let s = h.summary_at(at(3.5));
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 700);
        assert_eq!((s.min, s.max), (100, 400));

        // At t=4.5 the window is ticks 1..=4: the t=0.5 sample has aged out.
        let s = h.summary_at(at(4.5));
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 600);
        assert_eq!(s.min, 200);

        // At t=8.0 everything has aged out.
        let s = h.summary_at(at(8.0));
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn ring_slots_are_reset_on_reuse() {
        let h = WindowedHistogram::new(CFG);
        h.record_at(1000, at(0.5)); // tick 0 → slot 0
        h.record_at(8, at(4.2)); // tick 4 → slot 0 again, must reset first
        let s = h.summary_at(at(4.2));
        assert_eq!(s.count, 1, "stale slot contents must not leak");
        assert_eq!(s.sum, 8);
        assert_eq!(s.max, 8);
    }

    #[test]
    fn stale_clock_reads_do_not_resurrect_old_slots() {
        let h = WindowedHistogram::new(CFG);
        h.record_at(7, at(4.2)); // slot 0 now owns tick 4
                                 // A thread whose clock read predates the rotation must not reset
                                 // slot 0 back to tick 0; its sample lands in the live slice.
        h.record_at(9, at(0.5));
        let s = h.summary_at(at(4.2));
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 16);
    }

    #[test]
    fn windowed_percentiles_match_cumulative_on_a_steady_stream() {
        let windowed = WindowedHistogram::new(WindowConfig {
            bucket: Duration::from_millis(250),
            buckets: 8,
        });
        let cumulative = crate::registry::Histogram::default();
        // A steady stream entirely inside the 2 s window: both views see
        // identical samples, so the percentiles must agree exactly.
        for i in 0..2000u64 {
            let v = 100 + (i % 400);
            let elapsed = Duration::from_micros(i * 900); // 1.8 s total
            windowed.record_at(v, elapsed);
            cumulative.record(v);
        }
        let w = windowed.summary_at(Duration::from_micros(1999 * 900));
        let c = cumulative.summary();
        assert_eq!(w.count, c.count);
        assert_eq!(w.p50, c.p50);
        assert_eq!(w.p99, c.p99);
        assert_eq!((w.min, w.max), (c.min, c.max));
    }

    #[test]
    fn rate_uses_covered_duration_not_full_span() {
        let c = WindowedCounter::new(CFG);
        c.add_at(50, at(0.2));
        c.add_at(50, at(0.4));
        // Only 0.5 s of a 4 s window has elapsed: the rate divides by the
        // covered half-second, not the whole span.
        let s = c.inner.summary_at(at(0.5));
        assert_eq!(s.sum, 100);
        let rate = s.sum as f64 / s.covered.as_secs_f64();
        assert!((rate - 200.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn counter_window_totals_age_out() {
        let c = WindowedCounter::new(CFG);
        c.add_at(10, at(0.5));
        c.add_at(5, at(2.5));
        assert_eq!(c.window_total_at(at(2.5)), 15);
        assert_eq!(c.window_total_at(at(4.5)), 5);
        assert_eq!(c.window_total_at(at(9.0)), 0);
    }

    #[test]
    fn registry_hands_back_shared_handles() {
        let r = WindowedRegistry::new(CFG);
        r.counter("load.requests").add_at(3, at(0.1));
        assert_eq!(r.counter("load.requests").window_total_at(at(0.2)), 3);
        r.histogram("load.latency_us").record_at(40, at(0.1));
        assert_eq!(r.histogram("load.latency_us").summary_at(at(0.2)).count, 1);
        let names: Vec<String> = r.histograms().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["load.latency_us".to_string()]);
    }

    #[test]
    fn concurrent_records_survive_rotation() {
        let h = Arc::new(WindowedHistogram::new(WindowConfig {
            bucket: Duration::from_millis(1),
            buckets: 4,
        }));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(i % 997);
                    }
                });
            }
        });
        // Rotation races may drop a handful of samples, never corrupt the
        // structure; with 1 ms buckets nearly everything has aged out of
        // the 4 ms window by now, so only invariants are asserted.
        let s = h.summary();
        assert!(s.count <= 20_000);
        assert!(s.p50 <= s.p99);
    }

    #[test]
    fn registry_metrics_share_the_registry_epoch() {
        let r = WindowedRegistry::new(CFG);
        std::thread::sleep(Duration::from_millis(30));
        // First touch happens well after registry creation: the covered
        // duration must reflect the registry's age, not the instant of the
        // first sample (which would report an absurd first-scrape rate).
        let h = r.histogram("late.latency_us");
        h.record(100);
        let s = h.summary();
        assert!(
            s.covered >= Duration::from_millis(30),
            "covered {:?} must measure from registry creation",
            s.covered
        );
    }

    #[test]
    fn summary_json_renders_window_and_cumulative() {
        let h = WindowedHistogram::new(CFG);
        h.record_at(100, at(0.5));
        let w = h.summary_at(at(0.6));
        let text = summary_json(&w, None);
        assert!(text.contains("\"count\":1"), "{text}");
        assert!(text.contains("\"p99_us\":100"), "{text}");
        assert!(!text.contains("cumulative"), "{text}");
        let c = crate::registry::Histogram::default();
        c.record(100);
        let text = summary_json(&w, Some(&c.summary()));
        assert!(text.contains("\"cumulative\""), "{text}");
    }
}
