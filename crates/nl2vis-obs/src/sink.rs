//! Structured event sinks.
//!
//! Instrumented code emits [`Event`]s — span open/close, counter deltas,
//! errors, access logs — through the process-wide sink installed with
//! [`set_sink`]. The default sink drops everything (observability off costs
//! one relaxed load and an `Arc` clone per event); [`JsonlSink`] serializes
//! each event as one JSON line to any writer, and [`MemorySink`] captures
//! lines in memory for tests and reports.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// One structured telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span started.
    SpanOpen {
        /// Trace the span belongs to.
        trace: u64,
        /// Span id, unique within the process.
        span: u64,
        /// Enclosing span, if nested.
        parent: Option<u64>,
        /// Span name (`pipeline.parse`).
        name: String,
    },
    /// A span finished.
    SpanClose {
        /// Trace the span belongs to.
        trace: u64,
        /// Span id.
        span: u64,
        /// Span name.
        name: String,
        /// Wall-clock duration in microseconds.
        duration_us: u64,
    },
    /// A counter moved.
    CounterDelta {
        /// Counter name.
        name: String,
        /// Amount added.
        delta: u64,
        /// Value after the addition.
        value: u64,
    },
    /// An error was recorded.
    Error {
        /// Component that failed (`pipeline`, `llm`, `eval`).
        component: String,
        /// Machine-readable error kind (`no_query`, `parse`).
        kind: String,
        /// Human-readable message.
        message: String,
    },
    /// A free-form structured log line (e.g. HTTP access logs).
    Log {
        /// Emitting component.
        component: String,
        /// Message.
        message: String,
        /// Additional key/value fields.
        fields: Vec<(String, String)>,
    },
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds since the Unix epoch (0 if the clock is before it).
fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

impl Event {
    /// The event as one compact JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let ts = now_us();
        match self {
            Event::SpanOpen { trace, span, parent, name } => {
                let parent = match parent {
                    Some(p) => p.to_string(),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"event\":\"span_open\",\"ts_us\":{ts},\"trace\":{trace},\"span\":{span},\"parent\":{parent},\"name\":\"{}\"}}",
                    escape_json(name)
                )
            }
            Event::SpanClose { trace, span, name, duration_us } => format!(
                "{{\"event\":\"span_close\",\"ts_us\":{ts},\"trace\":{trace},\"span\":{span},\"name\":\"{}\",\"duration_us\":{duration_us}}}",
                escape_json(name)
            ),
            Event::CounterDelta { name, delta, value } => format!(
                "{{\"event\":\"counter\",\"ts_us\":{ts},\"name\":\"{}\",\"delta\":{delta},\"value\":{value}}}",
                escape_json(name)
            ),
            Event::Error { component, kind, message } => format!(
                "{{\"event\":\"error\",\"ts_us\":{ts},\"component\":\"{}\",\"kind\":\"{}\",\"message\":\"{}\"}}",
                escape_json(component),
                escape_json(kind),
                escape_json(message)
            ),
            Event::Log { component, message, fields } => {
                let mut extra = String::new();
                for (k, v) in fields {
                    extra.push_str(&format!(
                        ",\"{}\":\"{}\"",
                        escape_json(k),
                        escape_json(v)
                    ));
                }
                format!(
                    "{{\"event\":\"log\",\"ts_us\":{ts},\"component\":\"{}\",\"message\":\"{}\"{extra}}}",
                    escape_json(component),
                    escape_json(message)
                )
            }
        }
    }
}

/// A destination for telemetry events.
pub trait EventSink: Send + Sync {
    /// Receives one event.
    fn emit(&self, event: &Event);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Discards every event.
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Writes each event as one JSON line to a writer (file, socket, stderr).
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps a writer.
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// A sink writing to stderr.
    pub fn stderr() -> JsonlSink {
        JsonlSink::new(Box::new(std::io::stderr()))
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut out = self.out.lock().expect("jsonl writer");
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl writer").flush();
    }
}

/// Captures JSONL lines in memory — the test and report sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A snapshot of the captured JSONL lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink").clone()
    }

    /// Drops captured lines.
    pub fn clear(&self) {
        self.lines.lock().expect("memory sink").clear();
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.lines
            .lock()
            .expect("memory sink")
            .push(event.to_json());
    }
}

fn sink_slot() -> &'static RwLock<Arc<dyn EventSink>> {
    static SINK: OnceLock<RwLock<Arc<dyn EventSink>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(Arc::new(NullSink)))
}

/// Whether a non-null sink is installed (lets hot paths skip event
/// construction entirely).
static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Installs the process-wide event sink. Replaces any previous sink.
pub fn set_sink(sink: Arc<dyn EventSink>) {
    *sink_slot().write().expect("sink slot") = sink;
    SINK_ACTIVE.store(true, Ordering::Release);
}

/// Restores the default drop-everything sink.
pub fn disable_sink() {
    SINK_ACTIVE.store(false, Ordering::Release);
    *sink_slot().write().expect("sink slot") = Arc::new(NullSink);
}

/// The currently installed sink.
pub fn sink() -> Arc<dyn EventSink> {
    Arc::clone(&sink_slot().read().expect("sink slot"))
}

/// True when events will actually be recorded somewhere.
pub fn sink_active() -> bool {
    SINK_ACTIVE.load(Ordering::Acquire)
}

/// Emits one event to the installed sink.
pub fn emit(event: &Event) {
    if sink_active() {
        sink().emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_to_valid_jsonl_shapes() {
        let open = Event::SpanOpen {
            trace: 1,
            span: 2,
            parent: None,
            name: "a.b".into(),
        };
        let line = open.to_json();
        assert!(line.starts_with("{\"event\":\"span_open\""), "{line}");
        assert!(line.contains("\"parent\":null"));
        assert!(line.contains("\"name\":\"a.b\""));

        let close = Event::SpanClose {
            trace: 1,
            span: 2,
            name: "a.b".into(),
            duration_us: 17,
        };
        assert!(close.to_json().contains("\"duration_us\":17"));

        let log = Event::Log {
            component: "llm".into(),
            message: "access".into(),
            fields: vec![("path".into(), "/v1/completions".into())],
        };
        assert!(log.to_json().contains("\"path\":\"/v1/completions\""));
    }

    #[test]
    fn json_escaping_handles_control_and_quote_characters() {
        let e = Event::Error {
            component: "pipeline".into(),
            kind: "parse".into(),
            message: "bad \"token\"\n\tat byte \u{1}7".into(),
        };
        let line = e.to_json();
        assert!(
            line.contains("bad \\\"token\\\"\\n\\tat byte \\u00017"),
            "{line}"
        );
        // No raw control characters survive.
        assert!(line.chars().all(|c| (c as u32) >= 0x20));
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let sink = MemorySink::new();
        for i in 0..3u64 {
            sink.emit(&Event::CounterDelta {
                name: "x.y".into(),
                delta: 1,
                value: i + 1,
            });
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].contains("\"value\":3"));
        sink.clear();
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_newline_delimited_records() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(Shared(Arc::clone(&buf))));
        sink.emit(&Event::CounterDelta {
            name: "a".into(),
            delta: 1,
            value: 1,
        });
        sink.emit(&Event::CounterDelta {
            name: "b".into(),
            delta: 1,
            value: 1,
        });
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
