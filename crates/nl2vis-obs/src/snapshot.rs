//! Mergeable point-in-time metric snapshots — the wire format of the
//! fleet observability plane.
//!
//! A [`Snapshot`] freezes a registry (and optionally its windowed
//! counterpart) into plain data: counter values, gauge values, and raw
//! log-scale bucket arrays for every histogram. Because every process
//! shares the same power-of-two bucket layout
//! ([`crate::registry::BUCKETS`]), two snapshots merge *exactly*:
//! bucket arrays add elementwise, counts and sums add, mins and maxes
//! combine — so a percentile computed from a merged snapshot equals the
//! percentile of the union of the underlying samples recorded into one
//! histogram. No resampling, no approximation on top of the bucket
//! quantization already present in each process.
//!
//! [`Snapshot::merge`] is associative and commutative (every per-field
//! operation is `+`, `min`, or `max`), so a fleet observer may fold
//! replica snapshots in any order — or in a tree — and always obtain the
//! same fleet view. The laws are pinned by property-style tests below.
//!
//! Serialization is `to_json` (this crate is std-only and builds the
//! string by hand, like the recorder); *parsing* lives with consumers
//! that have a JSON parser (`nl2vis-router`'s fleet module).

use crate::registry::{percentile, HistogramSummary, MetricsRegistry, BUCKETS};
use crate::sink::escape_json;
use crate::window::WindowedRegistry;
use std::collections::BTreeMap;

/// Identifies the snapshot wire format; bump on layout changes.
pub const FORMAT: &str = "nl2vis.metrics.v1";

/// One histogram's raw state: everything needed to recompute summaries,
/// and nothing that can't be merged exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Log-scale bucket counts, [`BUCKETS`] long.
    pub buckets: Vec<u64>,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Builds a snapshot from raw parts, padding or truncating `buckets`
    /// to [`BUCKETS`] (decoders hand in possibly-trimmed arrays).
    pub fn from_parts(count: u64, sum: u64, min: u64, max: u64, mut buckets: Vec<u64>) -> Self {
        buckets.resize(BUCKETS, 0);
        HistSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }

    /// Merges `other` in: buckets add elementwise, count/sum add,
    /// min/max combine (empty sides contribute nothing).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
    }

    /// Quantile estimate, identical math to the live histogram's.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile(&self.buckets, self.count, q, self.min, self.max)
    }

    /// A [`HistogramSummary`] recomputed from the frozen buckets
    /// (exemplars are per-process and do not survive snapshotting).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            exemplar: None,
        }
    }

    /// Fraction of samples at or below `threshold` (SLO attainment).
    /// Buckets entirely below count in full; the straddling bucket
    /// contributes the linearly interpolated share of its width.
    pub fn fraction_at_or_below(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 1.0;
        }
        let mut good = 0.0f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = crate::registry::bucket_bounds(i);
            if hi <= threshold {
                good += c as f64;
            } else if lo <= threshold {
                let width = (hi - lo + 1) as f64;
                good += c as f64 * (threshold - lo + 1) as f64 / width;
            }
        }
        (good / self.count as f64).clamp(0.0, 1.0)
    }

    fn to_json(&self) -> String {
        // Trailing zero buckets are trimmed: decoders pad back to
        // BUCKETS, and elementwise addition is unaffected.
        let used = self
            .buckets
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, |i| i + 1);
        let buckets: Vec<String> = self.buckets[..used].iter().map(u64::to_string).collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min,
            self.max,
            buckets.join(",")
        )
    }
}

impl From<&crate::registry::Histogram> for HistSnapshot {
    fn from(h: &crate::registry::Histogram) -> HistSnapshot {
        h.snapshot()
    }
}

/// A frozen, mergeable view of one process's metrics: the cumulative
/// registry plus (optionally) the sliding-window registry's current
/// window. The unit the fleet plane scrapes, merges, and re-serves.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// How many process snapshots were merged into this one (1 for a
    /// freshly collected snapshot; adds on merge).
    pub sources: u64,
    /// Wall-clock actually covered by the windowed sections, in
    /// microseconds (max on merge — replicas share the window span but
    /// may differ in uptime).
    pub window_covered_us: u64,
    /// Cumulative counters (add on merge).
    pub counters: BTreeMap<String, u64>,
    /// Gauges (add on merge: inflight/depth-style gauges sum to the
    /// fleet total; summed high-water marks upper-bound the fleet peak).
    pub gauges: BTreeMap<String, i64>,
    /// Cumulative histograms (exact bucket merge).
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Windowed counter totals over the current window (add on merge).
    pub windowed_counters: BTreeMap<String, u64>,
    /// Windowed histograms over the current window (exact bucket merge).
    pub windowed_histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Freezes `metrics` (and `windowed`, when given) into a snapshot.
    pub fn collect(metrics: &MetricsRegistry, windowed: Option<&WindowedRegistry>) -> Snapshot {
        let mut snap = Snapshot {
            sources: 1,
            counters: metrics.counters().into_iter().collect(),
            gauges: metrics.gauges().into_iter().collect(),
            histograms: metrics.histogram_snapshots().into_iter().collect(),
            ..Snapshot::default()
        };
        if let Some(w) = windowed {
            snap.window_covered_us = w.covered().as_micros() as u64;
            snap.windowed_counters = w.counters().into_iter().collect();
            snap.windowed_histograms = w.histogram_snapshots().into_iter().collect();
        }
        snap
    }

    /// Merges `other` in. Associative and commutative: counters, gauges,
    /// counts, sums, and buckets add; mins/maxes combine; names missing
    /// on either side behave as empty metrics.
    pub fn merge(&mut self, other: &Snapshot) {
        self.sources += other.sources;
        self.window_covered_us = self.window_covered_us.max(other.window_covered_us);
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_default() += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        for (name, v) in &other.windowed_counters {
            *self.windowed_counters.entry(name.clone()).or_default() += v;
        }
        for (name, h) in &other.windowed_histograms {
            self.windowed_histograms
                .entry(name.clone())
                .or_default()
                .merge(h);
        }
    }

    /// Folds `snapshots` into one fleet view (empty input → empty
    /// snapshot with `sources == 0`).
    pub fn merged<'a>(snapshots: impl IntoIterator<Item = &'a Snapshot>) -> Snapshot {
        let mut out = Snapshot::default();
        for s in snapshots {
            out.merge(s);
        }
        out
    }

    /// Cumulative counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Windowed counter total (0 when absent).
    pub fn windowed_counter(&self, name: &str) -> u64 {
        self.windowed_counters.get(name).copied().unwrap_or(0)
    }

    /// The structured JSON body of `GET /metrics.json`.
    pub fn to_json(&self) -> String {
        fn map<V>(m: &BTreeMap<String, V>, render: impl Fn(&V) -> String) -> String {
            let entries: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape_json(k), render(v)))
                .collect();
            format!("{{{}}}", entries.join(","))
        }
        format!(
            "{{\"format\":\"{FORMAT}\",\"sources\":{},\"window_covered_us\":{},\"counters\":{},\"gauges\":{},\"histograms\":{},\"windowed_counters\":{},\"windowed_histograms\":{}}}",
            self.sources,
            self.window_covered_us,
            map(&self.counters, u64::to_string),
            map(&self.gauges, i64::to_string),
            map(&self.histograms, HistSnapshot::to_json),
            map(&self.windowed_counters, u64::to_string),
            map(&self.windowed_histograms, HistSnapshot::to_json),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Histogram;
    use crate::window::WindowConfig;
    use std::time::Duration;

    /// A tiny deterministic xorshift PRNG — the test harness is
    /// dependency-free, so property-style tests roll their own entropy.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        /// A sample spread across many octaves so bucket arrays are
        /// exercised broadly.
        fn sample(&mut self) -> u64 {
            let shift = self.next() % 40;
            self.next() >> (24 + shift % 40)
        }
    }

    fn random_snapshot(rng: &mut Rng) -> Snapshot {
        let metrics = MetricsRegistry::new();
        for name in ["a.requests_total", "b.errors_total"] {
            metrics.counter(name).add(rng.next() % 1000);
        }
        metrics.gauge("a.inflight").set((rng.next() % 64) as i64);
        let h = metrics.histogram("a.latency_us");
        for _ in 0..(rng.next() % 200) {
            h.record(rng.sample());
        }
        // One metric present only sometimes, so merges see asymmetric
        // key sets.
        if rng.next() % 2 == 0 {
            metrics.histogram("c.rare_us").record(rng.sample());
        }
        let mut snap = Snapshot::collect(&metrics, None);
        snap.window_covered_us = rng.next() % 10_000_000;
        snap.windowed_counters
            .insert("w.requests".to_string(), rng.next() % 500);
        snap
    }

    #[test]
    fn merge_is_commutative() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for _ in 0..25 {
            let (a, b) = (random_snapshot(&mut rng), random_snapshot(&mut rng));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba);
        }
    }

    #[test]
    fn merge_is_associative() {
        let mut rng = Rng(0xDEADBEEFCAFEF00D);
        for _ in 0..25 {
            let a = random_snapshot(&mut rng);
            let b = random_snapshot(&mut rng);
            let c = random_snapshot(&mut rng);
            let mut left = a.clone(); // (a ⊕ b) ⊕ c
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone(); // a ⊕ (b ⊕ c)
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right);
        }
    }

    #[test]
    fn empty_snapshot_is_the_merge_identity() {
        let mut rng = Rng(42);
        let a = random_snapshot(&mut rng);
        let mut left = Snapshot::default();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&Snapshot::default());
        assert_eq!(left, a);
        assert_eq!(right, a);
    }

    #[test]
    fn merged_percentiles_equal_union_percentiles_exactly() {
        // The acceptance property: replica histograms merged at the
        // bucket level yield the *same* quantile estimates as all
        // samples recorded into one histogram, for every quantile —
        // shared bucket boundaries make the merge lossless.
        let mut rng = Rng(0x1234_5678_9ABC_DEF1);
        for round in 0..10 {
            let (h1, h2, union) = (
                Histogram::default(),
                Histogram::default(),
                Histogram::default(),
            );
            for i in 0..400 {
                let v = rng.sample();
                if i % 3 == 0 {
                    h1.record(v);
                } else {
                    h2.record(v);
                }
                union.record(v);
            }
            let mut merged = h1.snapshot();
            merged.merge(&h2.snapshot());
            let truth = union.snapshot();
            assert_eq!(merged, truth, "round {round}");
            for q in [0.0, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0] {
                assert_eq!(merged.quantile(q), union.quantile(q), "q={q}");
            }
            assert_eq!(merged.summary().p99, union.summary().p99);
        }
    }

    #[test]
    fn merge_handles_empty_and_disjoint_histograms() {
        let mut empty = HistSnapshot::default();
        let h = Histogram::default();
        h.record(100);
        h.record(5000);
        empty.merge(&h.snapshot());
        assert_eq!(empty, h.snapshot(), "empty ⊕ x == x");
        assert_eq!((empty.min, empty.max), (100, 5000));

        let mut x = h.snapshot();
        x.merge(&HistSnapshot::default());
        assert_eq!(x, h.snapshot(), "x ⊕ empty == x");
    }

    #[test]
    fn collect_freezes_both_registries() {
        let metrics = MetricsRegistry::new();
        metrics.counter("s.requests_total").add(7);
        metrics.gauge("s.inflight").set(3);
        metrics.histogram("s.latency_us").record(250);
        let windowed = WindowedRegistry::new(WindowConfig::seconds_10());
        windowed.counter("s.requests").add(4);
        windowed.histogram("s.latency_us").record(250);

        let snap = Snapshot::collect(&metrics, Some(&windowed));
        assert_eq!(snap.sources, 1);
        assert_eq!(snap.counter("s.requests_total"), 7);
        assert_eq!(snap.gauges["s.inflight"], 3);
        assert_eq!(snap.histograms["s.latency_us"].count, 1);
        assert_eq!(snap.windowed_counter("s.requests"), 4);
        assert_eq!(snap.windowed_histograms["s.latency_us"].sum, 250);
        assert!(snap.window_covered_us <= 10_000_000);
    }

    #[test]
    fn json_carries_format_and_trimmed_buckets() {
        let metrics = MetricsRegistry::new();
        metrics.histogram("s.latency_us").record(6); // bucket 3
        metrics.counter("s.requests_total").inc();
        let text = Snapshot::collect(&metrics, None).to_json();
        assert!(text.contains("\"format\":\"nl2vis.metrics.v1\""), "{text}");
        assert!(text.contains("\"s.requests_total\":1"), "{text}");
        assert!(
            text.contains("\"buckets\":[0,0,0,1]"),
            "trailing zeros must be trimmed: {text}"
        );
        assert!(text.contains("\"sources\":1"), "{text}");
    }

    #[test]
    fn fraction_at_or_below_tracks_thresholds() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.snapshot();
        assert_eq!(s.fraction_at_or_below(0), 0.0);
        let mid = s.fraction_at_or_below(1000);
        assert!((0.89..=0.91).contains(&mid), "got {mid}");
        assert_eq!(s.fraction_at_or_below(u64::MAX), 1.0);
        assert_eq!(HistSnapshot::default().fraction_at_or_below(1), 1.0);
    }

    #[test]
    fn from_parts_pads_short_bucket_arrays() {
        let s = HistSnapshot::from_parts(2, 30, 10, 20, vec![0, 0, 0, 0, 2]);
        assert_eq!(s.buckets.len(), BUCKETS);
        assert_eq!(s.count, 2);
        let mut other = HistSnapshot::default();
        other.merge(&s);
        assert_eq!(other, s);
    }

    #[test]
    fn windowed_snapshot_ages_out_with_the_window() {
        let windowed = WindowedRegistry::new(WindowConfig {
            bucket: Duration::from_secs(1),
            buckets: 2,
        });
        let h = windowed.histogram("w.latency_us");
        h.record_at(500, Duration::from_millis(100));
        let live = h.snapshot_at(Duration::from_millis(200));
        assert_eq!(live.count, 1);
        assert_eq!(live.sum, 500);
        let aged = h.snapshot_at(Duration::from_secs(5));
        assert_eq!(aged.count, 0);
        assert_eq!(aged, HistSnapshot::default());
    }
}
