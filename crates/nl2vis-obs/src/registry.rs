//! The metrics registry: named counters, gauges, and log-scale latency
//! histograms behind lock-free handles.
//!
//! Metric names follow the `component.verb_noun` convention
//! (`llm.requests_total`, `pipeline.errors_total`, `eval.worker_panics`);
//! histograms append a unit suffix (`llm.request_latency_us`). Handles are
//! `Arc`s obtained once and updated with plain atomics, so the hot path
//! never touches the registry lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways, tracking e.g. in-flight
/// request counts. [`Gauge::set_max`] keeps high-water marks such as
/// `server.concurrent_peak`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `n` and returns the new value.
    pub fn add(&self, n: i64) -> i64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds values whose bit length is
/// `i`, i.e. the range `[2^(i-1), 2^i - 1]`; bucket 0 holds zeros. 64-bit
/// values therefore always land in `0..=64`.
pub const BUCKETS: usize = 65;

/// A log-scale (power-of-two bucketed) histogram of `u64` samples —
/// typically latencies in microseconds. Recording is a single relaxed
/// atomic add; percentile summaries interpolate inside the winning bucket.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    /// Exemplar: the largest traced sample seen, and the trace that
    /// produced it (0 = no exemplar). Lets `/metrics` tail-latency lines
    /// link to a concrete flight-recorder trace.
    exemplar_value: AtomicU64,
    exemplar_trace: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_value: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket a value falls in: its bit length.
pub(crate) fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive value range `[lo, hi]` covered by bucket `i`.
pub(crate) fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else {
        (
            1u64 << (i - 1),
            (1u64 << (i - 1)).wrapping_mul(2).wrapping_sub(1),
        )
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in whole microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one sample and offers it as the histogram's exemplar: the
    /// largest traced sample wins, so the p99 line of the exposition can
    /// point at a representative (worst observed) trace id. The two-step
    /// value/trace update is racy under contention, which only risks a
    /// near-maximal sample citing a slightly different trace — fine for a
    /// debugging affordance.
    pub fn record_traced(&self, v: u64, trace: u64) {
        self.record(v);
        if trace != 0 && v >= self.exemplar_value.load(Ordering::Relaxed) {
            self.exemplar_value.store(v, Ordering::Relaxed);
            self.exemplar_trace.store(trace, Ordering::Relaxed);
        }
    }

    /// [`Histogram::record_traced`] for a wall-clock duration.
    pub fn record_duration_traced(&self, d: std::time::Duration, trace: u64) {
        self.record_traced(d.as_micros().min(u64::MAX as u128) as u64, trace);
    }

    /// The current exemplar as `(value, trace_id)`, if any traced sample
    /// has been recorded.
    pub fn exemplar(&self) -> Option<(u64, u64)> {
        let trace = self.exemplar_trace.load(Ordering::Relaxed);
        if trace == 0 {
            return None;
        }
        Some((self.exemplar_value.load(Ordering::Relaxed), trace))
    }

    /// Estimates an arbitrary quantile `q` in `[0, 1]` from the live
    /// bucket counts.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return 0.0;
        }
        percentile(
            &counts,
            count,
            q,
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Freezes the histogram into a mergeable
    /// [`HistSnapshot`](crate::snapshot::HistSnapshot). Reads are relaxed
    /// and per-field, so a snapshot taken under concurrent recording can
    /// be off by in-flight samples — bounded scrape skew, like any
    /// exposition read.
    pub fn snapshot(&self) -> crate::snapshot::HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let (min, max) = if count == 0 {
            (0, 0)
        } else {
            (
                self.min.load(Ordering::Relaxed),
                self.max.load(Ordering::Relaxed),
            )
        };
        crate::snapshot::HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            buckets,
        }
    }

    /// An immutable summary (count/sum/min/max and p50/p95/p99).
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let (min, max) = if count == 0 {
            (0, 0)
        } else {
            (
                self.min.load(Ordering::Relaxed),
                self.max.load(Ordering::Relaxed),
            )
        };
        let pct = |q: f64| percentile(&counts, count, q, min, max);
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            exemplar: self.exemplar(),
        }
    }
}

/// Estimates the `q`-quantile from bucket counts by linear interpolation
/// inside the bucket holding the target rank, clamped to the observed
/// min/max so tails don't overshoot real data.
pub(crate) fn percentile(counts: &[u64], total: u64, q: f64, min: u64, max: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            let (lo, hi) = bucket_bounds(i);
            let within = (rank - seen) as f64 / c as f64;
            let est = lo as f64 + (hi - lo) as f64 * within;
            return est.clamp(min as f64, max as f64);
        }
        seen += c;
    }
    max as f64
}

/// A point-in-time histogram summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// `(value, trace_id)` of the largest traced sample, if any — the
    /// exposition renders it so a p99 line links to a concrete trace.
    pub exemplar: Option<(u64, u64)>,
}

impl HistogramSummary {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A thread-safe registry of named metrics. Lookup takes a short-lived
/// lock and returns an [`Arc`] handle; updates through the handle are
/// lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry (the global one is usually what you want —
    /// [`global`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge map");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Sorted `(name, value)` pairs of every counter.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().expect("counter map");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Sorted `(name, value)` pairs of every gauge.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        let map = self.gauges.lock().expect("gauge map");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Sorted `(name, summary)` pairs of every histogram.
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        let map = self.histograms.lock().expect("histogram map");
        map.iter().map(|(k, v)| (k.clone(), v.summary())).collect()
    }

    /// Sorted `(name, snapshot)` pairs of every histogram's raw buckets.
    pub fn histogram_snapshots(&self) -> Vec<(String, crate::snapshot::HistSnapshot)> {
        let map = self.histograms.lock().expect("histogram map");
        map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }

    /// Drops every registered metric (test isolation).
    pub fn clear(&self) {
        self.counters.lock().expect("counter map").clear();
        self.gauges.lock().expect("gauge map").clear();
        self.histograms.lock().expect("histogram map").clear();
    }
}

/// The process-wide registry all instrumented components default to.
pub fn global() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_atomicity_under_threads() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("test.increments_total");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        // The registry hands back the same underlying counter.
        assert_eq!(registry.counter("test.increments_total").get(), 80_000);
    }

    #[test]
    fn gauge_tracks_value_and_peak() {
        let g = Gauge::default();
        assert_eq!(g.add(3), 3);
        assert_eq!(g.add(-1), 2);
        g.set_max(10);
        g.set_max(4); // lower — ignored
        assert_eq!(g.get(), 10);
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_bucket_bounds_partition_u64() {
        // Buckets tile the space with no gaps or overlaps.
        assert_eq!(bucket_bounds(0), (0, 0));
        for i in 1..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            let (next_lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, next_lo, "bucket {i} must abut bucket {}", i + 1);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_percentiles_on_uniform_data() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // Log-scale buckets are coarse: accept estimates within the true
        // value's power-of-two bucket.
        assert!((256.0..=1024.0).contains(&s.p50), "p50 {}", s.p50);
        assert!((512.0..=1024.0).contains(&s.p95), "p95 {}", s.p95);
        assert!((512.0..=1024.0).contains(&s.p99), "p99 {}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_single_value_is_exact() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(42);
        }
        let s = h.summary();
        // All mass in one bucket, clamped to observed min==max.
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p95, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
    }

    #[test]
    fn histogram_empty_summary_is_zero() {
        let s = Histogram::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!((s.min, s.max), (0, 0));
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn histogram_concurrent_records_are_all_counted() {
        let h = Arc::new(Histogram::default());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 1_000 + i % 997);
                    }
                });
            }
        });
        assert_eq!(h.count(), 20_000);
        let s = h.summary();
        assert_eq!(s.count, 20_000);
    }

    #[test]
    fn traced_records_keep_the_worst_sample_as_exemplar() {
        let h = Histogram::default();
        assert_eq!(h.exemplar(), None);
        h.record(500); // untraced samples never become exemplars
        assert_eq!(h.exemplar(), None);
        h.record_traced(100, 7);
        h.record_traced(900, 8);
        h.record_traced(300, 9); // smaller — ignored
        assert_eq!(h.exemplar(), Some((900, 8)));
        assert_eq!(h.summary().exemplar, Some((900, 8)));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantile_interpolates_like_the_summary_percentiles() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.50), h.summary().p50);
        assert_eq!(h.quantile(0.99), h.summary().p99);
        let p90 = h.quantile(0.90);
        assert!((512.0..=1024.0).contains(&p90), "p90 {p90}");
        assert_eq!(Histogram::default().quantile(0.9), 0.0);
    }

    /// Records `values` into a fresh histogram and returns the raw bucket
    /// counts plus observed min/max, the exact inputs `percentile` sees.
    fn buckets_of(values: &[u64]) -> (Vec<u64>, u64, u64, u64) {
        let h = Histogram::default();
        for &v in values {
            h.record(v);
        }
        let counts: Vec<u64> = h
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        (
            counts,
            values.len() as u64,
            *values.iter().min().unwrap(),
            *values.iter().max().unwrap(),
        )
    }

    #[test]
    fn percentile_is_exact_at_bucket_boundaries() {
        // All mass on a single boundary value: min==max clamping pins every
        // quantile to the exact sample, for every power-of-two boundary.
        for k in [0u32, 1, 4, 10, 20, 40, 63] {
            let v = 1u64 << k;
            let (counts, total, min, max) = buckets_of(&vec![v; 100]);
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(
                    percentile(&counts, total, q, min, max),
                    v as f64,
                    "boundary 2^{k} at q={q}"
                );
            }
        }
        // The top rank of a bucket interpolates exactly to its high bound;
        // interior ranks stay confined to the bucket.
        let (counts, total, min, max) = buckets_of(&[512, 1023]);
        let p0 = percentile(&counts, total, 0.25, min, max);
        let p1 = percentile(&counts, total, 1.0, min, max);
        assert!(
            (512.0..=1023.0).contains(&p0),
            "rank 1 of 2 stays inside the bucket, got {p0}"
        );
        assert_eq!(p1, 1023.0, "rank 2 of 2 sits at the bucket's high bound");
    }

    #[test]
    fn percentile_mid_bucket_error_is_bounded() {
        // Uniform fill of one bucket: linear interpolation tracks the true
        // quantile to within ~1 part in bucket-width.
        let values: Vec<u64> = (512..=1023).collect();
        let (counts, total, min, max) = buckets_of(&values);
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99] {
            let rank = (q * total as f64).ceil().max(1.0);
            let truth = 511.0 + rank; // rank-th smallest of 512..=1023
            let est = percentile(&counts, total, q, min, max);
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.01, "q={q}: est {est} vs true {truth} (rel {rel})");
        }

        // Adversarial mass placement (everything at one end of the bucket):
        // the estimate can be off inside the bucket but never escapes it, so
        // the relative error is bounded by the bucket's width (a factor of
        // two on the log scale).
        let mut skewed = vec![512u64; 999];
        skewed.push(1023);
        let (counts, total, min, max) = buckets_of(&skewed);
        let (lo, hi) = bucket_bounds(bucket_index(512));
        for q in [0.5, 0.99] {
            let est = percentile(&counts, total, q, min, max);
            assert!(
                (lo as f64..=hi as f64).contains(&est),
                "q={q}: estimate {est} escaped bucket [{lo}, {hi}]"
            );
            assert!(est / 512.0 <= 2.0, "relative error must stay below 2x");
        }
    }

    #[test]
    fn percentile_single_sample_is_exact() {
        for v in [0u64, 1, 7, 300, 1 << 40] {
            let (counts, total, min, max) = buckets_of(&[v]);
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(percentile(&counts, total, q, min, max), v as f64);
            }
        }
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let counts = vec![0u64; BUCKETS];
        for q in [0.0, 0.5, 0.99] {
            assert_eq!(percentile(&counts, 0, q, 0, 0), 0.0);
        }
    }

    #[test]
    fn registry_enumerations_are_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b.z_total").inc();
        r.counter("a.z_total").add(2);
        r.gauge("m.depth").set(5);
        r.histogram("l.latency_us").record(10);
        let names: Vec<String> = r.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec!["a.z_total".to_string(), "b.z_total".to_string()]
        );
        assert_eq!(r.gauges(), vec![("m.depth".to_string(), 5)]);
        assert_eq!(r.histograms()[0].0, "l.latency_us");
        r.clear();
        assert!(r.counters().is_empty());
    }
}
