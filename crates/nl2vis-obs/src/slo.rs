//! Declarative service-level objectives with multi-window burn rates.
//!
//! An [`SloSpec`] names an objective — "95% of requests complete within
//! 100 ms", "99% of admissions are not shed" — and a target fraction.
//! Evaluation runs against a [`Snapshot`], which makes the machinery
//! deployment-agnostic: the same spec evaluates a single process's
//! `/metrics.json` or the fleet-merged snapshot the router's observer
//! builds, because both are just snapshots.
//!
//! Following the SRE multi-window convention, each objective is judged
//! over two horizons at once: the **fast** window (the snapshot's
//! sliding-window sections — what is happening right now) and the
//! **slow** window (the cumulative sections — the whole deployment's
//! history standing in for the SLO period). The *burn rate* is the
//! bad-event fraction divided by the error budget `1 - target`: burn 1.0
//! spends the budget exactly at period's end, burn 10 exhausts it ten
//! times too fast. A fast burn spike with a calm slow burn is a blip; both
//! elevated means the budget is genuinely draining.
//!
//! [`publish`] exports statuses as `slo.*` gauges (milli-units, since
//! gauges are integers), so burn rates ride the existing exposition and
//! snapshot plumbing like any other metric.

use crate::registry::MetricsRegistry;
use crate::sink::escape_json;
use crate::snapshot::Snapshot;

/// What an SLO measures.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Good = samples of `histogram` at or below `threshold_us`.
    LatencyBelow {
        /// Histogram name present in both snapshot sections.
        histogram: String,
        /// Attainment threshold in microseconds.
        threshold_us: u64,
    },
    /// Good = `good` counter events; bad = `bad` counter events; the
    /// denominator is their sum (e.g. served vs shed).
    ErrorRate {
        /// Counter of good events.
        good: String,
        /// Counter of bad events.
        bad: String,
    },
}

/// One declared objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Short identifier; becomes the `slo.<name>.*` gauge prefix.
    pub name: String,
    /// What to measure.
    pub objective: Objective,
    /// Target good fraction in `(0, 1)`, e.g. 0.95.
    pub target: f64,
}

impl SloSpec {
    /// A latency-attainment objective.
    pub fn latency(name: &str, histogram: &str, threshold_us: u64, target: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective: Objective::LatencyBelow {
                histogram: histogram.to_string(),
                threshold_us,
            },
            target,
        }
    }

    /// An error-rate objective over a good/bad counter pair.
    pub fn error_rate(name: &str, good: &str, bad: &str, target: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective: Objective::ErrorRate {
                good: good.to_string(),
                bad: bad.to_string(),
            },
            target,
        }
    }

    /// The serving stack's stock objectives: request latency attainment
    /// at `threshold_us`, and admission availability (served vs shed).
    pub fn server_defaults(threshold_us: u64) -> Vec<SloSpec> {
        vec![
            SloSpec::latency("latency", "llm.request_latency_us", threshold_us, 0.95),
            SloSpec::error_rate(
                "availability",
                "llm.requests_total",
                "server.shed_total",
                0.99,
            ),
        ]
    }

    /// Good fraction and event count over one snapshot section.
    fn measure(&self, snap: &Snapshot, windowed: bool) -> (f64, u64) {
        match &self.objective {
            Objective::LatencyBelow {
                histogram,
                threshold_us,
            } => {
                let section = if windowed {
                    &snap.windowed_histograms
                } else {
                    &snap.histograms
                };
                match section.get(histogram) {
                    Some(h) if h.count > 0 => (h.fraction_at_or_below(*threshold_us), h.count),
                    _ => (1.0, 0),
                }
            }
            Objective::ErrorRate { good, bad } => {
                let read = |name: &str| {
                    if windowed {
                        snap.windowed_counter(name)
                    } else {
                        snap.counter(name)
                    }
                };
                let (good, bad) = (read(good), read(bad));
                let total = good + bad;
                if total == 0 {
                    (1.0, 0)
                } else {
                    (good as f64 / total as f64, total)
                }
            }
        }
    }

    /// Evaluates the objective against both of `snap`'s horizons.
    pub fn evaluate(&self, snap: &Snapshot) -> SloStatus {
        let (fast_good, fast_events) = self.measure(snap, true);
        let (slow_good, slow_events) = self.measure(snap, false);
        let budget = (1.0 - self.target).max(1e-9);
        let slow_burn = (1.0 - slow_good) / budget;
        SloStatus {
            name: self.name.clone(),
            target: self.target,
            fast_good,
            slow_good,
            fast_events,
            slow_events,
            fast_burn: (1.0 - fast_good) / budget,
            slow_burn,
            budget_remaining: 1.0 - slow_burn,
        }
    }
}

/// One objective's evaluation: attainment and burn over both windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub name: String,
    /// The spec's target.
    pub target: f64,
    /// Good fraction over the sliding-window sections (1.0 when idle).
    pub fast_good: f64,
    /// Good fraction over the cumulative sections.
    pub slow_good: f64,
    /// Events in the fast window.
    pub fast_events: u64,
    /// Events in the slow window.
    pub slow_events: u64,
    /// Bad fraction / error budget, fast window.
    pub fast_burn: f64,
    /// Bad fraction / error budget, slow window.
    pub slow_burn: f64,
    /// `1 - slow_burn`: share of the error budget left if the slow
    /// window were the whole SLO period. Negative once over budget.
    pub budget_remaining: f64,
}

impl SloStatus {
    /// This status as one JSON object (embedded in `/fleet/stats`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"target\":{:.4},",
                "\"fast_good\":{:.6},\"slow_good\":{:.6},",
                "\"fast_events\":{},\"slow_events\":{},",
                "\"fast_burn\":{:.4},\"slow_burn\":{:.4},",
                "\"budget_remaining\":{:.4}}}"
            ),
            escape_json(&self.name),
            self.target,
            self.fast_good,
            self.slow_good,
            self.fast_events,
            self.slow_events,
            self.fast_burn,
            self.slow_burn,
            self.budget_remaining,
        )
    }
}

/// Evaluates every spec against one snapshot.
pub fn evaluate_all(specs: &[SloSpec], snap: &Snapshot) -> Vec<SloStatus> {
    specs.iter().map(|s| s.evaluate(snap)).collect()
}

/// Exports statuses as `slo.<name>.*` gauges in milli-units:
/// `fast_burn_milli`, `slow_burn_milli`, `fast_good_milli`, and
/// `budget_remaining_milli` (gauges are signed, so over-budget goes
/// negative rather than saturating).
pub fn publish(statuses: &[SloStatus], registry: &MetricsRegistry) {
    let milli = |v: f64| (v * 1000.0).round().clamp(i64::MIN as f64, i64::MAX as f64) as i64;
    for s in statuses {
        let set = |field: &str, v: f64| {
            registry
                .gauge(&format!("slo.{}.{}", s.name, field))
                .set(milli(v));
        };
        set("fast_burn_milli", s.fast_burn);
        set("slow_burn_milli", s.slow_burn);
        set("fast_good_milli", s.fast_good);
        set("budget_remaining_milli", s.budget_remaining);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{WindowConfig, WindowedRegistry};

    /// A snapshot whose fast window is healthy but whose history holds
    /// `slow_bad` bad samples out of `slow_total`.
    fn latency_snapshot(slow_total: u64, slow_bad: u64) -> Snapshot {
        let metrics = MetricsRegistry::new();
        let windowed = WindowedRegistry::new(WindowConfig::seconds_10());
        let h = metrics.histogram("llm.request_latency_us");
        for _ in 0..(slow_total - slow_bad) {
            h.record(10_000); // 10 ms — good
        }
        for _ in 0..slow_bad {
            h.record(10_000_000); // 10 s — bad
        }
        windowed.histogram("llm.request_latency_us").record(10_000);
        Snapshot::collect(&metrics, Some(&windowed))
    }

    #[test]
    fn burn_is_bad_fraction_over_budget() {
        // 10% bad against a 95% target: burn = 0.10 / 0.05 = 2.
        let spec = SloSpec::latency("latency", "llm.request_latency_us", 100_000, 0.95);
        let status = spec.evaluate(&latency_snapshot(100, 10));
        assert!((status.slow_good - 0.90).abs() < 1e-9, "{status:?}");
        assert!((status.slow_burn - 2.0).abs() < 1e-6, "{status:?}");
        assert!((status.budget_remaining + 1.0).abs() < 1e-6, "over budget");
        // The fast window only saw the one good sample.
        assert_eq!(status.fast_events, 1);
        assert!((status.fast_burn).abs() < 1e-9);
        assert_eq!(status.slow_events, 100);
    }

    #[test]
    fn idle_objectives_do_not_burn() {
        let spec = SloSpec::latency("latency", "llm.request_latency_us", 1000, 0.99);
        let status = spec.evaluate(&Snapshot::default());
        assert_eq!((status.fast_events, status.slow_events), (0, 0));
        assert_eq!(status.fast_good, 1.0);
        assert_eq!(status.slow_burn, 0.0);
        assert_eq!(status.budget_remaining, 1.0);
    }

    #[test]
    fn error_rate_counts_good_against_bad() {
        let metrics = MetricsRegistry::new();
        metrics.counter("llm.requests_total").add(98);
        metrics.counter("server.shed_total").add(2);
        let snap = Snapshot::collect(&metrics, None);
        let spec = SloSpec::error_rate(
            "availability",
            "llm.requests_total",
            "server.shed_total",
            0.99,
        );
        let status = spec.evaluate(&snap);
        assert!((status.slow_good - 0.98).abs() < 1e-9);
        assert!((status.slow_burn - 2.0).abs() < 1e-6, "{status:?}");
        assert_eq!(status.slow_events, 100);
    }

    #[test]
    fn statuses_publish_as_milli_gauges() {
        let spec = SloSpec::latency("latency", "llm.request_latency_us", 100_000, 0.95);
        let statuses = evaluate_all(&[spec], &latency_snapshot(100, 10));
        let registry = MetricsRegistry::new();
        publish(&statuses, &registry);
        assert_eq!(registry.gauge("slo.latency.slow_burn_milli").get(), 2000);
        assert_eq!(
            registry.gauge("slo.latency.budget_remaining_milli").get(),
            -1000
        );
        assert_eq!(registry.gauge("slo.latency.fast_good_milli").get(), 1000);
    }

    #[test]
    fn status_json_carries_both_windows() {
        let spec = SloSpec::latency("latency", "llm.request_latency_us", 100_000, 0.95);
        let text = spec.evaluate(&latency_snapshot(100, 10)).to_json();
        assert!(text.contains("\"name\":\"latency\""), "{text}");
        assert!(text.contains("\"slow_burn\":2.0000"), "{text}");
        assert!(text.contains("\"fast_burn\":0.0000"), "{text}");
        assert!(text.contains("\"budget_remaining\":-1.0000"), "{text}");
    }

    #[test]
    fn server_defaults_cover_latency_and_availability() {
        let specs = SloSpec::server_defaults(100_000);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["latency", "availability"]);
        // The merged-fleet evaluation path: merging two replica
        // snapshots then evaluating equals evaluating the union.
        let a = latency_snapshot(50, 5);
        let b = latency_snapshot(50, 5);
        let mut merged = a.clone();
        merged.merge(&b);
        let status = specs[0].evaluate(&merged);
        assert!((status.slow_good - 0.90).abs() < 1e-9);
        assert_eq!(status.slow_events, 100);
    }
}
