//! Rendering a [`MetricsRegistry`](crate::registry::MetricsRegistry) for
//! humans and scrapers: a plain-text exposition for `GET /metrics` and a
//! fixed-width telemetry summary table for CLI output.

use crate::registry::MetricsRegistry;

/// Text exposition of every metric in the registry, one per line —
/// the body served by `GET /metrics`.
///
/// ```text
/// # counters
/// llm.requests_total 4
/// # gauges
/// server.concurrent_peak 2
/// # histograms (microseconds)
/// llm.request_latency_us count 4 sum 1234 min 80 max 900 p50 150 p95 880 p99 896 exemplar 900@trace=17
/// ```
///
/// The trailing `exemplar <value>@trace=<id>` appears when the histogram
/// has traced samples: it names the flight-recorder trace behind the
/// worst observed value, so a bad p99 links straight to `GET /trace/<id>`.
pub fn render_exposition(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let counters = registry.counters();
    if !counters.is_empty() {
        out.push_str("# counters\n");
        for (name, v) in counters {
            out.push_str(&format!("{name} {v}\n"));
        }
    }
    let gauges = registry.gauges();
    if !gauges.is_empty() {
        out.push_str("# gauges\n");
        for (name, v) in gauges {
            out.push_str(&format!("{name} {v}\n"));
        }
    }
    let histograms = registry.histograms();
    if !histograms.is_empty() {
        out.push_str("# histograms (microseconds)\n");
        for (name, s) in histograms {
            out.push_str(&format!(
                "{name} count {} sum {} min {} max {} p50 {:.0} p95 {:.0} p99 {:.0}",
                s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99
            ));
            if let Some((value, trace)) = s.exemplar {
                out.push_str(&format!(" exemplar {value}@trace={trace}"));
            }
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("# no metrics recorded\n");
    }
    out
}

/// A fixed-width table from a header and rows (column widths fit content).
fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().take(cols).enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let render = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().take(cols).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            line.extend(std::iter::repeat_n(' ', widths[i] - cell.chars().count()));
        }
        line.trim_end().to_string()
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let mut out = render(&head);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render(row));
        out.push('\n');
    }
    out
}

fn fmt_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{us:.0}us")
    }
}

/// The human-readable telemetry summary: latency histograms as a
/// count/mean/percentile table followed by counters and gauges.
pub fn render_summary(registry: &MetricsRegistry) -> String {
    let mut out = String::from("telemetry summary\n");
    let histograms = registry.histograms();
    if !histograms.is_empty() {
        let rows: Vec<Vec<String>> = histograms
            .iter()
            .map(|(name, s)| {
                vec![
                    name.clone(),
                    s.count.to_string(),
                    fmt_us(s.mean()),
                    fmt_us(s.p50),
                    fmt_us(s.p95),
                    fmt_us(s.p99),
                    fmt_us(s.max as f64),
                ]
            })
            .collect();
        out.push_str(&text_table(
            &[
                "span / histogram",
                "count",
                "mean",
                "p50",
                "p95",
                "p99",
                "max",
            ],
            &rows,
        ));
    }
    let counters = registry.counters();
    if !counters.is_empty() {
        out.push('\n');
        let rows: Vec<Vec<String>> = counters
            .iter()
            .map(|(n, v)| vec![n.clone(), v.to_string()])
            .collect();
        out.push_str(&text_table(&["counter", "value"], &rows));
    }
    let gauges = registry.gauges();
    if !gauges.is_empty() {
        out.push('\n');
        let rows: Vec<Vec<String>> = gauges
            .iter()
            .map(|(n, v)| vec![n.clone(), v.to_string()])
            .collect();
        out.push_str(&text_table(&["gauge", "value"], &rows));
    }
    if histograms_empty_and_no_scalars(registry) {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

fn histograms_empty_and_no_scalars(registry: &MetricsRegistry) -> bool {
    registry.histograms().is_empty()
        && registry.counters().is_empty()
        && registry.gauges().is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("llm.requests_total").add(4);
        r.gauge("server.concurrent_peak").set(2);
        for v in [80u64, 120, 150, 900] {
            r.histogram("llm.request_latency_us").record(v);
        }
        r
    }

    #[test]
    fn exposition_lists_every_metric_kind() {
        let text = render_exposition(&populated());
        assert!(
            text.contains("# counters\nllm.requests_total 4\n"),
            "{text}"
        );
        assert!(text.contains("server.concurrent_peak 2"), "{text}");
        assert!(
            text.contains("llm.request_latency_us count 4 sum 1250"),
            "{text}"
        );
        assert!(text.contains("p95"), "{text}");
    }

    #[test]
    fn exposition_appends_exemplar_when_present() {
        let r = populated();
        // Untraced histograms carry no exemplar suffix.
        assert!(!render_exposition(&r).contains("exemplar"));
        r.histogram("llm.request_latency_us")
            .record_traced(2_000, 42);
        let text = render_exposition(&r);
        assert!(text.contains("exemplar 2000@trace=42"), "{text}");
    }

    #[test]
    fn exposition_of_empty_registry_says_so() {
        assert!(render_exposition(&MetricsRegistry::new()).contains("no metrics"));
    }

    #[test]
    fn summary_renders_aligned_table_with_units() {
        let text = render_summary(&populated());
        assert!(text.contains("span / histogram"), "{text}");
        assert!(text.contains("llm.request_latency_us"), "{text}");
        assert!(text.contains("us") || text.contains("ms"), "{text}");
        assert!(text.contains("llm.requests_total"), "{text}");
        // Header separator line present.
        assert!(text.lines().any(|l| l.starts_with("---")), "{text}");
    }
}
