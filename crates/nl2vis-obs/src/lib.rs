//! # nl2vis-obs — std-only tracing and metrics for the nl2vis stack
//!
//! The paper this workspace reproduces is a *measurement* study, and the
//! ROADMAP pushes the reproduction toward a production-scale serving
//! system; both need the system to observe itself. This crate is that
//! substrate, with **zero external dependencies**:
//!
//! - [`registry`]: a global, thread-safe [`MetricsRegistry`] of named
//!   [`Counter`]s, [`Gauge`]s, and log-scale latency [`Histogram`]s with
//!   p50/p95/p99 summaries. Handles are `Arc`s updated with relaxed
//!   atomics, so instrumented hot paths never contend on the registry.
//! - [`span`]: RAII [`Span`] guards (`let _s = span!("pipeline.parse");`)
//!   that time a scope, nest into a per-request trace, and feed the
//!   `<name>.duration_us` histogram.
//! - [`sink`]: a pluggable [`EventSink`] receiving structured events
//!   (span open/close, counter deltas, errors, access logs); the
//!   [`JsonlSink`] writes one JSON object per line, the [`MemorySink`]
//!   captures lines for tests, and the default [`NullSink`] makes
//!   telemetry free when nobody is listening.
//! - [`report`]: text rendering — [`report::render_exposition`] backs the
//!   server's `GET /metrics`, [`report::render_summary`] prints the CLI
//!   telemetry table.
//! - [`window`]: sliding-window counterparts ([`WindowedCounter`],
//!   [`WindowedHistogram`], [`WindowedRegistry`]) — a ring of
//!   fixed-duration buckets yielding rolling throughput and p50/p95/p99
//!   over the last N seconds, backing the server's `GET /stats`.
//! - [`snapshot`]: mergeable point-in-time [`Snapshot`]s of both
//!   registries — raw bucket arrays that add exactly across processes
//!   (associative/commutative merge), backing `GET /metrics.json` and
//!   the router's fleet-merged views.
//! - [`slo`]: declarative objectives ([`SloSpec`]) with fast/slow-window
//!   burn rates evaluated over snapshots, published as `slo.*` gauges.
//!
//! ## Naming convention
//!
//! Metric names are `component.verb_noun` (`llm.requests_total`,
//! `pipeline.errors_total`, `eval.worker_panics`); histograms carry a unit
//! suffix (`_us`); per-kind error counters extend the component with the
//! kind (`pipeline.error.parse`). Span names are `component.stage` and
//! materialize as `<component>.<stage>.duration_us` histograms.
//!
//! ## Example
//!
//! ```
//! use nl2vis_obs as obs;
//!
//! obs::count("demo.requests_total", 1);
//! {
//!     let _span = obs::span!("demo.handle");
//!     // ... work ...
//! }
//! let summary = obs::registry::global()
//!     .histogram("demo.handle.duration_us")
//!     .summary();
//! assert!(summary.count >= 1);
//! assert!(obs::report::render_exposition(obs::registry::global())
//!     .contains("demo.requests_total"));
//! ```

pub mod recorder;
pub mod registry;
pub mod report;
pub mod sink;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod window;

pub use recorder::{FlightRecorder, RecorderStats, TraceRecord};
pub use registry::{global, Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry};
pub use sink::{
    disable_sink, emit, set_sink, sink_active, Event, EventSink, JsonlSink, MemorySink, NullSink,
};
pub use slo::{Objective, SloSpec, SloStatus};
pub use snapshot::{HistSnapshot, Snapshot};
pub use span::{annotate_current, current_context, current_trace, Span, TraceContext};
pub use window::{
    WindowConfig, WindowSummary, WindowedCounter, WindowedHistogram, WindowedRegistry,
};

/// Adds `delta` to the global counter `name` and emits a
/// [`Event::CounterDelta`] to the installed sink.
pub fn count(name: &str, delta: u64) {
    let counter = registry::global().counter(name);
    counter.add(delta);
    if sink::sink_active() {
        sink::emit(&Event::CounterDelta {
            name: name.to_string(),
            delta,
            value: counter.get(),
        });
    }
}

/// Records an error: bumps `component.errors_total` and the per-kind
/// counter `component.error.<kind>`, emits an [`Event::Error`], and —
/// when a flight recorder is installed — attributes the error to the
/// current thread's in-flight trace so the stored [`TraceRecord`] carries
/// it.
pub fn error(component: &str, kind: &str, message: &str) {
    registry::global()
        .counter(&format!("{component}.errors_total"))
        .inc();
    registry::global()
        .counter(&format!("{component}.error.{kind}"))
        .inc();
    recorder::note_error_current(component, kind, message);
    if sink::sink_active() {
        sink::emit(&Event::Error {
            component: component.to_string(),
            kind: kind.to_string(),
            message: message.to_string(),
        });
    }
}

/// Records an infrastructure failure: a request that died below the model
/// (connect/timeout/5xx/dropped socket). Lands on `component.error.transport`
/// — the attribution bucket evaluation reads to keep transport failures out
/// of the model-failure taxonomy (Execution Accuracy must only count
/// completions the model actually produced).
pub fn transport_error(component: &str, message: &str) {
    error(component, "transport", message);
}

/// Emits a structured log line (e.g. an HTTP access log) to the sink.
///
/// `fields` is a *closure* producing the key/value pairs, evaluated only
/// when a sink is installed — so hot paths don't pay for formatting field
/// values (status codes, latencies, paths) that nobody will see. Call
/// sites that already hold a `Vec` can pass `move || fields`.
pub fn log<F>(component: &str, message: &str, fields: F)
where
    F: FnOnce() -> Vec<(String, String)>,
{
    if sink::sink_active() {
        sink::emit(&Event::Log {
            component: component.to_string(),
            message: message.to_string(),
            fields: fields(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn count_updates_registry_and_sink() {
        let sink = Arc::new(MemorySink::new());
        set_sink(sink.clone());
        let before = registry::global().counter("lib.count_test_total").get();
        count("lib.count_test_total", 3);
        assert_eq!(
            registry::global().counter("lib.count_test_total").get(),
            before + 3
        );
        assert!(sink
            .lines()
            .iter()
            .any(|l| l.contains("lib.count_test_total") && l.contains("\"delta\":3")));
        disable_sink();
    }

    #[test]
    fn error_bumps_total_and_kind_counters() {
        let before = registry::global().counter("libtest.errors_total").get();
        error("libtest", "parse", "bad token");
        error("libtest", "execute", "missing table");
        assert_eq!(
            registry::global().counter("libtest.errors_total").get(),
            before + 2
        );
        assert_eq!(registry::global().counter("libtest.error.parse").get(), 1);
        assert_eq!(registry::global().counter("libtest.error.execute").get(), 1);
    }

    #[test]
    fn log_fields_are_not_built_without_a_sink() {
        disable_sink();
        let mut built = false;
        log("libtest", "access", || {
            built = true;
            vec![("path".to_string(), "/metrics".to_string())]
        });
        assert!(
            !built,
            "field closure must not run when no sink is installed"
        );

        let sink = Arc::new(MemorySink::new());
        set_sink(sink.clone());
        log("libtest", "access", || {
            built = true;
            vec![("path".to_string(), "/metrics".to_string())]
        });
        disable_sink();
        assert!(built, "field closure runs once a sink is listening");
        assert!(sink
            .lines()
            .iter()
            .any(|l| l.contains("\"path\":\"/metrics\"")));
    }

    #[test]
    fn transport_errors_get_their_own_bucket() {
        let before = registry::global().counter("obslib.error.transport").get();
        transport_error("obslib", "connect refused after 3 attempts");
        assert_eq!(
            registry::global().counter("obslib.error.transport").get(),
            before + 1
        );
    }
}
