//! Lightweight RAII spans with cross-boundary trace propagation.
//!
//! A [`Span`] measures the wall-clock time between its creation and drop,
//! records the duration into the global histogram `<name>.duration_us`, and
//! emits `span_open` / `span_close` events to the installed sink. Spans
//! opened while another span is live on the same thread nest under it, and
//! every top-level span starts a new *trace* — so one pipeline request
//! produces one trace whose child spans are its stages.
//!
//! Traces do not stop at a thread or process boundary: [`Span::context`] /
//! [`current_context`] export a [`TraceContext`], and
//! [`Span::enter_with`] imports one, opening a span that *continues* the
//! exporting trace. That is how an HTTP client hands its trace id to the
//! server (via `X-Nl2vis-Trace-Id` / `X-Nl2vis-Parent-Span` headers) and
//! how an eval driver hands its trace to worker threads. Every open/close
//! is also mirrored into the [flight recorder](crate::recorder) when one is
//! installed, so completed traces can be fetched back by id.

use crate::recorder;
use crate::registry;
use crate::sink::{emit, Event};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Stack of `(span_id, trace_id)` for the spans live on this thread.
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The trace id of the innermost live span on this thread, if any.
pub fn current_trace() -> Option<u64> {
    STACK.with(|s| s.borrow().last().map(|&(_, trace)| trace))
}

/// Attaches a key/value annotation to the innermost live span on this
/// thread, if any (no-op otherwise, or when no flight recorder is
/// installed). This is how middleware that deliberately opens no spans of
/// its own — the retry layer, for one — leaves its marks (`retry`,
/// `retry_outcome`) on the request span opened above it.
pub fn annotate_current(key: &str, value: &str) {
    if let Some((span, trace)) = STACK.with(|s| s.borrow().last().copied()) {
        recorder::annotate_span(trace, span, key, value);
    }
}

/// The exportable position of the innermost live span on this thread: its
/// trace and its span id as the parent for whatever continues the trace
/// elsewhere (another thread, or the far side of an HTTP hop).
pub fn current_context() -> Option<TraceContext> {
    STACK.with(|s| {
        s.borrow().last().map(|&(span, trace)| TraceContext {
            trace_id: trace,
            parent_span_id: Some(span),
        })
    })
}

/// A portable handle to a position inside a trace.
///
/// Obtained from [`Span::context`] or [`current_context`], carried across
/// any boundary (a spawned thread, an HTTP header pair), and turned back
/// into a live span with [`Span::enter_with`]. The wire form is two
/// decimal integers — see [`TraceContext::trace_header`] /
/// [`TraceContext::parent_header`] and [`TraceContext::from_headers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace being continued.
    pub trace_id: u64,
    /// The span the continuation nests under (None continues the trace as
    /// a sibling root — e.g. a late phase of the same request).
    pub parent_span_id: Option<u64>,
}

impl TraceContext {
    /// The value of the `X-Nl2vis-Trace-Id` header.
    pub fn trace_header(&self) -> String {
        self.trace_id.to_string()
    }

    /// The value of the `X-Nl2vis-Parent-Span` header (empty when no
    /// parent span is exported).
    pub fn parent_header(&self) -> String {
        match self.parent_span_id {
            Some(id) => id.to_string(),
            None => String::new(),
        }
    }

    /// Rebuilds a context from header values. Returns `None` when the
    /// trace id is absent or malformed (a malformed *parent* degrades to
    /// no-parent rather than discarding the trace).
    pub fn from_headers(trace: Option<&str>, parent: Option<&str>) -> Option<TraceContext> {
        let trace_id = trace?.trim().parse().ok()?;
        let parent_span_id = parent.and_then(|p| p.trim().parse().ok());
        Some(TraceContext {
            trace_id,
            parent_span_id,
        })
    }
}

/// An open span; closes (and records its duration) on drop.
#[derive(Debug)]
pub struct Span {
    name: String,
    id: u64,
    trace: u64,
    start: Instant,
}

impl Span {
    /// Opens a span named `name`, nesting under the innermost live span on
    /// this thread (or starting a new trace at top level).
    pub fn enter(name: impl Into<String>) -> Span {
        let (trace, parent) = STACK.with(|s| {
            let stack = s.borrow();
            match stack.last() {
                Some(&(parent_id, trace)) => (trace, Some(parent_id)),
                None => (next_id(), None),
            }
        });
        Span::open(name.into(), trace, parent)
    }

    /// Opens a span that *continues* an imported [`TraceContext`] instead
    /// of starting a fresh trace: same trace id, parented to the exported
    /// span. This is the receive side of cross-thread and cross-process
    /// propagation. Any span already live on this thread is ignored — the
    /// imported context wins.
    pub fn enter_with(name: impl Into<String>, ctx: TraceContext) -> Span {
        Span::open(name.into(), ctx.trace_id, ctx.parent_span_id)
    }

    /// Opens a span that starts a *new* trace even when other spans are
    /// live on this thread. For per-request roots inside a larger scope —
    /// each eval example is its own trace, whether it runs on a worker
    /// thread or inline on the driver thread next to the run-level span.
    pub fn enter_root(name: impl Into<String>) -> Span {
        Span::open(name.into(), next_id(), None)
    }

    fn open(name: String, trace: u64, parent: Option<u64>) -> Span {
        let id = next_id();
        emit(&Event::SpanOpen {
            trace,
            span: id,
            parent,
            name: name.clone(),
        });
        recorder::on_span_open(trace, id, parent, &name);
        STACK.with(|s| s.borrow_mut().push((id, trace)));
        Span {
            name,
            id,
            trace,
            start: Instant::now(),
        }
    }

    /// The span's unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// The exportable context for continuing this trace under this span.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace,
            parent_span_id: Some(self.id),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Elapsed time since the span opened.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Attaches a key/value annotation to this span in the flight recorder
    /// (no-op when no recorder is installed).
    pub fn annotate(&self, key: &str, value: &str) {
        recorder::annotate_span(self.trace, self.id, key, value);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration = self.start.elapsed();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop this span; tolerate out-of-order drops by removing by id.
            if let Some(pos) = stack.iter().rposition(|&(id, _)| id == self.id) {
                stack.remove(pos);
            }
        });
        registry::global()
            .histogram(&format!("{}.duration_us", self.name))
            .record_duration_traced(duration, self.trace);
        let duration_us = duration.as_micros().min(u64::MAX as u128) as u64;
        emit(&Event::SpanClose {
            trace: self.trace,
            span: self.id,
            name: self.name.clone(),
            duration_us,
        });
        recorder::on_span_close(self.trace, self.id, duration_us);
    }
}

/// Opens a [`Span`]; bind it to a local so it lives to the end of the
/// scope: `let _span = span!("pipeline.parse");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_share_a_trace() {
        let outer = Span::enter("test.outer");
        let inner = Span::enter("test.inner");
        assert_eq!(inner.trace(), outer.trace());
        assert_ne!(inner.id(), outer.id());
        assert_eq!(current_trace(), Some(outer.trace()));
        drop(inner);
        drop(outer);
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn top_level_spans_start_fresh_traces() {
        let a = Span::enter("test.first");
        let trace_a = a.trace();
        drop(a);
        let b = Span::enter("test.second");
        assert_ne!(b.trace(), trace_a);
    }

    #[test]
    fn dropped_span_records_duration_histogram() {
        {
            let _span = crate::span!("test.timed_stage");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = registry::global().histogram("test.timed_stage.duration_us");
        assert!(h.count() >= 1);
        assert!(
            h.summary().max >= 1_000,
            "slept 2ms, saw {}us",
            h.summary().max
        );
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_the_stack() {
        let a = Span::enter("test.a");
        let b = Span::enter("test.b");
        drop(a); // dropped before its child
        assert_eq!(current_trace(), Some(b.trace()));
        drop(b);
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn context_roundtrips_through_header_strings() {
        let span = Span::enter("test.exporter");
        let ctx = span.context();
        assert_eq!(ctx.trace_id, span.trace());
        assert_eq!(ctx.parent_span_id, Some(span.id()));
        let parsed = TraceContext::from_headers(
            Some(ctx.trace_header().as_str()),
            Some(ctx.parent_header().as_str()),
        )
        .expect("header roundtrip");
        assert_eq!(parsed, ctx);
        // Malformed parent degrades, malformed trace rejects.
        let degraded = TraceContext::from_headers(Some("17"), Some("banana")).unwrap();
        assert_eq!(degraded.trace_id, 17);
        assert_eq!(degraded.parent_span_id, None);
        assert_eq!(TraceContext::from_headers(Some("soup"), None), None);
        assert_eq!(TraceContext::from_headers(None, Some("1")), None);
    }

    #[test]
    fn enter_with_continues_the_imported_trace() {
        let root = Span::enter("test.handoff_root");
        let ctx = root.context();
        let trace = root.trace();
        let child_ids = std::thread::spawn(move || {
            // The worker thread has no live spans of its own; enter_with
            // grafts onto the imported trace anyway.
            assert_eq!(current_trace(), None);
            let continued = Span::enter_with("test.handoff_worker", ctx);
            let nested = Span::enter("test.handoff_nested");
            (continued.trace(), nested.trace())
        })
        .join()
        .expect("worker thread");
        assert_eq!(child_ids.0, trace, "imported span continues the trace");
        assert_eq!(child_ids.1, trace, "thread-local nesting continues it too");
        drop(root);
    }

    #[test]
    fn enter_root_starts_a_fresh_trace_under_a_live_span() {
        let outer = Span::enter("test.run");
        let root = Span::enter_root("test.example");
        assert_ne!(root.trace(), outer.trace());
        let nested = Span::enter("test.example_stage");
        assert_eq!(nested.trace(), root.trace());
        drop(nested);
        drop(root);
        // The outer trace is restored once the fresh root closes.
        assert_eq!(current_trace(), Some(outer.trace()));
    }

    #[test]
    fn enter_with_overrides_a_live_local_span() {
        let foreign = Span::enter("test.foreign_root");
        let imported = TraceContext {
            trace_id: 999_999_001,
            parent_span_id: Some(999_999_002),
        };
        let span = Span::enter_with("test.imported", imported);
        assert_eq!(span.trace(), 999_999_001);
        assert_ne!(span.trace(), foreign.trace());
        drop(span);
        drop(foreign);
    }
}
