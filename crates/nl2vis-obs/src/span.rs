//! Lightweight RAII spans.
//!
//! A [`Span`] measures the wall-clock time between its creation and drop,
//! records the duration into the global histogram `<name>.duration_us`, and
//! emits `span_open` / `span_close` events to the installed sink. Spans
//! opened while another span is live on the same thread nest under it, and
//! every top-level span starts a new *trace* — so one pipeline request
//! produces one trace whose child spans are its stages.

use crate::registry;
use crate::sink::{emit, Event};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Stack of `(span_id, trace_id)` for the spans live on this thread.
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The trace id of the innermost live span on this thread, if any.
pub fn current_trace() -> Option<u64> {
    STACK.with(|s| s.borrow().last().map(|&(_, trace)| trace))
}

/// An open span; closes (and records its duration) on drop.
#[derive(Debug)]
pub struct Span {
    name: String,
    id: u64,
    trace: u64,
    start: Instant,
}

impl Span {
    /// Opens a span named `name`, nesting under the innermost live span on
    /// this thread (or starting a new trace at top level).
    pub fn enter(name: impl Into<String>) -> Span {
        let name = name.into();
        let id = next_id();
        let (trace, parent) = STACK.with(|s| {
            let stack = s.borrow();
            match stack.last() {
                Some(&(parent_id, trace)) => (trace, Some(parent_id)),
                None => (next_id(), None),
            }
        });
        emit(&Event::SpanOpen {
            trace,
            span: id,
            parent,
            name: name.clone(),
        });
        STACK.with(|s| s.borrow_mut().push((id, trace)));
        Span {
            name,
            id,
            trace,
            start: Instant::now(),
        }
    }

    /// The span's unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Elapsed time since the span opened.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration = self.start.elapsed();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop this span; tolerate out-of-order drops by removing by id.
            if let Some(pos) = stack.iter().rposition(|&(id, _)| id == self.id) {
                stack.remove(pos);
            }
        });
        registry::global()
            .histogram(&format!("{}.duration_us", self.name))
            .record_duration(duration);
        emit(&Event::SpanClose {
            trace: self.trace,
            span: self.id,
            name: self.name.clone(),
            duration_us: duration.as_micros().min(u64::MAX as u128) as u64,
        });
    }
}

/// Opens a [`Span`]; bind it to a local so it lives to the end of the
/// scope: `let _span = span!("pipeline.parse");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_share_a_trace() {
        let outer = Span::enter("test.outer");
        let inner = Span::enter("test.inner");
        assert_eq!(inner.trace(), outer.trace());
        assert_ne!(inner.id(), outer.id());
        assert_eq!(current_trace(), Some(outer.trace()));
        drop(inner);
        drop(outer);
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn top_level_spans_start_fresh_traces() {
        let a = Span::enter("test.first");
        let trace_a = a.trace();
        drop(a);
        let b = Span::enter("test.second");
        assert_ne!(b.trace(), trace_a);
    }

    #[test]
    fn dropped_span_records_duration_histogram() {
        {
            let _span = crate::span!("test.timed_stage");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = registry::global().histogram("test.timed_stage.duration_us");
        assert!(h.count() >= 1);
        assert!(
            h.summary().max >= 1_000,
            "slept 2ms, saw {}us",
            h.summary().max
        );
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_the_stack() {
        let a = Span::enter("test.a");
        let b = Span::enter("test.b");
        drop(a); // dropped before its child
        assert_eq!(current_trace(), Some(b.trace()));
        drop(b);
        assert_eq!(current_trace(), None);
    }
}
