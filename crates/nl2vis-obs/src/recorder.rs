//! The flight recorder: a bounded in-memory store of completed traces.
//!
//! Metrics answer "how is the system doing?"; the sink answers "what
//! happened, eventually?" (after grepping a JSONL file). Neither answers
//! the debugging question that matters when one request misbehaves: *what
//! happened to request X?* The [`FlightRecorder`] does. Every span
//! open/close is mirrored here (see [`crate::span`]); when the last open
//! span of a trace closes, the trace is *finalized* into a
//! [`TraceRecord`] — the stitched span tree plus per-span annotations
//! (cache hit/miss, connection reuse, retry attempts) and any error
//! attributed to the trace — and stored in a sharded ring buffer.
//!
//! Memory stays O(capacity) under arbitrary traffic via a tail-retention
//! policy: each record is ranked (errored > slow > normal, where *slow*
//! means the trace's duration is at or beyond the p90 of everything the
//! recorder has finalized), and a full shard evicts its oldest
//! lowest-ranked record — or refuses the incoming record when everything
//! already stored outranks it. Errored and slowest-decile traces therefore
//! survive heavy load; ordinary traces are sampled.
//!
//! Nothing is recorded unless a recorder is [`install`]ed; the disabled
//! cost is one relaxed atomic load per hook.

use crate::registry::Histogram;
use crate::sink::escape_json;
use crate::span;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hard cap on spans kept per trace; later spans are counted but dropped.
const MAX_SPANS_PER_TRACE: usize = 512;
/// Hard cap on annotations kept per span.
const MAX_ANNOTATIONS_PER_SPAN: usize = 32;

/// One span inside a finalized trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The span's id (unique process-wide).
    pub span_id: u64,
    /// Parent span id within the trace, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `llm.attempt`.
    pub name: String,
    /// Wall-clock duration in microseconds (0 if never closed).
    pub duration_us: u64,
    /// Key/value annotations attached while the span was live
    /// (`cache=hit`, `conn=reused`, `attempt=2`, ...).
    pub annotations: Vec<(String, String)>,
}

/// An error attributed to a trace via [`crate::error`] while one of its
/// spans was live.
#[derive(Debug, Clone)]
pub struct ErrorNote {
    /// Component that reported the error (`llm`, `pipeline`, ...).
    pub component: String,
    /// Error kind (`transport`, `parse`, ...).
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

/// A completed, stitched trace: everything the recorder knows about one
/// request.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The trace id shared by every span in the record.
    pub trace_id: u64,
    /// Monotonic finalization sequence number (recency ordering).
    pub seq: u64,
    /// Name of the trace's first-opened span.
    pub root: String,
    /// Duration of the root span in microseconds.
    pub duration_us: u64,
    /// Total spans observed (may exceed `spans.len()` when truncated).
    pub span_count: u64,
    /// The recorded spans, in open order.
    pub spans: Vec<SpanRecord>,
    /// First error attributed to the trace, if any.
    pub error: Option<ErrorNote>,
}

impl TraceRecord {
    /// `"error"` when an error was attributed to the trace, else `"ok"`.
    pub fn outcome(&self) -> &'static str {
        if self.error.is_some() {
            "error"
        } else {
            "ok"
        }
    }

    /// Whether the record contains a span with this name.
    pub fn has_span(&self, name: &str) -> bool {
        self.spans.iter().any(|s| s.name == name)
    }

    /// Spans with this name.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Whether any span carries the annotation `key=value`.
    pub fn has_annotation(&self, key: &str, value: &str) -> bool {
        self.spans
            .iter()
            .any(|s| s.annotations.iter().any(|(k, v)| k == key && v == value))
    }

    /// The full stitched record as one JSON object (backs `GET /trace/<id>`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        out.push_str(&format!(
            "{{\"trace_id\":{},\"root\":\"{}\",\"duration_us\":{},\"outcome\":\"{}\",\"span_count\":{}",
            self.trace_id,
            escape_json(&self.root),
            self.duration_us,
            self.outcome(),
            self.span_count,
        ));
        if let Some(err) = &self.error {
            out.push_str(&format!(
                ",\"error\":{{\"component\":\"{}\",\"kind\":\"{}\",\"message\":\"{}\"}}",
                escape_json(&err.component),
                escape_json(&err.kind),
                escape_json(&err.message)
            ));
        }
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"span\":{},\"parent\":{},\"name\":\"{}\",\"duration_us\":{}",
                s.span_id,
                match s.parent {
                    Some(p) => p.to_string(),
                    None => "null".to_string(),
                },
                escape_json(&s.name),
                s.duration_us
            ));
            if !s.annotations.is_empty() {
                out.push_str(",\"annotations\":{");
                for (j, (k, v)) in s.annotations.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// A human-readable indented span tree (used by the `traces`
    /// experiment dump).
    pub fn render_tree(&self) -> String {
        let mut out = format!(
            "trace {} [{}] {} ({} us, {} spans)\n",
            self.trace_id,
            self.outcome(),
            self.root,
            self.duration_us,
            self.span_count
        );
        if let Some(err) = &self.error {
            out.push_str(&format!(
                "  error: {}.{}: {}\n",
                err.component, err.kind, err.message
            ));
        }
        // Children of each span, in open order.
        let mut children: HashMap<Option<u64>, Vec<usize>> = HashMap::new();
        let ids: Vec<u64> = self.spans.iter().map(|s| s.span_id).collect();
        for (i, s) in self.spans.iter().enumerate() {
            // A parent outside the record (e.g. truncated) renders at root.
            let key = s.parent.filter(|p| ids.contains(p));
            children.entry(key).or_default().push(i);
        }
        fn walk(
            rec: &TraceRecord,
            children: &HashMap<Option<u64>, Vec<usize>>,
            key: Option<u64>,
            depth: usize,
            out: &mut String,
        ) {
            for &i in children.get(&key).into_iter().flatten() {
                let s = &rec.spans[i];
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(&format!("{} ({} us)", s.name, s.duration_us));
                for (k, v) in &s.annotations {
                    out.push_str(&format!(" {k}={v}"));
                }
                out.push('\n');
                walk(rec, children, Some(s.span_id), depth + 1, out);
            }
        }
        walk(self, &children, None, 0, &mut out);
        out
    }
}

/// A trace still in flight: spans have opened but not all have closed.
#[derive(Debug, Default)]
struct ActiveTrace {
    spans: Vec<SpanRecord>,
    /// Index into `spans` by span id (bounded by MAX_SPANS_PER_TRACE).
    index: HashMap<u64, usize>,
    open: usize,
    span_count: u64,
    root_duration_us: u64,
    error: Option<ErrorNote>,
    /// Admission order, for abandoning the stalest active trace.
    admitted: u64,
}

#[derive(Debug, Default)]
struct Shard {
    ring: Vec<TraceRecord>,
}

/// Counters describing what the recorder has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Traces finalized (whether or not they were stored).
    pub finalized: u64,
    /// Finalized traces refused because the shard was full of
    /// higher-ranked records (the sampling tail).
    pub sampled_out: u64,
    /// Stored records evicted to make room.
    pub evicted: u64,
    /// In-flight traces abandoned because the active set hit its bound.
    pub abandoned: u64,
}

/// A bounded, sharded store of completed [`TraceRecord`]s.
///
/// Construct one with [`FlightRecorder::new`] and make it live with
/// [`install`]; span hooks feed whichever recorder is installed.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Vec<Mutex<Shard>>,
    shard_caps: Vec<usize>,
    capacity: usize,
    active: Mutex<HashMap<u64, ActiveTrace>>,
    max_active: usize,
    admissions: AtomicU64,
    seq: AtomicU64,
    /// Root durations of every finalized trace; its p90 is the "slow"
    /// retention threshold.
    durations: Histogram,
    finalized: AtomicU64,
    sampled_out: AtomicU64,
    evicted: AtomicU64,
    abandoned: AtomicU64,
}

const SHARDS: usize = 8;

impl FlightRecorder {
    /// A recorder holding at most `capacity` completed traces (and at most
    /// `4 * capacity` in-flight ones, clamped to at least 64).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        let shards = SHARDS.min(capacity);
        // Per-shard capacities sum exactly to `capacity`.
        let shard_caps: Vec<usize> = (0..shards)
            .map(|i| capacity / shards + usize::from(i < capacity % shards))
            .collect();
        FlightRecorder {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_caps,
            capacity,
            active: Mutex::new(HashMap::new()),
            max_active: (capacity * 4).max(64),
            admissions: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            durations: Histogram::default(),
            finalized: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
        }
    }

    /// Maximum number of stored traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of traces currently stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("recorder shard").ring.len())
            .sum()
    }

    /// True when no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of in-flight (not yet finalized) traces — bounded by
    /// `max_active`, which load tests assert on.
    pub fn active_len(&self) -> usize {
        self.active.lock().expect("recorder active").len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            finalized: self.finalized.load(Ordering::Relaxed),
            sampled_out: self.sampled_out.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
        }
    }

    /// A span opened under `trace_id`.
    pub fn span_opened(&self, trace_id: u64, span_id: u64, parent: Option<u64>, name: &str) {
        let mut active = self.active.lock().expect("recorder active");
        if !active.contains_key(&trace_id) && active.len() >= self.max_active {
            // Abandon the stalest in-flight trace so fresh traffic is
            // still observable even if something leaks spans.
            if let Some(&stalest) = active
                .iter()
                .min_by_key(|(_, t)| t.admitted)
                .map(|(id, _)| id)
            {
                active.remove(&stalest);
                self.abandoned.fetch_add(1, Ordering::Relaxed);
            }
        }
        let admitted = self.admissions.fetch_add(1, Ordering::Relaxed);
        let trace = active.entry(trace_id).or_insert_with(|| ActiveTrace {
            admitted,
            ..ActiveTrace::default()
        });
        trace.open += 1;
        trace.span_count += 1;
        if trace.spans.len() < MAX_SPANS_PER_TRACE {
            trace.index.insert(span_id, trace.spans.len());
            trace.spans.push(SpanRecord {
                span_id,
                parent,
                name: name.to_string(),
                duration_us: 0,
                annotations: Vec::new(),
            });
        }
    }

    /// A span closed; finalizes the trace when it was the last one open.
    pub fn span_closed(&self, trace_id: u64, span_id: u64, duration_us: u64) {
        let record = {
            let mut active = self.active.lock().expect("recorder active");
            let Some(trace) = active.get_mut(&trace_id) else {
                return;
            };
            if let Some(&i) = trace.index.get(&span_id) {
                trace.spans[i].duration_us = duration_us;
                if i == 0 {
                    trace.root_duration_us = duration_us;
                }
            }
            trace.open = trace.open.saturating_sub(1);
            if trace.open > 0 {
                return;
            }
            let trace = active.remove(&trace_id).expect("trace just seen");
            TraceRecord {
                trace_id,
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                root: trace
                    .spans
                    .first()
                    .map(|s| s.name.clone())
                    .unwrap_or_default(),
                duration_us: trace.root_duration_us,
                span_count: trace.span_count,
                spans: trace.spans,
                error: trace.error,
            }
        };
        self.store(record);
    }

    /// Attaches `key=value` to an open span of an in-flight trace.
    pub fn annotate(&self, trace_id: u64, span_id: u64, key: &str, value: &str) {
        let mut active = self.active.lock().expect("recorder active");
        let Some(trace) = active.get_mut(&trace_id) else {
            return;
        };
        let Some(&i) = trace.index.get(&span_id) else {
            return;
        };
        let annotations = &mut trace.spans[i].annotations;
        if annotations.len() < MAX_ANNOTATIONS_PER_SPAN {
            annotations.push((key.to_string(), value.to_string()));
        }
    }

    /// Attributes an error to an in-flight trace (first one wins).
    pub fn note_error(&self, trace_id: u64, component: &str, kind: &str, message: &str) {
        let mut active = self.active.lock().expect("recorder active");
        let Some(trace) = active.get_mut(&trace_id) else {
            return;
        };
        if trace.error.is_none() {
            trace.error = Some(ErrorNote {
                component: component.to_string(),
                kind: kind.to_string(),
                message: message.to_string(),
            });
        }
    }

    /// Retention rank: errored traces outrank slow ones outrank the rest.
    fn rank(&self, record: &TraceRecord, slow_threshold: u64) -> u8 {
        if record.error.is_some() {
            2
        } else if record.duration_us >= slow_threshold {
            1
        } else {
            0
        }
    }

    /// Root-duration value at or beyond which a trace counts as "slow"
    /// (the slowest decile of everything finalized so far).
    fn slow_threshold(&self) -> u64 {
        let s = self.durations.summary();
        if s.count < 10 {
            // Too little data to call anything slow.
            return u64::MAX;
        }
        self.durations.quantile(0.90).max(1.0) as u64
    }

    fn store(&self, record: TraceRecord) {
        self.finalized.fetch_add(1, Ordering::Relaxed);
        self.durations.record(record.duration_us);
        let shard_i = (record.trace_id as usize) % self.shards.len();
        let cap = self.shard_caps[shard_i];
        let mut shard = self.shards[shard_i].lock().expect("recorder shard");
        if shard.ring.len() < cap {
            shard.ring.push(record);
            return;
        }
        let slow = self.slow_threshold();
        let incoming_rank = self.rank(&record, slow);
        // Oldest record of the lowest rank is the eviction candidate.
        let victim = shard
            .ring
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| (self.rank(r, slow), r.seq))
            .map(|(i, r)| (i, self.rank(r, slow)));
        match victim {
            Some((i, victim_rank)) if incoming_rank >= victim_rank => {
                shard.ring.remove(i);
                shard.ring.push(record);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                // Everything stored outranks the incoming trace: sample it out.
                self.sampled_out.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The stored record for `trace_id`, if retained.
    pub fn get(&self, trace_id: u64) -> Option<TraceRecord> {
        let shard_i = (trace_id as usize) % self.shards.len();
        let shard = self.shards[shard_i].lock().expect("recorder shard");
        shard
            .ring
            .iter()
            .rev()
            .find(|r| r.trace_id == trace_id)
            .cloned()
    }

    /// Up to `limit` stored records, most recently finalized first.
    pub fn recent(&self, limit: usize) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().expect("recorder shard").ring.clone())
            .collect();
        all.sort_by_key(|r| std::cmp::Reverse(r.seq));
        all.truncate(limit);
        all
    }

    /// The recent-trace index as JSON (backs `GET /requests`).
    pub fn index_json(&self, limit: usize) -> String {
        let recent = self.recent(limit);
        let mut out = String::from("{\"traces\":[");
        for (i, r) in recent.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"trace_id\":{},\"root\":\"{}\",\"duration_us\":{},\"outcome\":\"{}\",\"span_count\":{}}}",
                r.trace_id,
                escape_json(&r.root),
                r.duration_us,
                r.outcome(),
                r.span_count
            ));
        }
        out.push_str("]}");
        out
    }
}

static RECORDER_ACTIVE: AtomicBool = AtomicBool::new(false);

fn recorder_slot() -> &'static Mutex<Option<Arc<FlightRecorder>>> {
    static SLOT: Mutex<Option<Arc<FlightRecorder>>> = Mutex::new(None);
    &SLOT
}

/// Installs `recorder` as the process-wide flight recorder; span hooks
/// start feeding it immediately. Replaces any previous recorder.
pub fn install(recorder: Arc<FlightRecorder>) {
    *recorder_slot().lock().expect("recorder slot") = Some(recorder);
    RECORDER_ACTIVE.store(true, Ordering::Release);
}

/// Removes the installed recorder; hooks go back to a single atomic load.
pub fn disable() {
    RECORDER_ACTIVE.store(false, Ordering::Release);
    *recorder_slot().lock().expect("recorder slot") = None;
}

/// True when a recorder is installed.
pub fn enabled() -> bool {
    RECORDER_ACTIVE.load(Ordering::Acquire)
}

/// The installed recorder, if any.
pub fn installed() -> Option<Arc<FlightRecorder>> {
    if !enabled() {
        return None;
    }
    recorder_slot().lock().expect("recorder slot").clone()
}

/// Span-open hook (called by [`crate::span::Span`]).
pub(crate) fn on_span_open(trace: u64, span: u64, parent: Option<u64>, name: &str) {
    if let Some(r) = installed() {
        r.span_opened(trace, span, parent, name);
    }
}

/// Span-close hook (called by [`crate::span::Span`]).
pub(crate) fn on_span_close(trace: u64, span: u64, duration_us: u64) {
    if let Some(r) = installed() {
        r.span_closed(trace, span, duration_us);
    }
}

/// Annotation hook (called by [`crate::span::Span::annotate`]).
pub(crate) fn annotate_span(trace: u64, span: u64, key: &str, value: &str) {
    if let Some(r) = installed() {
        r.annotate(trace, span, key, value);
    }
}

/// Attributes an error to the current thread's trace (called by
/// [`crate::error`]).
pub(crate) fn note_error_current(component: &str, kind: &str, message: &str) {
    if !enabled() {
        return;
    }
    if let (Some(trace), Some(r)) = (span::current_trace(), installed()) {
        r.note_error(trace, component, kind, message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trace_id: u64, seq: u64, duration_us: u64, errored: bool) -> TraceRecord {
        TraceRecord {
            trace_id,
            seq,
            root: "test.root".to_string(),
            duration_us,
            span_count: 1,
            spans: vec![SpanRecord {
                span_id: trace_id + 1,
                parent: None,
                name: "test.root".to_string(),
                duration_us,
                annotations: Vec::new(),
            }],
            error: errored.then(|| ErrorNote {
                component: "test".to_string(),
                kind: "boom".to_string(),
                message: "synthetic".to_string(),
            }),
        }
    }

    /// Drives a full open→close lifecycle directly against one recorder.
    fn run_trace(r: &FlightRecorder, trace_id: u64, duration_us: u64, errored: bool) {
        let span_id = trace_id * 1000 + 1;
        r.span_opened(trace_id, span_id, None, "test.root");
        if errored {
            r.note_error(trace_id, "test", "boom", "synthetic");
        }
        r.span_closed(trace_id, span_id, duration_us);
    }

    #[test]
    fn trace_finalizes_when_last_span_closes() {
        let r = FlightRecorder::new(8);
        r.span_opened(1, 10, None, "test.root");
        r.span_opened(1, 11, Some(10), "test.child");
        assert_eq!(r.len(), 0, "still in flight");
        r.span_closed(1, 11, 5);
        assert_eq!(r.len(), 0, "root still open");
        r.span_closed(1, 10, 9);
        assert_eq!(r.len(), 1);
        let rec = r.get(1).expect("stored");
        assert_eq!(rec.root, "test.root");
        assert_eq!(rec.duration_us, 9);
        assert_eq!(rec.spans.len(), 2);
        assert_eq!(rec.spans[1].parent, Some(10));
        assert_eq!(rec.outcome(), "ok");
    }

    #[test]
    fn out_of_order_parent_close_does_not_finalize_early() {
        let r = FlightRecorder::new(8);
        r.span_opened(2, 20, None, "test.root");
        r.span_opened(2, 21, Some(20), "test.child");
        r.span_closed(2, 20, 9); // parent closes first
        assert_eq!(r.len(), 0, "child still open");
        r.span_closed(2, 21, 5);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn annotations_and_errors_land_on_the_record() {
        let r = FlightRecorder::new(8);
        r.span_opened(3, 30, None, "test.root");
        r.annotate(3, 30, "cache", "miss");
        r.note_error(3, "llm", "transport", "socket dropped");
        r.note_error(3, "llm", "transport", "second error ignored");
        r.span_closed(3, 30, 100);
        let rec = r.get(3).expect("stored");
        assert!(rec.has_annotation("cache", "miss"));
        assert_eq!(rec.outcome(), "error");
        let err = rec.error.as_ref().unwrap();
        assert_eq!(err.kind, "transport");
        assert_eq!(err.message, "socket dropped", "first error wins");
    }

    #[test]
    fn capacity_is_exact_under_ten_times_load() {
        let capacity = 32;
        let r = FlightRecorder::new(capacity);
        for i in 0..(capacity as u64 * 10) {
            run_trace(&r, i, 50, false);
        }
        assert_eq!(r.len(), capacity, "bounded at exactly capacity");
        let stats = r.stats();
        assert_eq!(stats.finalized, capacity as u64 * 10);
        assert_eq!(
            stats.evicted + stats.sampled_out,
            capacity as u64 * 9,
            "every overflow either evicted an old record or was sampled out"
        );
    }

    #[test]
    fn errored_traces_are_retained_preferentially() {
        let capacity = 16;
        let r = FlightRecorder::new(capacity);
        // Interleave: most traces fine, every 9th errored (stride co-prime
        // with the shard count so errored traces reach every shard).
        let total = capacity as u64 * 10;
        for i in 0..total {
            run_trace(&r, i, 50, i % 9 == 0);
        }
        assert_eq!(r.len(), capacity);
        let kept_errored = r
            .recent(capacity)
            .into_iter()
            .filter(|t| t.outcome() == "error")
            .count();
        // 18 errored traces entered a 16-slot recorder and errored records
        // are never evicted for healthy ones, so all slots end up errored.
        assert_eq!(kept_errored, capacity, "errored traces survive load");
    }

    #[test]
    fn slow_traces_outrank_ordinary_ones() {
        let capacity = 8;
        let r = FlightRecorder::new(capacity);
        // 100 traces, every 10th of them 100x slower than the rest.
        for i in 0..100u64 {
            let slow = i % 10 == 9;
            run_trace(&r, i, if slow { 10_000 } else { 100 }, false);
        }
        let kept = r.recent(capacity);
        let slow_kept = kept.iter().filter(|t| t.duration_us >= 10_000).count();
        // Slow ids (9, 19, ..., 99) only land on the odd shards, so with 8
        // single-slot shards at most 4 can be retained — all 4 should be.
        assert!(
            slow_kept >= 4,
            "slowest-decile traces should dominate retention, kept {slow_kept}"
        );
    }

    #[test]
    fn eviction_prefers_oldest_of_lowest_rank() {
        let r = FlightRecorder::new(1);
        r.store(record(8, 0, 50, false));
        r.store(record(16, 1, 50, false));
        // Same rank: newest replaces oldest.
        assert!(r.get(8).is_none());
        assert!(r.get(16).is_some());
        // An errored record takes the slot and then refuses a healthy one.
        r.store(record(24, 2, 50, true));
        assert!(r.get(24).is_some());
        r.store(record(32, 3, 50, false));
        assert!(r.get(24).is_some(), "errored record not evicted");
        assert!(r.get(32).is_none(), "healthy overflow sampled out");
        assert!(r.stats().sampled_out >= 1);
    }

    #[test]
    fn active_set_is_bounded() {
        let r = FlightRecorder::new(4); // max_active clamps to 64
        for i in 0..200u64 {
            r.span_opened(i, i * 1000, None, "test.leaky"); // never closed
        }
        let active = r.active.lock().unwrap().len();
        assert!(active <= 64, "active set {active} must stay bounded");
        assert!(r.stats().abandoned >= 100);
    }

    #[test]
    fn json_and_tree_rendering() {
        let r = FlightRecorder::new(4);
        r.span_opened(7, 70, None, "pipeline.run");
        r.span_opened(7, 71, Some(70), "llm.attempt");
        r.annotate(7, 71, "conn", "fresh");
        r.span_closed(7, 71, 5);
        r.note_error(7, "llm", "transport", "timeout \"deadline\"");
        r.span_closed(7, 70, 12);
        let rec = r.get(7).expect("stored");
        let json = rec.to_json();
        assert!(json.contains("\"trace_id\":7"));
        assert!(json.contains("\"outcome\":\"error\""));
        assert!(json.contains("\"conn\":\"fresh\""));
        assert!(json.contains("timeout \\\"deadline\\\""), "{json}");
        let index = r.index_json(10);
        assert!(index.starts_with("{\"traces\":["));
        assert!(index.contains("\"trace_id\":7"));
        let tree = rec.render_tree();
        assert!(tree.contains("pipeline.run (12 us)"));
        assert!(tree.contains("  llm.attempt (5 us) conn=fresh"), "{tree}");
    }

    #[test]
    fn install_hooks_feed_spans_from_the_span_module() {
        let r = Arc::new(FlightRecorder::new(16));
        install(Arc::clone(&r));
        let trace_id = {
            let root = crate::span::Span::enter("rectest.request");
            root.annotate("cache", "hit");
            let _child = crate::span::Span::enter("rectest.stage");
            root.trace()
        };
        disable();
        let rec = r.get(trace_id).expect("trace recorded via hooks");
        assert!(rec.has_span("rectest.request"));
        assert!(rec.has_span("rectest.stage"));
        assert!(rec.has_annotation("cache", "hit"));
        assert!(!enabled());
    }
}
