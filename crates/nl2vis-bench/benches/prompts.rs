//! Benchmarks for prompt engineering: every serialization strategy of
//! Figure 4, schema recovery from each, demonstration selection, and ICL
//! prompt assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use nl2vis_corpus::{Corpus, CorpusConfig, Example};
use nl2vis_llm::recover::recover;
use nl2vis_prompt::select::DemoPool;
use nl2vis_prompt::{build_prompt, PromptFormat, PromptOptions};
use std::hint::black_box;

const QUESTION: &str = "Show a bar chart of the number of technicians for each team.";

fn bench_serialize(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::small(7));
    let db = corpus.catalog.database("baseball_club").unwrap();
    let mut group = c.benchmark_group("prompt_serialize");
    for format in PromptFormat::all() {
        group.bench_function(format.name(), |b| {
            b.iter(|| format.serialize(black_box(db), QUESTION))
        });
    }
    group.finish();
}

fn bench_recover(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::small(7));
    let db = corpus.catalog.database("baseball_club").unwrap();
    let mut group = c.benchmark_group("prompt_recover");
    for format in [
        PromptFormat::Table2Sql,
        PromptFormat::Table2Json,
        PromptFormat::Table2Xml,
        PromptFormat::Table2Code,
        PromptFormat::Chat2Vis,
    ] {
        let text = format.serialize(db, QUESTION);
        group.bench_function(format.name(), |b| b.iter(|| recover(black_box(&text))));
    }
    group.finish();
}

fn bench_selection_and_assembly(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::small(7));
    let db = corpus.catalog.database("baseball_club").unwrap();
    let candidates: Vec<&Example> = corpus.examples.iter().collect();
    let pool = DemoPool::new(&candidates);

    c.bench_function("prompt_demo_selection_top20", |b| {
        b.iter(|| pool.select_similar(black_box(QUESTION), 20, usize::MAX))
    });

    let demos = pool.select_similar(QUESTION, 20, usize::MAX);
    let options = PromptOptions { token_budget: 16384, ..Default::default() };
    c.bench_function("prompt_assemble_20_shot", |b| {
        b.iter(|| {
            build_prompt(black_box(&options), db, QUESTION, &demos, |d| {
                corpus.catalog.database(&d.db).unwrap()
            })
        })
    });
}

criterion_group!(benches, bench_serialize, bench_recover, bench_selection_and_assembly);
criterion_main!(benches);
