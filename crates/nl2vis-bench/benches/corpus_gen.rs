//! Benchmarks for the corpus generator: database instantiation, query
//! synthesis, NL realization, and whole-corpus builds.

use criterion::{criterion_group, criterion_main, Criterion};
use nl2vis_corpus::domains::all_domains;
use nl2vis_corpus::generate::instantiate;
use nl2vis_corpus::realize::realize;
use nl2vis_corpus::synth::{synthesize, Hardness};
use nl2vis_corpus::{Corpus, CorpusConfig};
use nl2vis_data::Rng;
use std::hint::black_box;

fn bench_instantiate(c: &mut Criterion) {
    let spec = &all_domains()[1]; // college: three tables, two FKs
    c.bench_function("corpus_instantiate_db", |b| {
        b.iter(|| instantiate(black_box(spec), 0, &mut Rng::new(3)))
    });
}

fn bench_synthesize(c: &mut Criterion) {
    let db = instantiate(&all_domains()[1], 0, &mut Rng::new(3));
    let mut group = c.benchmark_group("corpus_synthesize");
    for h in Hardness::all() {
        group.bench_function(h.label(), |b| {
            let mut rng = Rng::new(11);
            b.iter(|| synthesize(black_box(&db), h, &mut rng))
        });
    }
    group.finish();
}

fn bench_realize(c: &mut Criterion) {
    let db = instantiate(&all_domains()[1], 0, &mut Rng::new(3));
    let q = synthesize(&db, Hardness::Hard, &mut Rng::new(5)).expect("query");
    c.bench_function("corpus_realize_nl", |b| {
        let mut rng = Rng::new(13);
        b.iter(|| realize(black_box(&q), &db, &mut rng))
    });
}

fn bench_full_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_build");
    group.sample_size(10);
    group.bench_function("small", |b| {
        b.iter(|| Corpus::build(black_box(&CorpusConfig::small(7))))
    });
    group.finish();
}

fn bench_splits(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::small(7));
    c.bench_function("corpus_split_in_domain", |b| b.iter(|| corpus.split_in_domain(3)));
    c.bench_function("corpus_split_cross_domain", |b| b.iter(|| corpus.split_cross_domain(3)));
}

criterion_group!(
    benches,
    bench_instantiate,
    bench_synthesize,
    bench_realize,
    bench_full_build,
    bench_splits
);
criterion_main!(benches);
