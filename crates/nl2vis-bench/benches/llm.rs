//! End-to-end model benchmarks: question understanding, grounding, full
//! simulated-LLM completions at different shot counts, the HTTP transport,
//! and baseline predictions — the latency surface behind Table 4's cost
//! discussion.

use criterion::{criterion_group, criterion_main, Criterion};
use nl2vis_baselines::{Nl2VisModel, RgVisNet, Seq2Vis, T5Model, T5Size};
use nl2vis_corpus::{Corpus, CorpusConfig, Example};
use nl2vis_llm::http::{CompletionServer, HttpLlmClient};
use nl2vis_llm::recover::RecoveredSchema;
use nl2vis_llm::understand::{ground, parse_question};
use nl2vis_llm::{ModelProfile, SimLlm};
use nl2vis_prompt::select::DemoPool;
use nl2vis_prompt::{build_prompt, PromptOptions};
use std::hint::black_box;

fn setup() -> (Corpus, String) {
    let corpus = Corpus::build(&CorpusConfig::small(7));
    let question = corpus.examples[0].nl.clone();
    (corpus, question)
}

fn bench_understanding(c: &mut Criterion) {
    let (corpus, question) = setup();
    let db = corpus.catalog.database(&corpus.examples[0].db).unwrap();
    let schema = RecoveredSchema::from_database(db);
    c.bench_function("llm_parse_question", |b| b.iter(|| parse_question(black_box(&question))));
    let intent = parse_question(&question);
    let know_all = |_: &str| true;
    c.bench_function("llm_ground_intent", |b| {
        b.iter(|| ground(black_box(&intent), &schema, &know_all))
    });
}

fn bench_completion(c: &mut Criterion) {
    let (corpus, question) = setup();
    let db = corpus.catalog.database(&corpus.examples[0].db).unwrap();
    let candidates: Vec<&Example> = corpus.examples.iter().collect();
    let pool = DemoPool::new(&candidates);
    let llm = SimLlm::new(ModelProfile::davinci_003(), 3);

    let mut group = c.benchmark_group("llm_complete");
    for k in [0usize, 5, 20] {
        let demos = pool.select_similar(&question, k, usize::MAX);
        let options = PromptOptions { token_budget: 16384, ..Default::default() };
        let prompt = build_prompt(&options, db, &question, &demos, |d| {
            corpus.catalog.database(&d.db).unwrap()
        });
        group.bench_function(format!("{k}_shot"), |b| {
            b.iter(|| llm.complete(black_box(&prompt.text)))
        });
    }
    group.finish();
}

fn bench_http_roundtrip(c: &mut Criterion) {
    let (corpus, question) = setup();
    let db = corpus.catalog.database(&corpus.examples[0].db).unwrap();
    let options = PromptOptions::default();
    let prompt = build_prompt(&options, db, &question, &[], |_: &Example| unreachable!());
    let server = CompletionServer::start(SimLlm::new(ModelProfile::davinci_003(), 3)).unwrap();
    let client = HttpLlmClient::new(server.address(), "text-davinci-003");
    c.bench_function("llm_http_roundtrip", |b| {
        b.iter(|| client.complete_http(black_box(&prompt.text)).unwrap())
    });
}

fn bench_baselines(c: &mut Criterion) {
    let (corpus, question) = setup();
    let db = corpus.catalog.database(&corpus.examples[0].db).unwrap();
    let ids: Vec<usize> = corpus.examples.iter().map(|e| e.id).collect();
    let mut group = c.benchmark_group("baseline_predict");
    let s2v = Seq2Vis::train(&corpus, &ids);
    group.bench_function("seq2vis", |b| b.iter(|| s2v.predict(black_box(&question), db)));
    let rg = RgVisNet::train(&corpus, &ids);
    group.bench_function("rgvisnet", |b| b.iter(|| rg.predict(black_box(&question), db)));
    let t5 = T5Model::train(&corpus, &ids, T5Size::Base, 1);
    group.bench_function("t5_base", |b| b.iter(|| t5.predict(black_box(&question), db)));
    group.finish();

    let mut train_group = c.benchmark_group("baseline_train");
    train_group.sample_size(10);
    train_group.bench_function("t5_base_fit", |b| {
        b.iter(|| T5Model::train(black_box(&corpus), &ids, T5Size::Base, 1))
    });
    train_group.finish();
}

criterion_group!(benches, bench_understanding, bench_completion, bench_http_roundtrip, bench_baselines);
criterion_main!(benches);
