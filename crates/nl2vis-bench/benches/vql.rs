//! Microbenchmarks for the VQL language core: lexing+parsing, printing,
//! canonicalization and execution (single-table and join plans).

use criterion::{criterion_group, criterion_main, Criterion};
use nl2vis_corpus::domains::all_domains;
use nl2vis_corpus::generate::instantiate;
use nl2vis_data::Rng;
use nl2vis_query::canon::canonicalize;
use nl2vis_query::printer::print;
use nl2vis_query::{execute, parse};
use std::hint::black_box;

const SIMPLE: &str =
    "VISUALIZE bar SELECT team , COUNT(name) FROM technician WHERE team != \"NYY\" GROUP BY team ORDER BY team ASC";
const COMPLEX: &str = "VISUALIZE bar SELECT technician.team , SUM(machine.value) FROM machine \
     JOIN technician ON machine.tech_id = technician.tech_id \
     WHERE machine.value > 1000.0 AND technician.age < 50 \
     GROUP BY technician.team , technician.team ORDER BY y DESC";
const NESTED: &str = "VISUALIZE pie SELECT team , COUNT(team) FROM technician WHERE tech_id IN \
     ( SELECT tech_id FROM machine WHERE value > 2000.0 ) GROUP BY team";

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("vql_parse");
    for (name, src) in [("simple", SIMPLE), ("join", COMPLEX), ("nested", NESTED)] {
        group.bench_function(name, |b| b.iter(|| parse(black_box(src)).unwrap()));
    }
    group.finish();
}

fn bench_print_canon(c: &mut Criterion) {
    let q = parse(COMPLEX).unwrap();
    c.bench_function("vql_print", |b| b.iter(|| print(black_box(&q))));
    c.bench_function("vql_canonicalize", |b| b.iter(|| canonicalize(black_box(&q))));
}

fn bench_execute(c: &mut Criterion) {
    let db = instantiate(&all_domains()[0], 0, &mut Rng::new(7));
    let simple = parse(SIMPLE).unwrap();
    let join = parse(COMPLEX).unwrap();
    let nested = parse(NESTED).unwrap();
    let mut group = c.benchmark_group("vql_execute");
    group.bench_function("group_by", |b| b.iter(|| execute(black_box(&simple), &db).unwrap()));
    group.bench_function("hash_join", |b| b.iter(|| execute(black_box(&join), &db).unwrap()));
    group.bench_function("subquery", |b| b.iter(|| execute(black_box(&nested), &db).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_parse, bench_print_canon, bench_execute);
criterion_main!(benches);
