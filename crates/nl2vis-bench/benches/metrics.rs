//! Benchmarks for the evaluation layer: exact/execution scoring, the
//! component diff, rendering, and the comparison-strategy ablation called
//! out in DESIGN.md §6 (canonical result-set comparison vs ordered-tuple
//! comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use nl2vis_corpus::domains::all_domains;
use nl2vis_corpus::generate::instantiate;
use nl2vis_data::Rng;
use nl2vis_eval::metrics::score_query;
use nl2vis_query::component::diff;
use nl2vis_query::{execute, parse};
use nl2vis_vega::{ascii, spec, svg};
use std::hint::black_box;

const GOLD: &str =
    "VISUALIZE bar SELECT team , COUNT(name) FROM technician GROUP BY team ORDER BY team ASC";
const NEAR: &str =
    "VISUALIZE bar SELECT team , COUNT(tech_id) FROM technician GROUP BY team ORDER BY team ASC";

fn bench_scoring(c: &mut Criterion) {
    let db = instantiate(&all_domains()[0], 0, &mut Rng::new(7));
    let gold = parse(GOLD).unwrap();
    let near = parse(NEAR).unwrap();
    c.bench_function("metrics_score_query", |b| {
        b.iter(|| score_query(black_box(&near), &gold, &db))
    });
    c.bench_function("metrics_component_diff", |b| b.iter(|| diff(black_box(&gold), &near)));
}

/// Ablation `ablation_exec_compare` (DESIGN.md §6): multiset comparison of
/// canonical rows vs ordered-sequence comparison.
fn bench_exec_compare_ablation(c: &mut Criterion) {
    let db = instantiate(&all_domains()[0], 0, &mut Rng::new(7));
    let unordered = execute(
        &parse("VISUALIZE bar SELECT team , COUNT(name) FROM technician GROUP BY team").unwrap(),
        &db,
    )
    .unwrap();
    let ordered = execute(&parse(GOLD).unwrap(), &db).unwrap();
    let mut group = c.benchmark_group("ablation_exec_compare");
    group.bench_function("multiset", |b| {
        b.iter(|| black_box(&unordered).same_data(&unordered.clone()))
    });
    group.bench_function("ordered", |b| {
        b.iter(|| black_box(&ordered).same_data(&ordered.clone()))
    });
    group.finish();
}

fn bench_rendering(c: &mut Criterion) {
    let db = instantiate(&all_domains()[0], 0, &mut Rng::new(7));
    let q = parse(GOLD).unwrap();
    let result = execute(&q, &db).unwrap();
    c.bench_function("render_vega_lite", |b| b.iter(|| spec::to_vega_lite(&q, black_box(&result))));
    c.bench_function("render_svg", |b| b.iter(|| svg::render_svg(black_box(&result))));
    c.bench_function("render_ascii", |b| b.iter(|| ascii::render_ascii(black_box(&result))));
}

criterion_group!(benches, bench_scoring, bench_exec_compare_ablation, bench_rendering);
criterion_main!(benches);
