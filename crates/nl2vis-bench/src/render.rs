//! Plain-text table rendering for experiment output.

/// Renders rows as an aligned text table with a header rule.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats an accuracy as the paper's 2-decimal style.
pub fn acc(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_table() {
        let t = table(
            &["model", "exact"],
            &[
                vec!["T5-Small".to_string(), "0.60".to_string()],
                vec!["gpt-4".to_string(), "0.61".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("0.60"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(acc(0.614), "0.61");
        assert_eq!(pct(0.356), "35.6%");
    }
}
