//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section (see DESIGN.md §3 for the experiment index).
//!
//! Each experiment is a pure function of an [`ExperimentContext`] and
//! returns both structured rows (asserted on by integration tests) and a
//! rendered text table (printed by the `experiments` binary and recorded in
//! EXPERIMENTS.md).

pub mod experiments;
pub mod render;

use nl2vis_corpus::{Corpus, CorpusConfig, Split};

/// Shared state for a batch of experiments.
pub struct ExperimentContext {
    /// The benchmark corpus.
    pub corpus: Corpus,
    /// In-domain 7:2:1 split.
    pub in_split: Split,
    /// Cross-domain 7:2:1 split.
    pub cross_split: Split,
    /// Master seed for model sampling.
    pub seed: u64,
    /// Cap on evaluated test examples per configuration (None = all).
    pub limit: Option<usize>,
}

impl ExperimentContext {
    /// The full-scale context used for EXPERIMENTS.md numbers.
    pub fn full() -> ExperimentContext {
        ExperimentContext::with_config(&CorpusConfig::default(), 20240115, None)
    }

    /// A reduced context for quick runs (`--fast`) and integration tests.
    pub fn fast() -> ExperimentContext {
        ExperimentContext::with_config(
            &CorpusConfig {
                seed: 20240115,
                instances_per_domain: 1,
                queries_per_db: 14,
                paraphrases: (2, 3),
            },
            20240115,
            Some(80),
        )
    }

    /// Builds a context from an explicit corpus configuration.
    pub fn with_config(
        config: &CorpusConfig,
        seed: u64,
        limit: Option<usize>,
    ) -> ExperimentContext {
        let corpus = Corpus::build(config);
        let in_split = corpus.split_in_domain(seed);
        let cross_split = corpus.split_cross_domain(seed);
        ExperimentContext {
            corpus,
            in_split,
            cross_split,
            seed,
            limit,
        }
    }
}
