//! End-to-end tiered-routing smoke for `scripts/verify.sh`: boots the
//! completion server on a two-tier stack whose cheap tier is
//! *deliberately broken* (it answers every prompt with prose), runs the
//! in-domain eval over HTTP, and prints a JSON report. The assertions the
//! harness makes against it:
//!
//! - `escalations_total > 0` — the syntax gate rejected the bad tier's
//!   answers and the router escalated instead of serving them;
//! - `scores_identical` — the tiered run scores exactly what a direct
//!   strong-tier-only run scores (same profile, same seed), i.e. the bad
//!   tier never leaked a graded answer.

use nl2vis_bench::ExperimentContext;
use nl2vis_data::Json;
use nl2vis_eval::{evaluate_llm, LlmEvalConfig};
use nl2vis_llm::http::{CompletionServer, HttpLlmClient};
use nl2vis_llm::{ModelProfile, SimLlm};
use nl2vis_obs as obs;
use nl2vis_service::{
    service_fn, Layer, RouteLayer, RoutePolicy, ValidateLayer, VqlSyntaxValidator,
};

fn main() {
    let ctx = ExperimentContext::fast();
    let config = LlmEvalConfig::default();
    let limit = Some(40);

    let strong = SimLlm::new(ModelProfile::gpt_4(), ctx.seed);
    let strong_leaf = {
        let llm = SimLlm::new(ModelProfile::gpt_4(), ctx.seed);
        service_fn(llm.profile.name, move |prompt: &str, opts: &_| {
            Ok(llm.complete_with(prompt, opts))
        })
    };
    let bad = ValidateLayer::new(VqlSyntaxValidator).layer(service_fn("bad", |_: &str, _: &_| {
        Ok("I cannot answer that.".to_string())
    }));
    let tiers = RouteLayer::new(RoutePolicy::CheapFirst)
        .model("tiered")
        .tier("bad", 1, bad)
        .tier("gpt-4", ModelProfile::gpt_4().cost_units(), strong_leaf)
        .build()
        .expect("routing stack conforms");

    let server = CompletionServer::start_with_service(tiers).expect("server boots");
    let client = HttpLlmClient::new(server.address(), "tiered");
    let tiered = evaluate_llm(
        &client,
        &ctx.corpus,
        &ctx.in_split.train,
        &ctx.in_split.test,
        &config,
        limit,
    );
    let reference = evaluate_llm(
        &strong,
        &ctx.corpus,
        &ctx.in_split.train,
        &ctx.in_split.test,
        &config,
        limit,
    );

    let g = obs::global();
    let escalations = g.counter("route.tier.escalations_total").get();
    let rejected = g.counter("route.tier.validation_failures_total").get();
    let identical = tiered.overall().exact() == reference.overall().exact()
        && tiered.overall().exec() == reference.overall().exec();
    let doc = Json::object(vec![
        ("escalations_total", Json::Number(escalations as f64)),
        ("validation_failures_total", Json::Number(rejected as f64)),
        (
            "bad_tier_requests",
            Json::Number(g.counter("route.tier.bad.requests_total").get() as f64),
        ),
        (
            "tiered",
            Json::object(vec![
                ("exact", Json::Number(tiered.overall().exact())),
                ("exec", Json::Number(tiered.overall().exec())),
            ]),
        ),
        (
            "strong_only",
            Json::object(vec![
                ("exact", Json::Number(reference.overall().exact())),
                ("exec", Json::Number(reference.overall().exec())),
            ]),
        ),
        ("scores_identical", Json::Bool(identical)),
    ]);
    println!("{}", doc.to_pretty());
}
