use nl2vis_bench::ExperimentContext;
use nl2vis_llm::recover::RecoveredSchema;
use nl2vis_llm::understand::{ground, parse_question};
use nl2vis_query::printer::print;

fn main() {
    let ctx = ExperimentContext::full();
    let yes = |_: &str| true;
    let no = |_: &str| false;
    let mut diffs = 0;
    let mut alias_words = 0;
    for id in ctx.cross_split.test.iter().take(250) {
        let e = ctx.corpus.example(*id).unwrap();
        if e.nl.contains("pay") || e.nl.contains("wage") || e.nl.contains("worth") {
            alias_words += 1;
        }
        let db = ctx.corpus.catalog.database(&e.db).unwrap();
        let schema = RecoveredSchema::from_database(db);
        let intent = parse_question(&e.nl);
        let a = ground(&intent, &schema, &yes).map(|g| print(&g.query));
        let b = ground(&intent, &schema, &no).map(|g| print(&g.query));
        if a != b {
            diffs += 1;
            if diffs <= 3 {
                println!("NL: {}\n  yes: {:?}\n  no:  {:?}", e.nl, a, b);
            }
        }
    }
    println!("ground diffs: {diffs}/250, alias-ish questions: {alias_words}");
}
