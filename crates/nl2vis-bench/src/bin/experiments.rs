//! The experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p nl2vis-bench --bin experiments --release -- all
//! cargo run -p nl2vis-bench --bin experiments --release -- table3 fig11 --fast
//! cargo run -p nl2vis-bench --bin experiments --release -- all --fast --trace=trace.jsonl
//! cargo run -p nl2vis-bench --bin experiments --release -- transport --fast \
//!     --fault=drop=0.1,500=0.08,stall=0.05,stall_ms=1500,seed=7 --retries=4
//! ```
//!
//! The `transport` experiment serves the model over HTTP twice — cleanly
//! and through a fault-injecting server — and shows that retries keep
//! accuracy identical while residual transport failures land in the
//! `error.transport` bucket. `--fault=<spec>` sets the injected fault rates
//! (see `FaultInjector::parse`), `--retries=<n>` the client attempt budget.
//!
//! The `serving` experiment runs one eval twice through a shared completion
//! cache against a live HTTP server with injected per-request latency: the
//! warm run must match the cold run's scores while serving from memory.
//! `--cache=<capacity>` sets the cache entry budget (default 4096). The
//! cold/warm comparison is also written to `BENCH_serving.json`.
//! `--overload=<threads>` adds an admission-control phase: a burst of that
//! many retrying clients against a tiny bounded server (2 workers, 2-deep
//! queue), reporting the shed rate, recovery, in-flight peak, and p50/p99
//! latency — appended to `BENCH_serving.json` as `overload_*` fields.
//!
//! The `load` experiment runs the `nl2vis-loadgen` harness in both arrival
//! modes (closed-loop, then fixed-rate open-loop with coordinated-omission
//! correction) against a self-hosted server and writes the combined
//! trajectory document to `BENCH_load.json` — the file
//! `scripts/bench_diff` compares across PRs.
//!
//! The `topology` experiment drives the same loadgen harness through the
//! `nl2vis-router` replica router: a single-replica baseline vs a routed
//! 4-replica fleet (prompt-affinity cache sharding must preserve the
//! zipf hit rate) and a hedged-vs-unhedged pair at the fleet topology
//! (hedging at the observed p95 must cut the corrected p99). Its rows
//! merge into `BENCH_load.json` alongside the `load` rows.
//!
//! The `traces` experiment installs the flight recorder, runs a small eval
//! through the full client stack against a fault-injecting server, then
//! pulls `GET /requests` / `GET /trace/<id>` and dumps the slowest and
//! errored span trees — one trace id per example, stitched across the wire.
//!
//! Every phase runs under a `bench.*` span, so the run ends with a
//! telemetry summary table (per-stage latency percentiles plus the
//! pipeline/eval counters accumulated underneath). `--trace=<path>` streams
//! the raw span/counter/error events as JSONL to a file (`-` for stderr).

use nl2vis_bench::experiments;
use nl2vis_bench::ExperimentContext;
use nl2vis_obs as obs;

const ALL: &[&str] = &[
    "table2",
    "fig6",
    "table3",
    "table4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig13",
    "ablations",
    "ext_vega",
    "hardness",
    "transport",
    "serving",
    "routing",
    "traces",
    "load",
    "topology",
];

/// Folds another load-shaped document into the pending `BENCH_load.json`
/// payload. The first document wins the top-level config fields; runs are
/// appended, first writer wins on key collisions — so `load topology` in
/// one invocation yields one trajectory file with every distinct
/// (threads, rate, replicas, hedge) row.
fn merge_bench_load(into: &mut Option<nl2vis_data::Json>, doc: nl2vis_data::Json) {
    use nl2vis_data::Json;
    let Some(existing) = into else {
        *into = Some(doc);
        return;
    };
    let key = |r: &Json| -> String {
        format!(
            "{}|{}|{}|{}",
            r.get("threads").and_then(Json::as_f64).unwrap_or(0.0),
            r.get("rate").and_then(Json::as_str).unwrap_or("?"),
            r.get("replicas").and_then(Json::as_f64).unwrap_or(1.0),
            r.get("hedge_ms").and_then(Json::as_f64).unwrap_or(0.0),
        )
    };
    let mut runs: Vec<Json> = existing
        .get("runs")
        .and_then(Json::as_array)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    let have: std::collections::HashSet<String> = runs.iter().map(key).collect();
    for run in doc
        .get("runs")
        .and_then(Json::as_array)
        .map(<[Json]>::to_vec)
        .unwrap_or_default()
    {
        if !have.contains(&key(&run)) {
            runs.push(run);
        }
    }
    existing.set("runs", Json::Array(runs));
}

/// Serializes the serving-path comparison (and, when the run included the
/// `--overload=` phase, its admission-control summary) for
/// `BENCH_serving.json`.
fn serving_json(
    s: &experiments::ServingSummary,
    overload: Option<&experiments::OverloadSummary>,
    cache_capacity: usize,
    fast: bool,
) -> nl2vis_data::Json {
    use nl2vis_data::Json;
    let mut fields = vec![
        ("experiment", Json::String("serving".to_string())),
        (
            "profile",
            Json::String(if fast { "fast" } else { "full" }.to_string()),
        ),
        ("cache_capacity", Json::Number(cache_capacity as f64)),
        ("examples", Json::Number(s.n as f64)),
        ("cold_wall_ms", Json::Number(s.cold_wall_ms)),
        ("warm_wall_ms", Json::Number(s.warm_wall_ms)),
        ("cold_connections", Json::Number(s.cold_connections as f64)),
        ("warm_connections", Json::Number(s.warm_connections as f64)),
        ("warm_hit_rate", Json::Number(s.warm_hit_rate)),
        ("cold_cache_hits", Json::Number(s.cold_hits as f64)),
        ("cold_cache_misses", Json::Number(s.cold_misses as f64)),
        ("warm_cache_hits", Json::Number(s.warm_hits as f64)),
        ("warm_cache_misses", Json::Number(s.warm_misses as f64)),
        ("cold_exact", Json::Number(s.cold.0)),
        ("cold_exec", Json::Number(s.cold.1)),
        ("warm_exact", Json::Number(s.warm.0)),
        ("warm_exec", Json::Number(s.warm.1)),
        ("scores_identical", Json::Bool(s.identical)),
    ];
    if let Some(o) = overload {
        fields.extend([
            ("overload_threads", Json::Number(o.threads as f64)),
            ("overload_requests", Json::Number(o.requests as f64)),
            ("overload_shed_total", Json::Number(o.shed_total as f64)),
            ("overload_shed_rate", Json::Number(o.shed_rate)),
            ("overload_served", Json::Number(o.served as f64)),
            ("overload_recovered", Json::Number(o.recovered as f64)),
            (
                "overload_concurrent_peak",
                Json::Number(o.concurrent_peak as f64),
            ),
            ("overload_pool_size", Json::Number(o.pool_size as f64)),
            ("overload_queue_depth", Json::Number(o.queue_depth as f64)),
            ("overload_p50_ms", Json::Number(o.p50_ms)),
            ("overload_p99_ms", Json::Number(o.p99_ms)),
        ]);
    }
    Json::object(fields)
}

/// Folds another serving-shaped document into the pending
/// `BENCH_serving.json` payload, so `serving routing` in one invocation
/// yields a single file carrying both the cache comparison and the
/// routing policy table.
fn merge_bench_serving(into: &mut Option<nl2vis_data::Json>, doc: nl2vis_data::Json) {
    let Some(existing) = into else {
        *into = Some(doc);
        return;
    };
    if let nl2vis_data::Json::Object(members) = doc {
        for (key, value) in members {
            existing.set(&key, value);
        }
    }
}

/// Serializes the routing policy table for `BENCH_serving.json`.
fn routing_json(rows: &[experiments::RoutingRow]) -> nl2vis_data::Json {
    use nl2vis_data::Json;
    Json::object(vec![
        ("experiment", Json::String("serving".to_string())),
        (
            "routing",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::object(vec![
                            ("policy", Json::String(r.policy.clone())),
                            ("exact", Json::Number(r.exact)),
                            ("exec", Json::Number(r.exec)),
                            ("p50_ms", Json::Number(r.p50_ms)),
                            ("p99_ms", Json::Number(r.p99_ms)),
                            ("requests", Json::Number(r.requests as f64)),
                            ("escalations", Json::Number(r.escalations as f64)),
                            (
                                "validation_failures",
                                Json::Number(r.validation_failures as f64),
                            ),
                            ("cost_units", Json::Number(r.cost_units as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Fault spec used by the `transport` experiment when `--fault=` is absent:
/// enough drops, 500s and deadline-tripping stalls to exercise every retry
/// path, deterministic under the fixed seed.
const DEFAULT_FAULT_SPEC: &str = "drop=0.1,500=0.08,stall=0.05,stall_ms=1500,seed=7";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    if let Some(path) = args.iter().find_map(|a| a.strip_prefix("--trace=")) {
        let sink: obs::JsonlSink = if path == "-" {
            obs::JsonlSink::stderr()
        } else {
            match std::fs::File::create(path) {
                Ok(f) => obs::JsonlSink::new(Box::new(f)),
                Err(e) => {
                    eprintln!("cannot open trace file `{path}`: {e}");
                    std::process::exit(2);
                }
            }
        };
        obs::set_sink(std::sync::Arc::new(sink));
    }
    let fault_spec = args
        .iter()
        .find_map(|a| a.strip_prefix("--fault="))
        .unwrap_or(DEFAULT_FAULT_SPEC)
        .to_string();
    if let Err(e) = nl2vis_llm::FaultInjector::parse(&fault_spec) {
        eprintln!("invalid --fault spec: {e}");
        std::process::exit(2);
    }
    let retries: u32 = match args.iter().find_map(|a| a.strip_prefix("--retries=")) {
        None => 4,
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("invalid --retries value `{v}`: expected an integer >= 1");
                std::process::exit(2);
            }
        },
    };
    let cache_capacity: usize = match args.iter().find_map(|a| a.strip_prefix("--cache=")) {
        None => 4096,
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("invalid --cache value `{v}`: expected an integer >= 1");
                std::process::exit(2);
            }
        },
    };
    let overload: Option<usize> = match args.iter().find_map(|a| a.strip_prefix("--overload=")) {
        None => None,
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("invalid --overload value `{v}`: expected an integer >= 1");
                std::process::exit(2);
            }
        },
    };
    let mut requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if requested.is_empty() || requested.contains(&"all") {
        requested = ALL.to_vec();
    }
    for r in &requested {
        if !ALL.contains(r) {
            eprintln!("unknown experiment `{r}`; available: all {}", ALL.join(" "));
            std::process::exit(2);
        }
    }

    eprintln!(
        "building corpus ({}) ...",
        if fast { "fast profile" } else { "full profile" }
    );
    let corpus_span = obs::span!("bench.corpus_build");
    let ctx = if fast {
        ExperimentContext::fast()
    } else {
        ExperimentContext::full()
    };
    eprintln!(
        "corpus ready: {} databases, {} examples ({:.1}s)\n",
        ctx.corpus.catalog.len(),
        ctx.corpus.examples.len(),
        corpus_span.elapsed().as_secs_f64()
    );
    drop(corpus_span);

    let mut fig9_done = false;
    let mut bench_load_doc: Option<nl2vis_data::Json> = None;
    let mut bench_serving_doc: Option<nl2vis_data::Json> = None;
    for name in requested {
        let span = obs::span!(format!("bench.{name}"));
        let text = match name {
            "table2" => experiments::table2(&ctx).1,
            "fig6" => experiments::fig6(&ctx).1,
            "table3" => experiments::table3(&ctx).1,
            "table4" => experiments::table4(&ctx).1,
            "fig7" => experiments::fig7(&ctx).1,
            "fig8" => experiments::fig8(&ctx).1,
            "fig9" | "fig10" => {
                if fig9_done {
                    continue;
                }
                fig9_done = true;
                experiments::fig9_fig10(&ctx).1
            }
            "fig11" => experiments::fig11(&ctx).1,
            "fig13" => experiments::fig13(&ctx).1,
            "ablations" => experiments::ablations(&ctx),
            "ext_vega" => experiments::ext_vega(&ctx).1,
            "hardness" => experiments::hardness(&ctx).1,
            "transport" => experiments::transport(&ctx, &fault_spec, retries).1,
            "traces" => experiments::traces(&ctx).1,
            "serving" => {
                let (summary, mut text) = experiments::serving(&ctx, cache_capacity);
                let overload_summary = overload.map(|threads| {
                    let (o, overload_text) = experiments::serving_overload(&ctx, threads);
                    text.push('\n');
                    text.push_str(&overload_text);
                    o
                });
                merge_bench_serving(
                    &mut bench_serving_doc,
                    serving_json(&summary, overload_summary.as_ref(), cache_capacity, fast),
                );
                text
            }
            "routing" => {
                let (rows, text) = experiments::routing(&ctx);
                merge_bench_serving(&mut bench_serving_doc, routing_json(&rows));
                text
            }
            "load" => {
                let (doc, text) = experiments::load(fast);
                if !matches!(doc, nl2vis_data::Json::Null) {
                    merge_bench_load(&mut bench_load_doc, doc);
                }
                text
            }
            "topology" => {
                let (doc, text) = experiments::topology(fast);
                if !matches!(doc, nl2vis_data::Json::Null) {
                    merge_bench_load(&mut bench_load_doc, doc);
                }
                text
            }
            _ => unreachable!("validated above"),
        };
        println!("{text}");
        eprintln!("[{name} took {:.1}s]\n", span.elapsed().as_secs_f64());
    }
    if let Some(doc) = bench_load_doc {
        if let Err(e) = std::fs::write("BENCH_load.json", doc.to_pretty()) {
            eprintln!("cannot write BENCH_load.json: {e}");
        }
    }
    if let Some(doc) = bench_serving_doc {
        if let Err(e) = std::fs::write("BENCH_serving.json", doc.to_pretty()) {
            eprintln!("cannot write BENCH_serving.json: {e}");
        }
    }

    // Everything above recorded into the global registry — the bench.*
    // spans, the eval runner's per-example latencies and worker stats, and
    // any pipeline/llm counters. Close the run with the summary table.
    println!("{}", obs::report::render_summary(obs::global()));
    obs::sink::sink().flush();
}
