//! One function per table/figure of the paper's evaluation section.

use crate::render::{acc, pct, table};
use crate::ExperimentContext;
use nl2vis_baselines::{
    Chat2Vis, NcNet, Nl2VisModel, RgVisNet, Seq2Vis, T5Model, T5Size, TransformerModel,
};
use nl2vis_corpus::{Hardness, Split};
use nl2vis_eval::optimize::{run_strategy, Strategy};
use nl2vis_eval::runner::{evaluate_llm, evaluate_model, EvalReport, LlmEvalConfig, Selection};
use nl2vis_eval::userstudy::{run_study, StudyConfig, UserKind};
use nl2vis_eval::FailureTaxonomy;
use nl2vis_llm::{ModelProfile, SimLlm};
use nl2vis_obs as obs;
use nl2vis_prompt::PromptFormat;

/// Accuracy pair (exact, exec).
pub type Pair = (f64, f64);

/// Join/non-join/overall accuracy pairs for one domain setting.
#[derive(Debug, Clone, Copy)]
pub struct DomainScores {
    /// Non-join scenario (exact, exec).
    pub non_join: Pair,
    /// Join scenario (exact, exec).
    pub join: Pair,
    /// Overall (exact, exec).
    pub overall: Pair,
}

fn scores(report: &EvalReport) -> DomainScores {
    DomainScores {
        non_join: (report.non_join().exact(), report.non_join().exec()),
        join: (report.join().exact(), report.join().exec()),
        overall: (report.overall().exact(), report.overall().exec()),
    }
}

fn davinci003(ctx: &ExperimentContext) -> SimLlm {
    SimLlm::new(ModelProfile::davinci_003(), ctx.seed ^ 0xD3)
}

/// **Table 2**: prompt-format comparison for `text-davinci-003`, 1-shot,
/// under cross-domain and in-domain settings, split by join scenario.
pub fn table2(
    ctx: &ExperimentContext,
) -> (Vec<(PromptFormat, DomainScores, DomainScores)>, String) {
    let llm = davinci003(ctx);
    let mut rows_struct = Vec::new();
    let mut rows = Vec::new();
    for format in PromptFormat::table2_rows() {
        let config = LlmEvalConfig {
            format,
            shots: 1,
            ..Default::default()
        };
        let cross = scores(&evaluate_llm(
            &llm,
            &ctx.corpus,
            &ctx.cross_split.train,
            &ctx.cross_split.test,
            &config,
            ctx.limit,
        ));
        let ind = scores(&evaluate_llm(
            &llm,
            &ctx.corpus,
            &ctx.in_split.train,
            &ctx.in_split.test,
            &config,
            ctx.limit,
        ));
        rows.push(vec![
            format.name().to_string(),
            acc(cross.non_join.0),
            acc(cross.non_join.1),
            acc(cross.join.0),
            acc(cross.join.1),
            acc(cross.overall.0),
            acc(cross.overall.1),
            acc(ind.non_join.0),
            acc(ind.non_join.1),
            acc(ind.join.0),
            acc(ind.join.1),
            acc(ind.overall.0),
            acc(ind.overall.1),
        ]);
        rows_struct.push((format, cross, ind));
    }
    let text = format!(
        "Table 2: text-davinci-003, 1-shot, by table serialization strategy\n{}",
        table(
            &[
                "format",
                "x-nj-Exa",
                "x-nj-Exe",
                "x-j-Exa",
                "x-j-Exe",
                "x-all-Exa",
                "x-all-Exe",
                "i-nj-Exa",
                "i-nj-Exe",
                "i-j-Exa",
                "i-j-Exe",
                "i-all-Exa",
                "i-all-Exe",
            ],
            &rows,
        )
    );
    (rows_struct, text)
}

/// The six prompt variants of Figure 6.
pub fn fig6_variants() -> [PromptFormat; 6] {
    [
        PromptFormat::ColumnList,
        PromptFormat::ColumnListFk,
        PromptFormat::ColumnListFkValue,
        PromptFormat::Table2Sql,
        PromptFormat::Table2Sql, // +RS baseline == Table2SQL (DDL carries FKs)
        PromptFormat::Table2SqlSelect,
    ]
}

/// **Figure 6**: table-content ablation (schema / +relationship / +content)
/// across demonstration counts, both domain settings.
pub fn fig6(ctx: &ExperimentContext) -> (Vec<(String, usize, bool, Pair)>, String) {
    let llm = davinci003(ctx);
    let shots = [1usize, 3, 5, 7, 15];
    let variants: [(&str, PromptFormat); 5] = [
        ("Column=[]", PromptFormat::ColumnList),
        ("Column=[]+FK", PromptFormat::ColumnListFk),
        ("Column=[]+FK+Value", PromptFormat::ColumnListFkValue),
        ("Table2SQL", PromptFormat::Table2Sql),
        ("Table2SQL+Select", PromptFormat::Table2SqlSelect),
    ];
    let mut results = Vec::new();
    let mut rows = Vec::new();
    for (name, format) in variants {
        for cross in [true, false] {
            let split: &Split = if cross {
                &ctx.cross_split
            } else {
                &ctx.in_split
            };
            let mut cells = vec![
                name.to_string(),
                if cross { "cross" } else { "in" }.to_string(),
            ];
            for k in shots {
                let config = LlmEvalConfig {
                    format,
                    shots: k,
                    ..Default::default()
                };
                let report = evaluate_llm(
                    &llm,
                    &ctx.corpus,
                    &split.train,
                    &split.test,
                    &config,
                    ctx.limit,
                );
                let pair = (report.overall().exact(), report.overall().exec());
                results.push((name.to_string(), k, cross, pair));
                cells.push(format!("{}/{}", acc(pair.0), acc(pair.1)));
            }
            rows.push(cells);
        }
    }
    let text = format!(
        "Figure 6: Exact/Execution accuracy vs demonstrations (text-davinci-003)\n{}",
        table(
            &["variant", "setting", "k=1", "k=3", "k=5", "k=7", "k=15"],
            &rows
        )
    );
    (results, text)
}

/// **Table 3**: every model against both domain settings.
pub fn table3(ctx: &ExperimentContext) -> (Vec<(String, Pair, Pair)>, String) {
    let mut results: Vec<(String, Pair, Pair)> = Vec::new();

    // Trained baselines + fine-tuned models: train per split.
    let run_trained = |make: &dyn Fn(&[usize]) -> Box<dyn Nl2VisModel + Sync>,
                       results: &mut Vec<(String, Pair, Pair)>| {
        let cross_model = make(&ctx.cross_split.train);
        let cross = evaluate_model(
            cross_model.as_ref(),
            &ctx.corpus,
            &ctx.cross_split.test,
            ctx.limit,
        );
        let in_model = make(&ctx.in_split.train);
        let ind = evaluate_model(
            in_model.as_ref(),
            &ctx.corpus,
            &ctx.in_split.test,
            ctx.limit,
        );
        results.push((
            cross_model.name().to_string(),
            (cross.overall().exact(), cross.overall().exec()),
            (ind.overall().exact(), ind.overall().exec()),
        ));
    };

    run_trained(
        &|ids| Box::new(Seq2Vis::train(&ctx.corpus, ids)),
        &mut results,
    );
    run_trained(
        &|ids| Box::new(TransformerModel::train(&ctx.corpus, ids)),
        &mut results,
    );
    run_trained(
        &|ids| Box::new(NcNet::train(&ctx.corpus, ids)),
        &mut results,
    );
    run_trained(
        &|ids| Box::new(RgVisNet::train(&ctx.corpus, ids)),
        &mut results,
    );

    // Chat2Vis is zero-shot (no training split involved).
    {
        let m = Chat2Vis::new(ctx.seed ^ 0xC2);
        let cross = evaluate_model(&m, &ctx.corpus, &ctx.cross_split.test, ctx.limit);
        let ind = evaluate_model(&m, &ctx.corpus, &ctx.in_split.test, ctx.limit);
        results.push((
            m.name().to_string(),
            (cross.overall().exact(), cross.overall().exec()),
            (ind.overall().exact(), ind.overall().exec()),
        ));
    }

    run_trained(
        &|ids| {
            Box::new(T5Model::train(
                &ctx.corpus,
                ids,
                T5Size::Small,
                ctx.seed ^ 0x75,
            ))
        },
        &mut results,
    );
    run_trained(
        &|ids| {
            Box::new(T5Model::train(
                &ctx.corpus,
                ids,
                T5Size::Base,
                ctx.seed ^ 0x76,
            ))
        },
        &mut results,
    );

    // Inference-only LLMs: 20-shot Table2SQL, token budget = model window.
    for profile in ModelProfile::all_inference() {
        let llm = SimLlm::new(profile.clone(), ctx.seed ^ 0x11);
        let config = LlmEvalConfig {
            shots: 20,
            token_budget: profile.context_tokens,
            ..Default::default()
        };
        let cross = evaluate_llm(
            &llm,
            &ctx.corpus,
            &ctx.cross_split.train,
            &ctx.cross_split.test,
            &config,
            ctx.limit,
        );
        let ind = evaluate_llm(
            &llm,
            &ctx.corpus,
            &ctx.in_split.train,
            &ctx.in_split.test,
            &config,
            ctx.limit,
        );
        results.push((
            profile.name.to_string(),
            (cross.overall().exact(), cross.overall().exec()),
            (ind.overall().exact(), ind.overall().exec()),
        ));
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, cross, ind)| {
            vec![
                name.clone(),
                acc(cross.0),
                acc(cross.1),
                acc(ind.0),
                acc(ind.1),
            ]
        })
        .collect();
    let text = format!(
        "Table 3: LLMs vs baselines (20-shot Table2SQL for inference-only)\n{}",
        table(
            &["model", "cross-Exa", "cross-Exe", "in-Exa", "in-Exe"],
            &rows
        )
    );
    (results, text)
}

/// **Table 4**: parameter counts, cost time and model sizes; the wall-clock
/// column is measured locally over a fixed completion batch and reported
/// alongside the paper's original figures.
pub fn table4(ctx: &ExperimentContext) -> (Vec<Vec<String>>, String) {
    // Measure local completions/second for one profile as a grounding point.
    let llm = davinci003(ctx);
    let config = LlmEvalConfig {
        shots: 5,
        ..Default::default()
    };
    let n = 30.min(ctx.cross_split.test.len());
    let probe = nl2vis_obs::span!("bench.table4_probe");
    let _ = evaluate_llm(
        &llm,
        &ctx.corpus,
        &ctx.cross_split.train,
        &ctx.cross_split.test,
        &config,
        Some(n),
    );
    let elapsed = probe.elapsed().as_secs_f64();
    drop(probe);
    let per_query_ms = elapsed / n.max(1) as f64 * 1000.0;

    let mut rows = vec![
        vec![
            "T5-Small".into(),
            "60M".into(),
            "3 days (fine-tune)".into(),
            "200MB".into(),
        ],
        vec![
            "T5-Base".into(),
            "220M".into(),
            "5 days (fine-tune)".into(),
            "500MB".into(),
        ],
    ];
    for p in ModelProfile::all_inference() {
        rows.push(vec![
            p.name.to_string(),
            p.params.to_string(),
            format!(
                "{:.0} ms/query (simulated: {:.1} ms)",
                p.ms_per_token * 60.0,
                per_query_ms
            ),
            p.model_size.to_string(),
        ]);
    }
    let text = format!(
        "Table 4: model statistics (cost of inference-only models measured locally)\n{}",
        table(&["model", "parameters", "cost time", "model size"], &rows)
    );
    (rows, text)
}

/// **Figure 7**: accuracy vs number of demonstrations for the inference-only
/// models, with the fine-tuned models as horizontal reference lines.
pub fn fig7(ctx: &ExperimentContext) -> (Vec<(String, usize, Pair)>, String) {
    let shots = [0usize, 1, 3, 5, 7, 10, 13, 15, 20];
    let mut results = Vec::new();
    let mut rows = Vec::new();
    for profile in ModelProfile::all_inference() {
        let llm = SimLlm::new(profile.clone(), ctx.seed ^ 0x77);
        let mut cells = vec![profile.name.to_string()];
        for k in shots {
            let config = LlmEvalConfig {
                shots: k,
                token_budget: profile.context_tokens,
                ..Default::default()
            };
            let report = evaluate_llm(
                &llm,
                &ctx.corpus,
                &ctx.cross_split.train,
                &ctx.cross_split.test,
                &config,
                ctx.limit,
            );
            let pair = (report.overall().exact(), report.overall().exec());
            results.push((profile.name.to_string(), k, pair));
            cells.push(format!("{}/{}", acc(pair.0), acc(pair.1)));
        }
        rows.push(cells);
    }
    // Fine-tuned reference lines.
    for size in [T5Size::Small, T5Size::Base] {
        let m = T5Model::train(&ctx.corpus, &ctx.cross_split.train, size, ctx.seed ^ 0x75);
        let report = evaluate_model(&m, &ctx.corpus, &ctx.cross_split.test, ctx.limit);
        let pair = (report.overall().exact(), report.overall().exec());
        results.push((m.name().to_string(), usize::MAX, pair));
        let mut cells = vec![format!("{} (fine-tuned)", m.name())];
        cells.extend(std::iter::repeat_n(
            format!("{}/{}", acc(pair.0), acc(pair.1)),
            shots.len(),
        ));
        rows.push(cells);
    }
    let header: Vec<String> = std::iter::once("model".to_string())
        .chain(shots.iter().map(|k| format!("k={k}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let text = format!(
        "Figure 7: Exact/Execution accuracy vs support examples (cross-domain, Table2SQL)\n{}",
        table(&header_refs, &rows)
    );
    (results, text)
}

/// **Figure 8**: demonstration diversity — `A` databases × `B` examples per
/// database, average execution accuracy, cross-domain.
pub fn fig8(ctx: &ExperimentContext) -> (Vec<(usize, usize, f64)>, String) {
    let llm = davinci003(ctx);
    let mut results = Vec::new();
    let mut rows = Vec::new();
    for dbs in 1..=4usize {
        let mut cells = vec![format!("{dbs} DB(s)")];
        for per_db in 1..=4usize {
            let config = LlmEvalConfig {
                shots: dbs * per_db,
                selection: Selection::Grouped { dbs, per_db },
                ..Default::default()
            };
            let report = evaluate_llm(
                &llm,
                &ctx.corpus,
                &ctx.cross_split.train,
                &ctx.cross_split.test,
                &config,
                ctx.limit,
            );
            let exec = report.overall().exec();
            results.push((dbs, per_db, exec));
            cells.push(acc(exec));
        }
        rows.push(cells);
    }
    let text = format!(
        "Figure 8: Execution accuracy by demonstration composition (A databases x B examples/DB)\n{}",
        table(&["A \\ B", "1 exp/DB", "2 exp/DB", "3 exp/DB", "4 exp/DB"], &rows)
    );
    (results, text)
}

/// **Figures 9 & 10**: the simulated user study — time composition and
/// success rates by difficulty.
pub fn fig9_fig10(ctx: &ExperimentContext) -> (nl2vis_eval::StudyReport, String) {
    // Two independent study sessions (the paper's protocol run twice) are
    // pooled: 60 targets per user group is small enough that a single draw
    // is noisy.
    let mut report = nl2vis_eval::StudyReport::default();
    for salt in [0x95u64, 0x96] {
        let config = StudyConfig {
            seed: ctx.seed ^ salt,
            ..Default::default()
        };
        report
            .sessions
            .extend(run_study(&ctx.corpus, &ctx.in_split.train, &config).sessions);
    }

    let mut time_rows = Vec::new();
    for user in [UserKind::Expert, UserKind::NonExpert] {
        time_rows.push(vec![
            user.label().to_string(),
            format!("{:.0}s", report.mean_seconds(user, |s| s.compose_seconds)),
            format!("{:.0}s", report.mean_seconds(user, |s| s.revise_seconds)),
            format!("{:.1}s", report.mean_seconds(user, |s| s.prompt_seconds)),
            format!("{:.1}s", report.mean_seconds(user, |s| s.generate_seconds)),
        ]);
    }
    let mut rate_rows = Vec::new();
    for user in [UserKind::Expert, UserKind::NonExpert] {
        let mut cells = vec![user.label().to_string()];
        for h in Hardness::all() {
            cells.push(pct(report.success_rate(user, h)));
        }
        rate_rows.push(cells);
    }
    let text =
        format!
        ("Figure 9: average user time composition\n{}\nFigure 10: success rates by difficulty\n{}",
        table(&["user", "compose", "revise", "prompt-gen", "vql-gen"], &time_rows),
        table(&["user", "easy", "medium", "hard", "extra hard"], &rate_rows)
    );
    (report, text)
}

/// The base run whose failures feed Figures 11 and 13: text-davinci-003,
/// 20-shot, Table2SQL, cross-domain.
pub fn base_failure_run(ctx: &ExperimentContext) -> (EvalReport, LlmEvalConfig) {
    let llm = davinci003(ctx);
    let config = LlmEvalConfig {
        shots: 20,
        ..Default::default()
    };
    let report = evaluate_llm(
        &llm,
        &ctx.corpus,
        &ctx.cross_split.train,
        &ctx.cross_split.test,
        &config,
        ctx.limit,
    );
    (report, config)
}

/// **Figure 11**: failure taxonomy of the base run, with the per-component
/// accuracy breakdown (the paper's third metric).
pub fn fig11(ctx: &ExperimentContext) -> (FailureTaxonomy, String) {
    let (report, _) = base_failure_run(ctx);
    let taxonomy = FailureTaxonomy::from_report(&report);
    let comp_rows: Vec<Vec<String>> = report
        .component_accuracy()
        .into_iter()
        .map(|(c, a)| vec![c.to_string(), c.bucket().to_string(), acc(a)])
        .collect();
    let text = format!(
        "Figure 11: failure statistics (text-davinci-003, 20-shot, Table2SQL, cross-domain)\n\
         evaluated: {}  accuracy: exact {} exec {}\n{}\nComponent accuracy:\n{}",
        report.overall().n(),
        acc(report.overall().exact()),
        acc(report.overall().exec()),
        taxonomy.to_text(),
        table(&["component", "bucket", "accuracy"], &comp_rows)
    );
    (taxonomy, text)
}

/// **Figure 13**: iterative-updating strategies over the failed set, with
/// the per-chart-type breakdown.
pub fn fig13(ctx: &ExperimentContext) -> (Vec<(Strategy, f64)>, String) {
    let (report, config) = base_failure_run(ctx);
    let failed = report.failed_ids();
    let mut results = Vec::new();
    let mut rows = Vec::new();
    for strategy in Strategy::all() {
        let r = run_strategy(
            strategy,
            &ctx.corpus,
            &ctx.cross_split.train,
            &failed,
            &config,
            ctx.seed ^ 0x13,
        );
        results.push((strategy, r.exec_rate()));
        let charts: Vec<String> = r
            .by_chart
            .iter()
            .map(|(c, a, n)| format!("{c}:{n}/{a}"))
            .collect();
        rows.push(vec![
            strategy.name().to_string(),
            strategy.model().name.to_string(),
            format!("{}", r.attempted),
            format!("{}", r.rescued_exec),
            pct(r.exec_rate()),
            charts.join(" "),
        ]);
    }
    let text = format!(
        "Figure 13: execution accuracy of optimization strategies over the failed set ({} cases)\n{}",
        failed.len(),
        table(&["strategy", "model", "failed", "rescued", "exec-rate", "by chart type"], &rows)
    );
    (results, text)
}

/// **Ablations** (DESIGN.md §6): mechanism knock-outs that show where the
/// reproduction's accuracy comes from.
pub fn ablations(ctx: &ExperimentContext) -> String {
    let mut out = String::new();

    // (1) Demonstration selection policy: similarity vs same-DB vs random-ish
    //     (random approximated by similarity over an unrelated probe is not
    //     meaningful; we compare the three selectors the system implements).
    {
        let llm = davinci003(ctx);
        let mut rows = Vec::new();
        for (label, selection) in [
            ("similarity", Selection::Similarity),
            ("same-database", Selection::SameDatabase),
            ("grouped 4x1", Selection::Grouped { dbs: 4, per_db: 1 }),
        ] {
            let config = LlmEvalConfig {
                shots: 4,
                selection,
                ..Default::default()
            };
            let r = evaluate_llm(
                &llm,
                &ctx.corpus,
                &ctx.cross_split.train,
                &ctx.cross_split.test,
                &config,
                ctx.limit,
            );
            rows.push(vec![
                label.to_string(),
                acc(r.overall().exact()),
                acc(r.overall().exec()),
            ]);
        }
        out.push_str(&format!(
            "Ablation 1: demonstration selection (davinci-003, 4-shot, cross-domain)\n{}\n",
            table(&["selector", "Exa", "Exe"], &rows)
        ));
    }

    // (2) The learned lexicon: T5-Base with vs without fine-tuning's
    //     phrase↔column statistics, in-domain and cross-domain. The
    //     knockout trains on an empty split (nothing to learn from), so it
    //     also removes the memorization head — the cross-domain rows isolate
    //     the lexicon because memorization never fires there; the in-domain
    //     rows show fine-tuning's full contribution.
    {
        let mk = |ids: &[usize]| T5Model::train(&ctx.corpus, ids, T5Size::Base, ctx.seed);
        let with_cross = mk(&ctx.cross_split.train);
        let learned = with_cross.lexicon().learned_entries(1);
        let mut rows = Vec::new();
        for (label, model, test) in [
            (
                "fine-tuned, cross-domain",
                mk(&ctx.cross_split.train),
                &ctx.cross_split.test,
            ),
            ("knocked out, cross-domain", mk(&[]), &ctx.cross_split.test),
            (
                "fine-tuned, in-domain",
                mk(&ctx.in_split.train),
                &ctx.in_split.test,
            ),
            ("knocked out, in-domain", mk(&[]), &ctx.in_split.test),
        ] {
            let r = evaluate_model(&model, &ctx.corpus, test, ctx.limit);
            rows.push(vec![
                label.to_string(),
                acc(r.overall().exact()),
                acc(r.overall().exec()),
            ]);
        }
        out.push_str(&format!(
            "Ablation 2: T5-Base fine-tuning ({} lexicon entries learned). Cross-domain rows\n             isolate the learned lexicon; the delta is small because domain-specific alias\n             pairs never occur in other domains' training data — cross-domain synonym power\n             comes from pretraining instead.\n{}\n",
            learned,
            table(&["variant", "Exa", "Exe"], &rows)
        ));
    }

    // (3) Oracle-schema upper bound: grounding with full schema fidelity and
    //     complete synonym knowledge, no sampling noise — how much of the
    //     remaining error is irreducible ambiguity.
    {
        use nl2vis_eval::metrics::{score_query, Accuracy};
        use nl2vis_llm::recover::RecoveredSchema;
        use nl2vis_llm::understand::{ground, parse_question};
        let know_all = |_: &str| true;
        let mut acc_ub = Accuracy::default();
        for id in ctx
            .cross_split
            .test
            .iter()
            .take(ctx.limit.unwrap_or(usize::MAX))
        {
            let Some(e) = ctx.corpus.example(*id) else {
                continue;
            };
            let db = ctx.corpus.catalog.database(&e.db).expect("db");
            let schema = RecoveredSchema::from_database(db);
            let intent = parse_question(&e.nl);
            if let Some(g) = ground(&intent, &schema, &know_all) {
                acc_ub.record(&score_query(&g.query, &e.vql, db));
            } else {
                acc_ub.record(&nl2vis_eval::metrics::score_completion("", &e.vql, db));
            }
        }
        out.push_str(&format!(
            "Ablation 3: oracle-schema grounding upper bound (cross-domain test)\n{}\n",
            table(
                &["variant", "Exa", "Exe"],
                &[vec![
                    "oracle schema + full lexicon, no sampling".to_string(),
                    acc(acc_ub.exact()),
                    acc(acc_ub.exec()),
                ]],
            )
        ));
    }

    // (4) The demonstration-echo mechanism: in-domain accuracy with the
    //     copy path disabled.
    {
        let mut muted = ModelProfile::davinci_003();
        muted.demo_copy = 0.0;
        let copy_on = SimLlm::new(ModelProfile::davinci_003(), ctx.seed ^ 0x11);
        let copy_off = SimLlm::new(muted, ctx.seed ^ 0x11);
        let config = LlmEvalConfig {
            shots: 20,
            ..Default::default()
        };
        let r_on = evaluate_llm(
            &copy_on,
            &ctx.corpus,
            &ctx.in_split.train,
            &ctx.in_split.test,
            &config,
            ctx.limit,
        );
        let r_off = evaluate_llm(
            &copy_off,
            &ctx.corpus,
            &ctx.in_split.train,
            &ctx.in_split.test,
            &config,
            ctx.limit,
        );
        out.push_str(&format!(
            "Ablation 4: demonstration echo (davinci-003, 20-shot, in-domain)\n{}",
            table(
                &["variant", "Exa", "Exe"],
                &[
                    vec![
                        "echo enabled".to_string(),
                        acc(r_on.overall().exact()),
                        acc(r_on.overall().exec()),
                    ],
                    vec![
                        "echo disabled".to_string(),
                        acc(r_off.overall().exact()),
                        acc(r_off.overall().exec()),
                    ],
                ],
            )
        ));
    }

    out
}

/// **Extension (paper §6.2)**: direct Vega-Lite generation vs the VQL
/// intermediate. The paper argues the flat VQL form is the more robust
/// target; this experiment quantifies it: the same model, demonstrations and
/// questions, with the prompt requesting either VQL text or Vega-Lite JSON.
/// Vega-Lite loses on three mechanistic counts: long hierarchical JSON
/// malforms more often, joins and nested subqueries have no Vega-Lite
/// counterpart, and demonstrations in JSON teach no reusable sketch.
pub fn ext_vega(ctx: &ExperimentContext) -> (Vec<(String, usize, Pair, f64)>, String) {
    use nl2vis_prompt::AnswerFormat;
    let llm = davinci003(ctx);
    let mut results = Vec::new();
    let mut rows = Vec::new();
    for (label, answer) in [
        ("VQL", AnswerFormat::Vql),
        ("Vega-Lite", AnswerFormat::VegaLite),
    ] {
        for shots in [1usize, 5, 20] {
            let config = LlmEvalConfig {
                answer,
                shots,
                ..Default::default()
            };
            let report = evaluate_llm(
                &llm,
                &ctx.corpus,
                &ctx.cross_split.train,
                &ctx.cross_split.test,
                &config,
                ctx.limit,
            );
            let malformed = report
                .results
                .iter()
                .filter(|r| r.outcome.parse_failed)
                .count() as f64
                / report.results.len().max(1) as f64;
            let pair = (report.overall().exact(), report.overall().exec());
            results.push((label.to_string(), shots, pair, malformed));
            rows.push(vec![
                label.to_string(),
                shots.to_string(),
                acc(pair.0),
                acc(pair.1),
                pct(malformed),
                acc(report.join().exec()),
            ]);
        }
    }
    let text = format!(
        "Extension (paper §6.2): output formalism — VQL intermediate vs direct Vega-Lite\n\
         (text-davinci-003, Table2SQL serialization, cross-domain)\n{}",
        table(
            &["output", "shots", "Exa", "Exe", "malformed", "join-Exe"],
            &rows
        )
    );
    (results, text)
}

/// **Hardness breakdown**: accuracy by nvBench difficulty level for the base
/// configuration — the lens behind the user study's difficulty axis and the
/// failure analysis.
pub fn hardness(ctx: &ExperimentContext) -> (Vec<(Hardness, Pair, usize)>, String) {
    let (report, _) = base_failure_run(ctx);
    let mut results = Vec::new();
    let mut rows = Vec::new();
    for h in Hardness::all() {
        let a = report.by_hardness(h);
        results.push((h, (a.exact(), a.exec()), a.n()));
        rows.push(vec![
            h.label().to_string(),
            a.n().to_string(),
            acc(a.exact()),
            acc(a.exec()),
        ]);
    }
    let text = format!(
        "Hardness breakdown (text-davinci-003, 20-shot, Table2SQL, cross-domain)\n{}",
        table(&["hardness", "n", "Exa", "Exe"], &rows)
    );
    (results, text)
}

/// Summary of one transport-resilience comparison (see [`transport`]).
#[derive(Debug, Clone, Copy)]
pub struct TransportResilience {
    /// (exact, exec) over the fault-free HTTP run.
    pub clean: Pair,
    /// (exact, exec) over the fault-injected HTTP run.
    pub faulty: Pair,
    /// Examples scored in the clean run.
    pub clean_n: usize,
    /// Examples scored in the faulty run (excludes transport failures).
    pub faulty_n: usize,
    /// Examples lost to transport in the faulty run.
    pub transport_failures: usize,
    /// Retries the resilient client issued during the faulty run.
    pub retries: u64,
    /// Faults the server injected during the faulty run.
    pub faults_injected: u64,
}

/// **Transport resilience**: the same model, split and prompts, served
/// twice over HTTP — once cleanly, once through a fault-injecting server
/// (drops, 500s, stalls) with a retrying client. When retries recover every
/// transient fault, both runs must report *identical* accuracy: Execution
/// Accuracy is a property of the model, not of the wire. Residual faults
/// (beyond the retry budget) land in the `error.transport` bucket, never in
/// the model-failure counts.
pub fn transport(
    ctx: &ExperimentContext,
    fault_spec: &str,
    retries: u32,
) -> (TransportResilience, String) {
    use nl2vis_llm::http::{CompletionServer, HttpLlmClient, Timeouts};
    use nl2vis_llm::{FaultInjector, ResilientLlmClient, RetryPolicy};
    use nl2vis_obs::MetricsRegistry;
    use std::sync::Arc;
    use std::time::Duration;

    let llm = davinci003(ctx);
    let config = LlmEvalConfig::default();
    // Deadlines tight enough that an injected stall (default 1500 ms) trips
    // the read deadline and converts into a retried timeout.
    let timeouts = Timeouts {
        connect: Duration::from_secs(2),
        read: Duration::from_secs(1),
        write: Duration::from_secs(1),
    };
    let policy = RetryPolicy {
        jitter_seed: ctx.seed,
        ..RetryPolicy::attempts(retries)
    };

    let run = |faults: FaultInjector| {
        let registry = Arc::new(MetricsRegistry::new());
        let server = CompletionServer::start_with_faults(llm.clone(), registry, faults)
            .expect("server starts");
        let client = ResilientLlmClient::new(
            HttpLlmClient::with_timeouts(server.address(), llm.profile.name, timeouts),
            policy,
        );
        let report = evaluate_llm(
            &client,
            &ctx.corpus,
            &ctx.cross_split.train,
            &ctx.cross_split.test,
            &config,
            ctx.limit,
        );
        let injected = server.faults().injected();
        (report, injected)
    };

    let retries_counter = nl2vis_obs::global().counter("llm.retries_total");
    let (clean_report, _) = run(FaultInjector::none());
    let retries_before = retries_counter.get();
    let faults = FaultInjector::parse(fault_spec).expect("fault spec validated by caller");
    let (faulty_report, faults_injected) = run(faults);
    let retries_used = retries_counter.get() - retries_before;

    let summary = TransportResilience {
        clean: (
            clean_report.overall().exact(),
            clean_report.overall().exec(),
        ),
        faulty: (
            faulty_report.overall().exact(),
            faulty_report.overall().exec(),
        ),
        clean_n: clean_report.overall().n(),
        faulty_n: faulty_report.overall().n(),
        transport_failures: faulty_report.transport_failures(),
        retries: retries_used,
        faults_injected,
    };
    let text = format!(
        "Transport resilience (text-davinci-003 over HTTP, cross-domain, fault spec `{fault_spec}`, {retries} attempts)\n{}\
         retries issued: {}   faults injected: {}\n\
         transport failures are excluded from accuracy and counted under error.transport\n",
        table(
            &["run", "Exa", "Exe", "scored", "transport-failed"],
            &[
                vec![
                    "clean".to_string(),
                    acc(summary.clean.0),
                    acc(summary.clean.1),
                    summary.clean_n.to_string(),
                    "0".to_string(),
                ],
                vec![
                    "faulty+retry".to_string(),
                    acc(summary.faulty.0),
                    acc(summary.faulty.1),
                    summary.faulty_n.to_string(),
                    summary.transport_failures.to_string(),
                ],
            ],
        ),
        summary.retries,
        summary.faults_injected,
    );
    (summary, text)
}

/// Summary of the serving-path caching comparison (see [`serving`]).
#[derive(Debug, Clone, Copy)]
pub struct ServingSummary {
    /// Wall-clock of the cold (cache-empty) eval run, in milliseconds.
    pub cold_wall_ms: f64,
    /// Wall-clock of the warm (repeat) eval run, in milliseconds.
    pub warm_wall_ms: f64,
    /// TCP connections the server accepted during the cold run.
    pub cold_connections: u64,
    /// TCP connections the server accepted during the warm run.
    pub warm_connections: u64,
    /// Cache hit rate of the warm run alone.
    pub warm_hit_rate: f64,
    /// Cache hits during the cold run (should be ~0 on distinct prompts).
    pub cold_hits: u64,
    /// Cache misses during the cold run (every first-seen prompt).
    pub cold_misses: u64,
    /// Cache hits during the warm run alone.
    pub warm_hits: u64,
    /// Cache misses during the warm run alone (should be ~0).
    pub warm_misses: u64,
    /// (exact, exec) of the cold run.
    pub cold: Pair,
    /// (exact, exec) of the warm run.
    pub warm: Pair,
    /// Examples scored per run.
    pub n: usize,
    /// Did both runs score identically (they must — a hit replays the
    /// exact completion)?
    pub identical: bool,
}

/// **Serving-path caching**: one eval run served over HTTP twice through a
/// shared completion cache. The cold run misses everything and pays the
/// (injected) upstream latency per request; the warm run replays the same
/// prompts and must serve from memory — same accuracy, ≥90% hits, fewer
/// TCP connections, and a fraction of the wall-clock. Every request pays a
/// deterministic injected stall standing in for real model inference, so
/// the cold/warm gap is reproducible rather than noise.
pub fn serving(ctx: &ExperimentContext, cache_capacity: usize) -> (ServingSummary, String) {
    use nl2vis_cache::{CachedLlmClient, CompletionCache};
    use nl2vis_llm::http::{CompletionServer, HttpLlmClient};
    use nl2vis_llm::FaultInjector;
    use nl2vis_obs::MetricsRegistry;
    use std::sync::Arc;

    let llm = davinci003(ctx);
    let config = LlmEvalConfig::default();
    let registry = Arc::new(MetricsRegistry::new());
    let server = CompletionServer::start_with_faults(
        llm.clone(),
        Arc::clone(&registry),
        FaultInjector::parse("stall=1.0,stall_ms=3,seed=1").expect("static spec"),
    )
    .expect("server starts");
    let cache = Arc::new(CompletionCache::in_memory(cache_capacity));
    let client = CachedLlmClient::with_cache(
        HttpLlmClient::new(server.address(), llm.profile.name),
        Arc::clone(&cache),
    );

    let run = || {
        let started = std::time::Instant::now();
        let report = evaluate_llm(
            &client,
            &ctx.corpus,
            &ctx.cross_split.train,
            &ctx.cross_split.test,
            &config,
            ctx.limit,
        );
        (report, started.elapsed())
    };

    let (cold_report, cold_wall) = run();
    let cold_connections = registry.counter("server.connections_total").get();
    let cold_stats = cache.stats();
    let (warm_report, warm_wall) = run();
    let warm_connections = registry.counter("server.connections_total").get() - cold_connections;
    let stats = cache.stats();

    // Per-phase counters from the between-runs snapshot: summing cold and
    // warm would report `hits == misses` next to a 100% warm hit rate —
    // the cold run's misses and the warm run's hits are different phases
    // of the experiment and must not be conflated.
    let warm_hits = stats.hits - cold_stats.hits;
    let warm_misses = stats.misses - cold_stats.misses;
    let warm_lookups = warm_hits + warm_misses;
    let summary = ServingSummary {
        cold_wall_ms: cold_wall.as_secs_f64() * 1e3,
        warm_wall_ms: warm_wall.as_secs_f64() * 1e3,
        cold_connections,
        warm_connections,
        warm_hit_rate: if warm_lookups == 0 {
            0.0
        } else {
            warm_hits as f64 / warm_lookups as f64
        },
        cold_hits: cold_stats.hits,
        cold_misses: cold_stats.misses,
        warm_hits,
        warm_misses,
        cold: (cold_report.overall().exact(), cold_report.overall().exec()),
        warm: (warm_report.overall().exact(), warm_report.overall().exec()),
        n: cold_report.overall().n(),
        identical: cold_report
            .results
            .iter()
            .map(|x| (x.id, x.outcome.exact, x.outcome.exec))
            .eq(warm_report
                .results
                .iter()
                .map(|x| (x.id, x.outcome.exact, x.outcome.exec))),
    };
    let text = format!(
        "Serving-path caching (text-davinci-003 over HTTP, cross-domain, {} examples, cache capacity {cache_capacity}, 3 ms injected upstream latency)\n{}\
         warm hit rate: {}   scores identical across runs: {}\n\
         single-flight waits: {}   evictions: {}\n",
        summary.n,
        table(
            &["run", "Exa", "Exe", "wall-ms", "tcp-conns", "hits", "misses"],
            &[
                vec![
                    "cold".to_string(),
                    acc(summary.cold.0),
                    acc(summary.cold.1),
                    format!("{:.0}", summary.cold_wall_ms),
                    summary.cold_connections.to_string(),
                    summary.cold_hits.to_string(),
                    summary.cold_misses.to_string(),
                ],
                vec![
                    "warm".to_string(),
                    acc(summary.warm.0),
                    acc(summary.warm.1),
                    format!("{:.0}", summary.warm_wall_ms),
                    summary.warm_connections.to_string(),
                    summary.warm_hits.to_string(),
                    summary.warm_misses.to_string(),
                ],
            ],
        ),
        pct(summary.warm_hit_rate),
        summary.identical,
        stats.singleflight_waits,
        stats.evictions,
    );
    (summary, text)
}

/// Summary of the serving-path overload phase (see [`serving_overload`]).
#[derive(Debug, Clone, Copy)]
pub struct OverloadSummary {
    /// Concurrent client threads in the burst.
    pub threads: usize,
    /// Logical requests issued (threads × requests-per-thread).
    pub requests: usize,
    /// Connections rejected by admission control (`server.shed_total`).
    pub shed_total: u64,
    /// Sheds as a fraction of all connection attempts (sheds + served).
    pub shed_rate: f64,
    /// Completion requests the workers actually served.
    pub served: u64,
    /// Logical requests that ended in a completion (retries included).
    pub recovered: usize,
    /// High-water mark of concurrently served connections.
    pub concurrent_peak: i64,
    /// Worker-pool size the server ran with.
    pub pool_size: usize,
    /// Accept-queue depth the server ran with.
    pub queue_depth: usize,
    /// Median client-observed request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client-observed request latency, milliseconds.
    pub p99_ms: f64,
}

/// **Admission control under overload**: a burst of concurrent retrying
/// clients against a deliberately tiny server (2 workers, 2-deep accept
/// queue, 2 ms injected service time). The accept thread sheds the
/// overflow with `429` + `Retry-After`; the clients honor the advertised
/// backoff and re-submit. The run must show all three runtime promises at
/// once: in-flight work stays bounded by the pool, overload is shed
/// rather than queued without bound, and every logical request still
/// recovers to a completion.
pub fn serving_overload(ctx: &ExperimentContext, threads: usize) -> (OverloadSummary, String) {
    use nl2vis_llm::http::{CompletionServer, HttpLlmClient, ServerConfig};
    use nl2vis_llm::{FaultInjector, GenOptions, LlmClient, ResilientLlmClient, RetryPolicy};
    use nl2vis_obs::MetricsRegistry;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const REQUESTS_PER_THREAD: usize = 4;

    let llm = davinci003(ctx);
    let model = llm.profile.name;
    let registry = Arc::new(MetricsRegistry::new());
    let config = ServerConfig {
        max_inflight: 2,
        queue_depth: 2,
        retry_after: Duration::from_millis(2),
    };
    let server = CompletionServer::start_with_config(
        llm,
        Arc::clone(&registry),
        FaultInjector::parse("stall=1.0,stall_ms=2,seed=1").expect("static spec"),
        config,
    )
    .expect("server starts");
    let addr = server.address();

    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut recovered = 0usize;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    // A generous attempt budget with growing, jittered
                    // backoff: the point is that *every* request recovers,
                    // so the budget must outlast the worst-case herd.
                    let client = ResilientLlmClient::new(
                        HttpLlmClient::new(addr, model),
                        RetryPolicy {
                            max_attempts: 48,
                            base_backoff: Duration::from_millis(1),
                            max_backoff: Duration::from_millis(16),
                            jitter_seed: t as u64,
                        },
                    );
                    (0..REQUESTS_PER_THREAD)
                        .map(|i| {
                            let started = Instant::now();
                            let outcome = client.try_complete_with(
                                &format!("Q: overload probe {t}-{i}\nVQL:"),
                                &GenOptions::default(),
                            );
                            (started.elapsed().as_secs_f64() * 1e3, outcome.is_ok())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (ms, ok) in h.join().expect("overload client thread") {
                latencies_ms.push(ms);
                if ok {
                    recovered += 1;
                }
            }
        }
    });

    let shed_total = registry.counter("server.shed_total").get();
    let served = registry.counter("llm.requests_total").get();
    let concurrent_peak = registry.gauge("server.concurrent_peak").get();
    // Graceful drain: by here every client finished, so shutdown must not
    // find (or drop) anything in flight.
    drop(server);
    let leftover = registry.gauge("server.active_connections").get();

    latencies_ms.sort_by(f64::total_cmp);
    let percentile = |p: f64| -> f64 {
        if latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((p / 100.0) * (latencies_ms.len() - 1) as f64).round() as usize;
        latencies_ms[idx]
    };
    let attempts = shed_total + served;
    let summary = OverloadSummary {
        threads,
        requests: threads * REQUESTS_PER_THREAD,
        shed_total,
        shed_rate: if attempts == 0 {
            0.0
        } else {
            shed_total as f64 / attempts as f64
        },
        served,
        recovered,
        concurrent_peak,
        pool_size: config.max_inflight,
        queue_depth: config.queue_depth,
        p50_ms: percentile(50.0),
        p99_ms: percentile(99.0),
    };
    let text = format!(
        "Serving under overload ({threads} clients × {REQUESTS_PER_THREAD} requests, pool {} + queue {}, 2 ms injected service time)\n\
         connection attempts: {attempts}   shed (429): {}   shed rate: {}\n\
         served requests: {}   recovered: {}/{}   dropped at shutdown: {leftover}\n\
         in-flight peak: {} (bounded by pool {})\n\
         latency p50 / p99: {:.1} ms / {:.1} ms\n",
        config.max_inflight,
        config.queue_depth,
        summary.shed_total,
        pct(summary.shed_rate),
        summary.served,
        summary.recovered,
        summary.requests,
        summary.concurrent_peak,
        config.max_inflight,
        summary.p50_ms,
        summary.p99_ms,
    );
    (summary, text)
}

/// Summary of the end-to-end tracing run (see [`traces`]).
#[derive(Debug, Clone)]
pub struct TracesSummary {
    /// Examples evaluated per pass (two passes: cold, then cache-warm).
    pub n: usize,
    /// Traces the flight recorder retained at the end of the run.
    pub recorded: usize,
    /// Flight recorder capacity.
    pub capacity: usize,
    /// Retained traces that ended in error.
    pub errored: usize,
    /// Retained traces whose request was served from the completion cache.
    pub cache_hits: usize,
    /// Retained traces containing a server-side `server.handle` span —
    /// requests that actually crossed the wire, stitched by header
    /// propagation.
    pub stitched: usize,
    /// Retained traces where the resilient client retried a failed attempt.
    pub retried: usize,
    /// `GET /requests` returned the recent-trace index.
    pub requests_endpoint_ok: bool,
    /// `GET /trace/<id>` returned the stitched record for a retained id.
    pub trace_endpoint_ok: bool,
}

/// **End-to-end tracing**: a small eval served over HTTP through the full
/// client stack (completion cache → retrying client → pooled HTTP client)
/// against a fault-injecting server, with the flight recorder installed.
/// Every example is one trace: the client's cache lookup, each HTTP attempt
/// (including retries after injected drops), and the server's handling span
/// share a single trace id carried in `X-Nl2vis-Trace-Id` headers. The run
/// then exercises the debug endpoints (`GET /requests`, `GET /trace/<id>`)
/// and dumps the slowest and errored span trees — the exact artifacts an
/// operator would pull when diagnosing a slow or failed request.
pub fn traces(ctx: &ExperimentContext) -> (TracesSummary, String) {
    use nl2vis_cache::{CachedLlmClient, CompletionCache};
    use nl2vis_llm::http::{CompletionServer, HttpLlmClient};
    use nl2vis_llm::{FaultInjector, ResilientLlmClient, RetryPolicy};
    use nl2vis_obs::{recorder, FlightRecorder, MetricsRegistry};
    use std::io::{Read as _, Write as _};
    use std::sync::Arc;

    const CAPACITY: usize = 256;
    let flight = Arc::new(FlightRecorder::new(CAPACITY));
    recorder::install(Arc::clone(&flight));

    let llm = davinci003(ctx);
    let config = LlmEvalConfig::default();
    let registry = Arc::new(MetricsRegistry::new());
    let server = CompletionServer::start_with_faults(
        llm.clone(),
        Arc::clone(&registry),
        FaultInjector::parse("drop=0.15,seed=11").expect("static spec"),
    )
    .expect("server starts");
    let policy = RetryPolicy {
        jitter_seed: ctx.seed,
        ..RetryPolicy::attempts(4)
    };
    let client = CachedLlmClient::with_cache(
        ResilientLlmClient::new(
            HttpLlmClient::new(server.address(), llm.profile.name),
            policy,
        ),
        Arc::new(CompletionCache::in_memory(1024)),
    );

    // Two passes over the same examples: the first pays the wire (misses,
    // drops, retries), the second replays from the cache — so the recorder
    // holds both stitched client+server traces and pure cache-hit traces.
    let n = ctx.limit.map_or(24, |l| l.min(24));
    for _ in 0..2 {
        let _ = evaluate_llm(
            &client,
            &ctx.corpus,
            &ctx.cross_split.train,
            &ctx.cross_split.test,
            &config,
            Some(n),
        );
    }

    // Pull the debug endpoints the way an operator would: raw HTTP.
    let raw_get = |path: &str| -> String {
        let mut stream = std::net::TcpStream::connect(server.address()).expect("connect");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        )
        .expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    };
    let requests_response = raw_get("/requests");
    let requests_endpoint_ok =
        requests_response.starts_with("HTTP/1.1 200") && requests_response.contains("\"traces\"");
    let retained = flight.recent(CAPACITY);
    let trace_endpoint_ok = retained.first().is_some_and(|r| {
        let response = raw_get(&format!("/trace/{}", r.trace_id));
        response.starts_with("HTTP/1.1 200")
            && response.contains(&format!("\"trace_id\":{}", r.trace_id))
    });

    let examples: Vec<_> = retained
        .iter()
        .filter(|r| r.root == "eval.example")
        .collect();
    let summary = TracesSummary {
        n,
        recorded: retained.len(),
        capacity: CAPACITY,
        errored: retained.iter().filter(|r| r.error.is_some()).count(),
        cache_hits: examples
            .iter()
            .filter(|r| r.has_annotation("cache", "hit"))
            .count(),
        stitched: examples
            .iter()
            .filter(|r| r.has_span("server.handle"))
            .count(),
        retried: examples
            .iter()
            .filter(|r| {
                r.spans_named("llm.request")
                    .iter()
                    .any(|s| s.annotations.iter().any(|(k, _)| k == "retry"))
            })
            .count(),
        requests_endpoint_ok,
        trace_endpoint_ok,
    };

    let mut dump = String::new();
    if let Some(slowest) = examples.iter().max_by_key(|r| r.duration_us) {
        dump.push_str("Slowest example trace:\n");
        dump.push_str(&slowest.render_tree());
    }
    for errored in examples.iter().filter(|r| r.error.is_some()).take(2) {
        dump.push_str("Errored example trace:\n");
        dump.push_str(&errored.render_tree());
    }

    recorder::disable();

    let text = format!(
        "End-to-end tracing (text-davinci-003 over HTTP, cache → retry → pool, 15% injected drops, {n} examples x 2 passes)\n{}\
         GET /requests ok: {}   GET /trace/<id> ok: {}\n{}",
        table(
            &["metric", "value"],
            &[
                vec!["traces retained".to_string(), format!("{}/{}", summary.recorded, summary.capacity)],
                vec!["errored".to_string(), summary.errored.to_string()],
                vec!["served from cache".to_string(), summary.cache_hits.to_string()],
                vec!["stitched client+server".to_string(), summary.stitched.to_string()],
                vec!["with retries".to_string(), summary.retried.to_string()],
            ],
        ),
        summary.requests_endpoint_ok,
        summary.trace_endpoint_ok,
        dump,
    );
    (summary, text)
}

/// **Sustained load** (`nl2vis-loadgen` as a bench experiment): a short
/// closed-loop run followed by an open-loop run at the same thread count,
/// against a self-hosted `CompletionServer`. The closed loop measures the
/// system at its natural pace; the open loop schedules requests at a fixed
/// rate and measures from *intended* send time (coordinated-omission
/// correction), so the two p99s diverging under pressure is the signal
/// that the correction is real. The combined document lands in
/// `BENCH_load.json` — the trajectory `scripts/bench_diff` compares
/// across PRs. The standalone `nl2vis-loadgen` binary runs the same
/// harness with full control over every knob.
pub fn load(fast: bool) -> (nl2vis_data::Json, String) {
    use nl2vis_loadgen::{results, run_load, Arrival, LoadConfig, Skew};
    use std::time::Duration;

    let (duration, warmup, threads, rps) = if fast {
        (Duration::from_secs(2), Duration::from_millis(500), 4, 300.0)
    } else {
        (Duration::from_secs(8), Duration::from_secs(2), 8, 500.0)
    };
    let base = LoadConfig {
        threads: vec![threads],
        duration,
        warmup,
        skew: Skew::Zipf { theta: 1.1 },
        prompts: 64,
        report: Duration::ZERO,
        out: String::new(),
        ..LoadConfig::default()
    };

    let mut runs = Vec::new();
    let mut config = base.clone();
    config.arrival = Arrival::Closed;
    match run_load(&config) {
        Ok((_, mut r)) => runs.append(&mut r),
        Err(e) => {
            return (
                nl2vis_data::Json::Null,
                format!("load (closed) failed: {e}\n"),
            )
        }
    }
    config.arrival = Arrival::Open { rps };
    let json = match run_load(&config) {
        Ok((json, mut r)) => {
            runs.append(&mut r);
            json
        }
        Err(e) => {
            return (
                nl2vis_data::Json::Null,
                format!("load (open) failed: {e}\n"),
            )
        }
    };

    // One document carrying both arrival modes: rebuild the run list from
    // the combined set so the diff tool can match (threads, rate) pairs.
    let mut doc = json;
    doc.set("rate", nl2vis_data::Json::from("closed+open"));
    doc.set(
        "runs",
        nl2vis_data::Json::Array(runs.iter().map(results::run_json).collect()),
    );
    let text = format!(
        "Sustained load (self-hosted server, zipf:1.1 over 64 prompts, {}s + {}s warmup per mode)\n{}",
        duration.as_secs(),
        warmup.as_secs_f64(),
        results::render_table(&runs),
    );
    (doc, text)
}

/// **Topology scale-out** (`nl2vis-router` through `nl2vis-loadgen`): the
/// same offered load driven against one replica and against a routed
/// 4-replica fleet, plus a hedged-vs-unhedged pair at the fleet topology.
/// Two claims are on trial:
///
/// 1. **Affinity preserves the cache.** The router's consistent-hash ring
///    pins each prompt to one replica, so sharding a fixed cache budget
///    over 4 replicas keeps the zipf:1.1 hit rate within a few points of
///    the single-replica run — without affinity each shard would see the
///    whole keyspace and the effective capacity would collapse.
/// 2. **Hedging cuts the corrected tail.** Replicas carry a rare
///    heavy-tail stall (the GC-pause stand-in); firing a hedge at the
///    observed per-replica p95 routes around it, so the hedged run's
///    corrected p99 sits strictly below the unhedged run's at the same
///    offered load.
///
/// A low-concurrency 2-replica row rides along as the anchor for the
/// `scripts/verify.sh` router smoke, and the `load` experiment's
/// low-concurrency rows are re-run so one invocation regenerates a
/// `BENCH_load.json` that `bench_diff` can hold future PRs to.
pub fn topology(fast: bool) -> (nl2vis_data::Json, String) {
    use nl2vis_loadgen::{results, run_load, Arrival, LoadConfig, Skew};
    use std::time::Duration;

    // The acceptance scale: 512 closed-loop clients over 4 replicas. The
    // fast profile shrinks the client herd, not the topology.
    let scale_threads = if fast { 16 } else { 512 };
    let (duration, warmup) = if fast {
        (Duration::from_secs(2), Duration::from_millis(500))
    } else {
        (Duration::from_secs(6), Duration::from_secs(2))
    };

    let mut runs = Vec::new();
    let mut failed: Option<String> = None;
    let mut run =
        |label: &str, config: LoadConfig, failed: &mut Option<String>| match run_load(&config) {
            Ok((_, mut r)) => runs.append(&mut r),
            Err(e) => *failed = Some(format!("topology ({label}) failed: {e}")),
        };

    // Continuity rows: the `load` experiment's fast-profile shape
    // (closed + open:300 at 4 threads), so the trajectory file keeps the
    // keys the verify.sh low-concurrency smoke diffs against.
    let legacy = LoadConfig {
        threads: vec![4],
        duration,
        warmup,
        arrival: Arrival::Closed,
        skew: Skew::Zipf { theta: 1.1 },
        prompts: 64,
        report: Duration::ZERO,
        out: String::new(),
        ..LoadConfig::default()
    };
    run("closed continuity", legacy.clone(), &mut failed);
    let mut open = legacy.clone();
    open.arrival = Arrival::Open { rps: 300.0 };
    run("open continuity", open, &mut failed);

    // The verify.sh router-smoke anchor: 16 clients, 2 replicas, hedged,
    // with a 5% 40ms heavy tail so hedges demonstrably fire.
    let smoke = LoadConfig {
        threads: vec![16],
        cache_capacity: 256,
        prompts: 256,
        service_ms: 2,
        tail_prob: 0.05,
        tail_ms: 40,
        replicas: 2,
        hedge_ms: 10,
        ..legacy.clone()
    };
    run("2-replica smoke", smoke, &mut failed);

    // The scale-out trio: one shared shape, varying only the topology.
    // The cache budget is deliberately smaller than the prompt pool so a
    // steady miss stream keeps touching the wire — an all-hit run would
    // make both the affinity and the hedging claims vacuous.
    let base = LoadConfig {
        threads: vec![scale_threads],
        cache_capacity: 512,
        prompts: 2048,
        service_ms: 2,
        // 3% of wire requests stall 60ms: rare enough that the observed
        // per-replica p95 (the hedge trigger) stays near the 2ms base,
        // long enough that routing around it visibly moves the p99.
        tail_prob: 0.03,
        tail_ms: 60,
        hedge_ms: 12,
        ..legacy
    };
    let single = LoadConfig {
        replicas: 1,
        ..base.clone()
    };
    run("1 replica", single, &mut failed);
    let routed = LoadConfig {
        replicas: 4,
        ..base.clone()
    };
    run("4 replicas hedged", routed, &mut failed);

    // The hedging pair: same fixed open-loop offered load, cache off so
    // every request rides the wire and the heavy tail actually reaches
    // the p99 — with the shards on, hits bury the tail below the
    // percentile and both runs measure the cache instead of the hedge.
    // The worker herd is sized to what this box can schedule: hedging is
    // a timer race, and drowning one core in 512 runnable threads delays
    // the hedge wakeup past the very tail it is supposed to cut.
    let hedge_rate = if fast { 300.0 } else { 800.0 };
    let wire_threads = if fast { scale_threads } else { 64 };
    let wire = LoadConfig {
        threads: vec![wire_threads],
        arrival: Arrival::Open { rps: hedge_rate },
        cache_capacity: 0,
        replicas: 4,
        ..base.clone()
    };
    run("4 replicas hedged, all-wire", wire.clone(), &mut failed);
    let unhedged = LoadConfig {
        hedge_ms: 0,
        ..wire
    };
    run("4 replicas unhedged, all-wire", unhedged, &mut failed);

    if let Some(e) = failed {
        return (nl2vis_data::Json::Null, format!("{e}\n"));
    }

    // The two verdicts, pulled back out of the run list by topology.
    let closed = Arrival::Closed.label();
    let open = Arrival::Open { rps: hedge_rate }.label();
    let find = |threads: usize, rate: &str, replicas: usize, hedge_ms: u64| {
        runs.iter().find(|r| {
            r.threads == threads
                && r.rate == rate
                && r.replicas == replicas
                && r.hedge_ms == hedge_ms
        })
    };
    let mut verdicts = String::new();
    if let (Some(one), Some(four)) = (
        find(scale_threads, &closed, 1, 0),
        find(scale_threads, &closed, 4, 12),
    ) {
        verdicts.push_str(&format!(
            "affinity: cache-hit rate 1 replica {:.1}% vs 4 replicas {:.1}% (delta {:+.1} points)\n",
            one.cache_hit_rate() * 100.0,
            four.cache_hit_rate() * 100.0,
            (four.cache_hit_rate() - one.cache_hit_rate()) * 100.0,
        ));
    }
    if let (Some(hedged), Some(unhedged)) = (
        find(wire_threads, &open, 4, 12),
        find(wire_threads, &open, 4, 0),
    ) {
        let fired = hedged.router.as_ref().map_or(0, |r| r.hedges_fired);
        let wins = hedged.router.as_ref().map_or(0, |r| r.hedge_wins);
        verdicts.push_str(&format!(
            "hedging: corrected p99 {:.1}ms hedged vs {:.1}ms unhedged at open:{:.0} ({} hedges fired, {} won)\n",
            hedged.e2e_corrected.p99 / 1_000.0,
            unhedged.e2e_corrected.p99 / 1_000.0,
            hedge_rate,
            fired,
            wins,
        ));
    }

    let mut doc = results::bench_json(&base, &runs);
    doc.set("experiment", nl2vis_data::Json::from("load"));
    doc.set("rate", nl2vis_data::Json::from("topology"));
    let text = format!(
        "Topology scale-out (router over self-hosted replicas, zipf:1.1, {} clients at scale)\n{}{}",
        scale_threads,
        results::render_table(&runs),
        verdicts,
    );
    (doc, text)
}

/// One row of the routing-policy comparison (see [`routing`]).
#[derive(Debug, Clone)]
pub struct RoutingRow {
    /// Policy label (`strong-only` is the untiered reference).
    pub policy: String,
    /// Exact-match accuracy of the eval under this policy.
    pub exact: f64,
    /// Execution-match accuracy.
    pub exec: f64,
    /// Median end-to-end completion latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end completion latency, milliseconds.
    pub p99_ms: f64,
    /// Requests the router issued across all tiers.
    pub requests: u64,
    /// Escalations past a failed tier.
    pub escalations: u64,
    /// Completions the validation gate rejected.
    pub validation_failures: u64,
    /// Abstract cost units spent (per-tier weight × attempts).
    pub cost_units: u64,
}

/// A latency probe above the router: records every completion's
/// end-to-end duration without adding a layer tag (it forwards
/// `describe`, so stack validation sees straight through it).
struct Timed<S> {
    inner: S,
    latency_us: obs::Histogram,
}

impl<S: nl2vis_service::CompletionService> nl2vis_service::CompletionService for Timed<S> {
    fn model(&self) -> &str {
        self.inner.model()
    }

    fn call(&self, prompt: &str, opts: &nl2vis_llm::GenOptions) -> nl2vis_llm::CompletionOutcome {
        let started = std::time::Instant::now();
        let out = self.inner.call(prompt, opts);
        self.latency_us.record_duration(started.elapsed());
        out
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        self.inner.describe(stack)
    }
}

/// **Tiered routing**: the in-domain eval served through a
/// validation-gated two-tier router under each routing policy, against an
/// untiered strong-model reference. The cheap tier is a locally-hosted
/// T5-Base baseline (cost 1 — no per-token API spend) behind a full
/// execution-check gate: a prediction the baseline declines to make rides
/// the 422 channel, and an answer that fails to parse, execute, or
/// produce rows is rejected — either way the request escalates. The
/// strong tier is `gpt-4`, unvalidated (the quality floor), with decoding
/// latency injected in proportion to the Table 4 cost model. The policy
/// table shows the three-way quality / latency / cost trade the router
/// exists to make: in-domain traffic the fine-tuned baseline memorized is
/// answered locally for free, and everything it cannot ground escalates
/// to the expensive tier.
pub fn routing(ctx: &ExperimentContext) -> (Vec<RoutingRow>, String) {
    use nl2vis_baselines::{ModelService, T5Model, T5Size};
    use nl2vis_llm::ServiceClient;
    use nl2vis_service::{
        service_fn, Layer, RouteLayer, RoutePolicy, ValidateLayer, VqlExecValidator,
    };
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use std::time::Duration;

    // Injected strong-tier decoding stall (scaled from ms_per_token to
    // keep the fast profile fast); the local baseline answers at memory
    // speed, which is the latency half of the routing story.
    const STRONG_STALL_MS: u64 = 8;

    let databases: Arc<BTreeMap<String, Arc<nl2vis_data::Database>>> = Arc::new(
        ctx.corpus
            .catalog
            .iter()
            .map(|d| (d.name().to_string(), Arc::new(d.clone())))
            .collect(),
    );
    // The prompt's own schema header names the database every completion
    // must execute against (all serialization formats open with
    // `Database: <name>`; demonstrations prefix theirs with `--`, and the
    // test schema comes last).
    let resolve = {
        let databases = Arc::clone(&databases);
        move |prompt: &str| {
            prompt
                .lines()
                .filter_map(|line| line.trim_start_matches("-- ").strip_prefix("Database: "))
                .next_back()
                .and_then(|name| databases.get(name.trim()).cloned())
        }
    };
    let resolve_name = {
        let databases = Arc::clone(&databases);
        move |name: &str| databases.get(name).cloned()
    };

    let cheap_cost = 1; // local inference: no per-token API spend
    let strong_cost = ModelProfile::gpt_4().cost_units();
    let slowed = |profile: ModelProfile, stall_ms: u64| {
        let llm = SimLlm::new(profile, ctx.seed ^ 0x7E);
        let name = llm.profile.name;
        service_fn(name, move |prompt: &str, opts: &nl2vis_llm::GenOptions| {
            std::thread::sleep(Duration::from_millis(stall_ms));
            Ok(llm.complete_with(prompt, opts))
        })
    };

    // The gate and the baseline adapter both recover the target database
    // from the prompt's `Database:` header, so the experiment prompts
    // with a serialization that carries one (the default `Table2Sql`
    // format emits bare DDL and would silently degrade the execution
    // check to syntax-only).
    let config = LlmEvalConfig {
        format: PromptFormat::ColumnListFkValue,
        ..LlmEvalConfig::default()
    };
    let policies: &[(&str, Option<RoutePolicy>)] = &[
        ("strong-only", None),
        ("cheap-first", Some(RoutePolicy::CheapFirst)),
        ("quality-first", Some(RoutePolicy::QualityFirst)),
        (
            "budget:20",
            Some(RoutePolicy::BudgetCapped(cheap_cost + 19)),
        ),
    ];
    // Fine-tune the baseline on *half* the training split: full-coverage
    // fine-tuning memorizes in-domain traffic so completely that the
    // strong tier never fires. Partial coverage is the production shape —
    // the local model owns the traffic it has seen, and escalation
    // carries the rest.
    let cheap_train: Vec<usize> = ctx.in_split.train.iter().copied().step_by(2).collect();

    let mut rows = Vec::new();
    for (label, policy) in policies {
        let route = match policy {
            None => RouteLayer::new(RoutePolicy::CheapFirst)
                .model("tiered")
                .tier(
                    "gpt-4",
                    strong_cost,
                    slowed(ModelProfile::gpt_4(), STRONG_STALL_MS),
                ),
            Some(policy) => RouteLayer::new(*policy)
                .model("tiered")
                .tier(
                    "t5-base",
                    cheap_cost,
                    ValidateLayer::new(VqlExecValidator::new(resolve.clone()).require_rows())
                        .layer(ModelService::new(
                            T5Model::train(&ctx.corpus, &cheap_train, T5Size::Base, ctx.seed),
                            resolve_name.clone(),
                        )),
                )
                .tier(
                    "gpt-4",
                    strong_cost,
                    slowed(ModelProfile::gpt_4(), STRONG_STALL_MS),
                ),
        };
        let tiers = route.build().expect("routing stack conforms");
        let client = ServiceClient::new(Timed {
            inner: tiers,
            latency_us: obs::Histogram::default(),
        });

        let g = obs::global();
        let before = (
            g.counter("route.tier.requests_total").get(),
            g.counter("route.tier.escalations_total").get(),
            g.counter("route.tier.validation_failures_total").get(),
            g.counter("route.cost_units").get(),
        );
        let report = evaluate_llm(
            &client,
            &ctx.corpus,
            &ctx.in_split.train,
            &ctx.in_split.test,
            &config,
            ctx.limit,
        );
        let latency = client.inner().latency_us.summary();
        rows.push(RoutingRow {
            policy: label.to_string(),
            exact: report.overall().exact(),
            exec: report.overall().exec(),
            p50_ms: latency.p50 / 1_000.0,
            p99_ms: latency.p99 / 1_000.0,
            requests: g.counter("route.tier.requests_total").get() - before.0,
            escalations: g.counter("route.tier.escalations_total").get() - before.1,
            validation_failures: g.counter("route.tier.validation_failures_total").get() - before.2,
            cost_units: g.counter("route.cost_units").get() - before.3,
        });
    }

    let text = format!(
        "Tiered routing (local t5-base + execution gate -> gpt-4, in-domain, {} examples)\n{}",
        // The untiered reference issues exactly one request per example.
        rows.first().map(|r| r.requests).unwrap_or(0),
        table(
            &["policy", "Exa", "Exe", "p50-ms", "p99-ms", "reqs", "esc", "vfail", "cost"],
            &rows
                .iter()
                .map(|r| vec![
                    r.policy.clone(),
                    acc(r.exact),
                    acc(r.exec),
                    format!("{:.1}", r.p50_ms),
                    format!("{:.1}", r.p99_ms),
                    r.requests.to_string(),
                    r.escalations.to_string(),
                    r.validation_failures.to_string(),
                    r.cost_units.to_string(),
                ])
                .collect::<Vec<_>>(),
        ),
    );
    (rows, text)
}
