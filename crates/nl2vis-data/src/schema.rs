//! Relational schema descriptions.
//!
//! A [`DatabaseSchema`] owns [`TableDef`]s and [`ForeignKey`]s. Columns carry
//! optional *natural-language aliases* — the phrases an end user might use
//! for the column (e.g. `salary` ↔ "pay", "wage") — which the corpus
//! generator uses to realize queries and the schema linkers use to resolve
//! them.

use crate::value::DataType;
use std::fmt;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Identifier (snake_case by convention).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Natural-language synonyms a user might say for this column.
    pub aliases: Vec<String>,
}

impl ColumnDef {
    /// Creates a column without aliases.
    pub fn new(name: impl Into<String>, dtype: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            dtype,
            aliases: Vec::new(),
        }
    }

    /// Builder-style alias attachment.
    pub fn with_aliases<I, S>(mut self, aliases: I) -> ColumnDef
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.aliases = aliases.into_iter().map(Into::into).collect();
        self
    }
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Identifier (snake_case by convention).
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<ColumnDef>,
    /// Index into `columns` of the primary key, if any.
    pub primary_key: Option<usize>,
}

impl TableDef {
    /// Creates a table definition.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> TableDef {
        TableDef {
            name: name.into(),
            columns,
            primary_key: None,
        }
    }

    /// Builder-style primary key by column name. Panics if unknown (schema
    /// construction is programmer-controlled).
    pub fn with_primary_key(mut self, column: &str) -> TableDef {
        let idx = self
            .column_index(column)
            .unwrap_or_else(|| panic!("primary key column `{column}` not in `{}`", self.name));
        self.primary_key = Some(idx);
        self
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column def by case-insensitive name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// All column names in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A foreign-key edge between two tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: String,
    /// Referencing column.
    pub from_column: String,
    /// Referenced table.
    pub to_table: String,
    /// Referenced column (normally the referenced table's primary key).
    pub to_column: String,
}

impl ForeignKey {
    /// Creates a foreign key edge.
    pub fn new(
        from_table: impl Into<String>,
        from_column: impl Into<String>,
        to_table: impl Into<String>,
        to_column: impl Into<String>,
    ) -> ForeignKey {
        ForeignKey {
            from_table: from_table.into(),
            from_column: from_column.into(),
            to_table: to_table.into(),
            to_column: to_column.into(),
        }
    }
}

impl fmt::Display for ForeignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} -> {}.{}",
            self.from_table, self.from_column, self.to_table, self.to_column
        )
    }
}

/// A database schema: a named set of tables plus foreign-key edges and a
/// domain tag (e.g. "sports", "college") used by the cross-domain splitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseSchema {
    /// Database identifier.
    pub name: String,
    /// Topical domain the database belongs to.
    pub domain: String,
    /// Tables in declaration order.
    pub tables: Vec<TableDef>,
    /// Foreign-key edges.
    pub foreign_keys: Vec<ForeignKey>,
}

impl DatabaseSchema {
    /// Creates an empty schema.
    pub fn new(name: impl Into<String>, domain: impl Into<String>) -> DatabaseSchema {
        DatabaseSchema {
            name: name.into(),
            domain: domain.into(),
            tables: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Looks up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Foreign keys touching (from or to) the named table.
    pub fn foreign_keys_of(&self, table: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| {
                fk.from_table.eq_ignore_ascii_case(table) || fk.to_table.eq_ignore_ascii_case(table)
            })
            .collect()
    }

    /// The foreign key joining the two tables (either direction), if any.
    pub fn join_edge(&self, a: &str, b: &str) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| {
            (fk.from_table.eq_ignore_ascii_case(a) && fk.to_table.eq_ignore_ascii_case(b))
                || (fk.from_table.eq_ignore_ascii_case(b) && fk.to_table.eq_ignore_ascii_case(a))
        })
    }

    /// Validates that the schema is internally consistent: unique table
    /// names, unique column names per table, and FK endpoints that exist with
    /// matching types.
    pub fn check(&self) -> Result<(), String> {
        for (i, t) in self.tables.iter().enumerate() {
            for u in &self.tables[i + 1..] {
                if t.name.eq_ignore_ascii_case(&u.name) {
                    return Err(format!("duplicate table name `{}`", t.name));
                }
            }
            for (j, c) in t.columns.iter().enumerate() {
                for d in &t.columns[j + 1..] {
                    if c.name.eq_ignore_ascii_case(&d.name) {
                        return Err(format!("duplicate column `{}` in `{}`", c.name, t.name));
                    }
                }
            }
        }
        for fk in &self.foreign_keys {
            let from = self
                .table(&fk.from_table)
                .ok_or_else(|| format!("FK references missing table `{}`", fk.from_table))?;
            let to = self
                .table(&fk.to_table)
                .ok_or_else(|| format!("FK references missing table `{}`", fk.to_table))?;
            let fc = from
                .column(&fk.from_column)
                .ok_or_else(|| format!("FK references missing column `{}`", fk.from_column))?;
            let tc = to
                .column(&fk.to_column)
                .ok_or_else(|| format!("FK references missing column `{}`", fk.to_column))?;
            if fc.dtype != tc.dtype {
                return Err(format!("FK {fk} joins mismatched types"));
            }
        }
        Ok(())
    }

    /// Total column count across tables (used for prompt-length accounting).
    pub fn total_columns(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType::*;

    fn sample() -> DatabaseSchema {
        let mut s = DatabaseSchema::new("shop", "retail");
        s.tables.push(
            TableDef::new(
                "customers",
                vec![
                    ColumnDef::new("customer_id", Int),
                    ColumnDef::new("name", Text).with_aliases(["customer name"]),
                ],
            )
            .with_primary_key("customer_id"),
        );
        s.tables.push(
            TableDef::new(
                "orders",
                vec![
                    ColumnDef::new("order_id", Int),
                    ColumnDef::new("customer_id", Int),
                    ColumnDef::new("amount", Float),
                ],
            )
            .with_primary_key("order_id"),
        );
        s.foreign_keys.push(ForeignKey::new(
            "orders",
            "customer_id",
            "customers",
            "customer_id",
        ));
        s
    }

    #[test]
    fn check_passes_on_valid_schema() {
        assert_eq!(sample().check(), Ok(()));
    }

    #[test]
    fn check_rejects_duplicate_tables() {
        let mut s = sample();
        s.tables
            .push(TableDef::new("Customers", vec![ColumnDef::new("x", Int)]));
        assert!(s.check().is_err());
    }

    #[test]
    fn check_rejects_bad_fk() {
        let mut s = sample();
        s.foreign_keys.push(ForeignKey::new(
            "orders",
            "nope",
            "customers",
            "customer_id",
        ));
        assert!(s.check().is_err());
    }

    #[test]
    fn check_rejects_fk_type_mismatch() {
        let mut s = sample();
        s.tables[1].columns[1].dtype = Text;
        assert!(s.check().is_err());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert!(s.table("CUSTOMERS").is_some());
        assert!(s.tables[0].column("NAME").is_some());
    }

    #[test]
    fn join_edge_found_both_directions() {
        let s = sample();
        assert!(s.join_edge("orders", "customers").is_some());
        assert!(s.join_edge("customers", "orders").is_some());
        assert!(s.join_edge("customers", "customers").is_none());
    }

    #[test]
    fn primary_key_panics_on_unknown() {
        let result = std::panic::catch_unwind(|| {
            TableDef::new("t", vec![ColumnDef::new("a", Int)]).with_primary_key("zzz")
        });
        assert!(result.is_err());
    }

    #[test]
    fn total_columns_counts_all() {
        assert_eq!(sample().total_columns(), 5);
    }
}
