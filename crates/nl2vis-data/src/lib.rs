//! Foundation types for the `nl2vis` workspace.
//!
//! This crate provides everything the rest of the system stands on:
//!
//! - [`value`]: the dynamically-typed [`Value`] cell type with a
//!   total order and hashing suitable for grouping and result comparison;
//! - [`schema`]: relational schema descriptions (tables, columns, primary and
//!   foreign keys) together with natural-language aliases used by the corpus
//!   generator and schema linkers;
//! - [`table`] / [`database`] / [`catalog`]: a small in-memory row store with
//!   referential-integrity validation and a multi-database catalog;
//! - [`json`]: a dependency-free JSON value, parser and serializer (used for
//!   Vega-Lite emission, the `Table2JSON` prompt format and the HTTP API);
//! - [`csv`]: a minimal RFC-4180-style CSV reader/writer (used by the
//!   `Table2CSV` prompt format);
//! - [`load`]: building a database from CSV text with column-type
//!   inference, for running the pipeline over user data;
//! - [`rng`]: a deterministic SplitMix64-based random number generator so that
//!   every experiment in the paper reproduction is a pure function of its
//!   seed;
//! - [`text`]: identifier tokenization and Jaccard similarity, shared by the
//!   demonstration selector and the schema linkers.

pub mod catalog;
pub mod csv;
pub mod database;
pub mod error;
pub mod json;
pub mod load;
pub mod rng;
pub mod schema;
pub mod table;
pub mod text;
pub mod value;

pub use catalog::Catalog;
pub use database::Database;
pub use error::DataError;
pub use json::Json;
pub use load::database_from_csv;
pub use rng::Rng;
pub use schema::{ColumnDef, DatabaseSchema, ForeignKey, TableDef};
pub use table::Table;
pub use value::{DataType, Date, Value};
