//! A deterministic random number generator.
//!
//! Experiments in this reproduction must be bit-reproducible across runs and
//! platforms; we therefore use a self-contained SplitMix64 generator (public
//! domain algorithm by Sebastiano Vigna) rather than an external crate whose
//! stream could change between versions.

/// Deterministic SplitMix64 RNG.
///
/// Cloning an `Rng` forks the stream: both clones produce identical output
/// from the clone point, which is occasionally useful for counterfactual
/// simulation (e.g. replaying a model's sampling under a different prompt).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Derives an independent child generator, e.g. per test case, so that
    /// adding cases does not perturb the stream other cases observe.
    pub fn fork(&self, stream: u64) -> Rng {
        // Mix the stream id through one SplitMix step of a copied state.
        let mut child = Rng {
            state: self.state ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        child.next_u64();
        child
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Lemire's multiply-shift rejection method for unbiased bounded output.
        loop {
            let x = self.next_u64();
            let m = (u128::from(x)) * (u128::from(n));
            let low = m as u64;
            if low >= n.wrapping_neg() % n.max(1) || n.is_power_of_two() {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi]` inclusive. Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "Rng::range_i64 lo > hi");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform in `[0, n)` as usize.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Rng::pick on empty slice");
        &items[self.below_usize(items.len())]
    }

    /// Picks an index by non-negative weights. Panics if all weights are zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "Rng::pick_weighted: all-zero weights");
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (k capped at n), in random
    /// order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }

    /// Approximately normal draw (Irwin-Hall sum of 12 uniforms), mean 0,
    /// standard deviation 1. Good enough for timing-model noise.
    pub fn gauss(&mut self) -> f64 {
        let mut s = 0.0;
        for _ in 0..12 {
            s += self.f64();
        }
        s - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_i64_inclusive() {
        let mut r = Rng::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let x = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&x));
            lo_seen |= x == -3;
            hi_seen |= x == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle should not be identity");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::new(13);
        let s = r.sample_indices(20, 8);
        assert_eq!(s.len(), 8);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 8);
        // k > n caps at n
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn pick_weighted_respects_zero_weight() {
        let mut r = Rng::new(17);
        for _ in 0..500 {
            let i = r.pick_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let base = Rng::new(100);
        let mut a = base.fork(1);
        let mut b = base.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
        // Same fork id reproduces.
        let mut a2 = base.fork(1);
        let mut a3 = base.fork(1);
        assert_eq!(a2.next_u64(), a3.next_u64());
    }

    #[test]
    fn gauss_rough_moments() {
        let mut r = Rng::new(23);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gauss()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
