//! The dynamically-typed cell value used throughout the engine.
//!
//! [`Value`] deliberately implements [`Eq`], [`Ord`] and [`Hash`] with a
//! *total* order (NULL sorts first, numbers compare across `Int`/`Float`,
//! floats use IEEE total ordering for NaN) so that values can be grouped,
//! sorted and compared for execution-accuracy checks without panics.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// Calendar date (used by the temporal `BIN` transform).
    Date,
}

impl DataType {
    /// Human-readable lowercase name, as used in prompt serializations.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Bool => "bool",
            DataType::Date => "date",
        }
    }

    /// SQL type name, used by the `Table2SQL` serialization.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Int => "INTEGER",
            DataType::Float => "REAL",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOLEAN",
            DataType::Date => "DATE",
        }
    }

    /// Python type-hint name, used by the `Table2Code` serialization.
    pub fn python_name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "str",
            DataType::Bool => "bool",
            DataType::Date => "datetime.date",
        }
    }

    /// Whether this type is numeric (valid for `SUM`/`AVG`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A proleptic-Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year (e.g. 2024).
    pub year: i32,
    /// Month, 1-12.
    pub month: u8,
    /// Day of month, 1-31.
    pub day: u8,
}

impl Date {
    /// Creates a date, validating month and day ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > Date::days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Number of days in `month` of `year`.
    pub fn days_in_month(year: i32, month: u8) -> u8 {
        match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if Date::is_leap_year(year) {
                    29
                } else {
                    28
                }
            }
            _ => 0,
        }
    }

    /// Gregorian leap-year rule.
    pub fn is_leap_year(year: i32) -> bool {
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
    }

    /// Days since 1970-01-01 (may be negative). Used for weekday computation
    /// and uniform date arithmetic.
    pub fn days_since_epoch(self) -> i64 {
        // Howard Hinnant's days_from_civil algorithm.
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Weekday with Monday = 0 .. Sunday = 6.
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (weekday 3 with Monday=0).
        let d = self.days_since_epoch() + 3;
        (d.rem_euclid(7)) as u8
    }

    /// English weekday name.
    pub fn weekday_name(self) -> &'static str {
        [
            "Monday",
            "Tuesday",
            "Wednesday",
            "Thursday",
            "Friday",
            "Saturday",
            "Sunday",
        ][usize::from(self.weekday())]
    }

    /// Quarter of the year, 1-4.
    pub fn quarter(self) -> u8 {
        (self.month - 1) / 3 + 1
    }

    /// Parses `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Date> {
        let mut it = s.splitn(3, '-');
        let year: i32 = it.next()?.parse().ok()?;
        let month: u8 = it.next()?.parse().ok()?;
        let day: u8 = it.next()?.parse().ok()?;
        Date::new(year, month, day)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A single dynamically-typed cell.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Date.
    Date(Date),
}

impl Value {
    /// The runtime type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to f64), `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Text view for `Text` values only.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view for `Int` values only.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Date view for `Date` values only.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Rank used to totally order values of *different* types:
    /// NULL < Bool < numbers < Date < Text.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Date(_) => 3,
            Value::Text(_) => 4,
        }
    }

    /// Renders the value the way the executor's result tables and the chart
    /// renderers display it. Distinct from `Display` only in intent.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Parses a literal of the given type from text (used by CSV import and
    /// the simulated code-interpreter).
    pub fn parse_typed(s: &str, dtype: DataType) -> Option<Value> {
        let s = s.trim();
        if s.is_empty() || s.eq_ignore_ascii_case("null") {
            return Some(Value::Null);
        }
        match dtype {
            DataType::Int => s.parse().ok().map(Value::Int),
            DataType::Float => s.parse().ok().map(Value::Float),
            DataType::Text => Some(Value::Text(s.to_string())),
            DataType::Bool => match s.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" | "yes" => Some(Value::Bool(true)),
                "false" | "f" | "0" | "no" => Some(Value::Bool(false)),
                _ => None,
            },
            DataType::Date => Date::parse(s).map(Value::Date),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Date(a), Date(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equal.
            Value::Int(i) => {
                state.write_u8(2);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                f.to_bits().hash(state);
            }
            Value::Date(d) => {
                state.write_u8(3);
                d.hash(state);
            }
            Value::Text(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::Int(1), Value::Null, Value::Text("a".into())];
        vs.sort();
        assert!(vs[0].is_null());
    }

    #[test]
    fn cross_numeric_compare() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn cross_numeric_hash_consistent() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn nan_is_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(1e308) < Value::Float(f64::NAN));
    }

    #[test]
    fn date_validation() {
        assert!(Date::new(2024, 2, 29).is_some());
        assert!(Date::new(2023, 2, 29).is_none());
        assert!(Date::new(2023, 13, 1).is_none());
        assert!(Date::new(2023, 4, 31).is_none());
        assert!(Date::new(2023, 4, 0).is_none());
    }

    #[test]
    fn date_weekday() {
        // 1970-01-01 was a Thursday.
        assert_eq!(Date::new(1970, 1, 1).unwrap().weekday_name(), "Thursday");
        // 2024-01-01 was a Monday.
        assert_eq!(Date::new(2024, 1, 1).unwrap().weekday_name(), "Monday");
        // 2000-03-01 was a Wednesday.
        assert_eq!(Date::new(2000, 3, 1).unwrap().weekday_name(), "Wednesday");
    }

    #[test]
    fn date_epoch_roundtrip_ordering() {
        let a = Date::new(1999, 12, 31).unwrap();
        let b = Date::new(2000, 1, 1).unwrap();
        assert_eq!(b.days_since_epoch() - a.days_since_epoch(), 1);
        assert!(a < b);
    }

    #[test]
    fn date_parse_display_roundtrip() {
        let d = Date::parse("2021-07-04").unwrap();
        assert_eq!(d.to_string(), "2021-07-04");
        assert!(Date::parse("2021-7").is_none());
        assert!(Date::parse("abcd-ef-gh").is_none());
    }

    #[test]
    fn quarters() {
        assert_eq!(Date::new(2020, 1, 15).unwrap().quarter(), 1);
        assert_eq!(Date::new(2020, 3, 31).unwrap().quarter(), 1);
        assert_eq!(Date::new(2020, 4, 1).unwrap().quarter(), 2);
        assert_eq!(Date::new(2020, 12, 25).unwrap().quarter(), 4);
    }

    #[test]
    fn parse_typed_values() {
        assert_eq!(
            Value::parse_typed("42", DataType::Int),
            Some(Value::Int(42))
        );
        assert_eq!(
            Value::parse_typed("4.5", DataType::Float),
            Some(Value::Float(4.5))
        );
        assert_eq!(
            Value::parse_typed("yes", DataType::Bool),
            Some(Value::Bool(true))
        );
        assert_eq!(Value::parse_typed("", DataType::Int), Some(Value::Null));
        assert_eq!(Value::parse_typed("zzz", DataType::Int), None);
        assert_eq!(
            Value::parse_typed("2020-05-06", DataType::Date),
            Some(Value::Date(Date::new(2020, 5, 6).unwrap()))
        );
    }

    #[test]
    fn float_display_keeps_decimal_point() {
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::Float(3.25).to_string(), "3.25");
    }

    #[test]
    fn type_rank_order() {
        let mut vs = [
            Value::Text("x".into()),
            Value::Date(Date::new(2020, 1, 1).unwrap()),
            Value::Int(5),
            Value::Bool(true),
            Value::Null,
        ];
        vs.sort();
        assert!(vs[0].is_null());
        assert!(matches!(vs[1], Value::Bool(_)));
        assert!(matches!(vs[2], Value::Int(_)));
        assert!(matches!(vs[3], Value::Date(_)));
        assert!(matches!(vs[4], Value::Text(_)));
    }
}
