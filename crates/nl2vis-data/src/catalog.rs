//! A catalog of databases, as nvBench spans 153 databases across domains.

use crate::database::Database;
use crate::error::DataError;
use std::collections::BTreeMap;

/// A multi-database catalog keyed by database name.
///
/// Iteration order is name-sorted (BTreeMap) so that corpus generation and
/// split assignment are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    databases: BTreeMap<String, Database>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Adds a database, replacing any database of the same name.
    pub fn add(&mut self, db: Database) {
        self.databases.insert(db.name().to_string(), db);
    }

    /// Borrows a database by name.
    pub fn database(&self, name: &str) -> Result<&Database, DataError> {
        self.databases
            .get(name)
            .ok_or_else(|| DataError::UnknownTable(name.to_string()))
    }

    /// Number of databases.
    pub fn len(&self) -> usize {
        self.databases.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.databases.is_empty()
    }

    /// All database names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.databases.keys().map(String::as_str).collect()
    }

    /// Iterates databases in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Database> {
        self.databases.values()
    }

    /// The set of distinct domains represented.
    pub fn domains(&self) -> Vec<&str> {
        let mut ds: Vec<&str> = self
            .databases
            .values()
            .map(|d| d.schema.domain.as_str())
            .collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }

    /// Validates every database.
    pub fn validate(&self) -> Result<(), DataError> {
        for db in self.databases.values() {
            db.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DatabaseSchema, TableDef};
    use crate::value::DataType::Int;

    fn db(name: &str, domain: &str) -> Database {
        let mut s = DatabaseSchema::new(name, domain);
        s.tables
            .push(TableDef::new("t", vec![ColumnDef::new("a", Int)]));
        Database::new(s)
    }

    #[test]
    fn add_and_lookup() {
        let mut c = Catalog::new();
        c.add(db("b_db", "sports"));
        c.add(db("a_db", "college"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.names(), vec!["a_db", "b_db"]);
        assert!(c.database("a_db").is_ok());
        assert!(c.database("zzz").is_err());
    }

    #[test]
    fn domains_deduped_sorted() {
        let mut c = Catalog::new();
        c.add(db("x", "sports"));
        c.add(db("y", "sports"));
        c.add(db("z", "college"));
        assert_eq!(c.domains(), vec!["college", "sports"]);
    }

    #[test]
    fn replace_same_name() {
        let mut c = Catalog::new();
        c.add(db("x", "sports"));
        c.add(db("x", "college"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.database("x").unwrap().schema.domain, "college");
    }
}
