//! A database: a schema plus populated tables, with referential-integrity
//! validation.

use crate::error::DataError;
use crate::schema::DatabaseSchema;
use crate::table::Table;
use std::collections::HashSet;

/// An in-memory database.
#[derive(Debug, Clone)]
pub struct Database {
    /// Schema (authoritative list of tables and foreign keys).
    pub schema: DatabaseSchema,
    /// Populated tables, parallel to `schema.tables`.
    tables: Vec<Table>,
}

impl Database {
    /// Creates a database with empty tables for every schema table.
    pub fn new(schema: DatabaseSchema) -> Database {
        let tables = schema
            .tables
            .iter()
            .map(|t| Table::new(t.clone()))
            .collect();
        Database { schema, tables }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Borrows a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Result<&Table, DataError> {
        self.tables
            .iter()
            .find(|t| t.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DataError::UnknownTable(name.to_string()))
    }

    /// Mutably borrows a table by case-insensitive name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DataError> {
        self.tables
            .iter_mut()
            .find(|t| t.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DataError::UnknownTable(name.to_string()))
    }

    /// All tables in schema order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Inserts a row into the named table.
    pub fn insert(&mut self, table: &str, row: Vec<crate::value::Value>) -> Result<(), DataError> {
        self.table_mut(table)?.push_row(row)
    }

    /// Validates primary keys and every foreign-key edge against current
    /// data. NULL foreign-key values are permitted (they reference nothing).
    pub fn validate(&self) -> Result<(), DataError> {
        for t in &self.tables {
            t.check_primary_key()?;
        }
        for fk in &self.schema.foreign_keys {
            let from = self.table(&fk.from_table)?;
            let to = self.table(&fk.to_table)?;
            let from_idx =
                from.def
                    .column_index(&fk.from_column)
                    .ok_or_else(|| DataError::UnknownColumn {
                        table: fk.from_table.clone(),
                        column: fk.from_column.clone(),
                    })?;
            let to_idx =
                to.def
                    .column_index(&fk.to_column)
                    .ok_or_else(|| DataError::UnknownColumn {
                        table: fk.to_table.clone(),
                        column: fk.to_column.clone(),
                    })?;
            let referents: HashSet<_> = to.column_values(to_idx).cloned().collect();
            for v in from.column_values(from_idx) {
                if !v.is_null() && !referents.contains(v) {
                    return Err(DataError::ForeignKeyViolation {
                        from: format!("{}.{}", fk.from_table, fk.from_column),
                        to: format!("{}.{}", fk.to_table, fk.to_column),
                        value: v.render(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ForeignKey, TableDef};
    use crate::value::DataType::*;
    use crate::value::Value;

    fn db() -> Database {
        let mut s = DatabaseSchema::new("shop", "retail");
        s.tables.push(
            TableDef::new(
                "customers",
                vec![
                    ColumnDef::new("customer_id", Int),
                    ColumnDef::new("name", Text),
                ],
            )
            .with_primary_key("customer_id"),
        );
        s.tables.push(TableDef::new(
            "orders",
            vec![
                ColumnDef::new("order_id", Int),
                ColumnDef::new("customer_id", Int),
            ],
        ));
        s.foreign_keys.push(ForeignKey::new(
            "orders",
            "customer_id",
            "customers",
            "customer_id",
        ));
        Database::new(s)
    }

    #[test]
    fn insert_and_validate_ok() {
        let mut d = db();
        d.insert("customers", vec![Value::Int(1), Value::from("ann")])
            .unwrap();
        d.insert("orders", vec![Value::Int(10), Value::Int(1)])
            .unwrap();
        d.validate().unwrap();
        assert_eq!(d.total_rows(), 2);
    }

    #[test]
    fn fk_violation_detected() {
        let mut d = db();
        d.insert("orders", vec![Value::Int(10), Value::Int(99)])
            .unwrap();
        assert!(matches!(
            d.validate(),
            Err(DataError::ForeignKeyViolation { .. })
        ));
    }

    #[test]
    fn null_fk_allowed() {
        let mut d = db();
        d.insert("orders", vec![Value::Int(10), Value::Null])
            .unwrap();
        d.validate().unwrap();
    }

    #[test]
    fn unknown_table_error() {
        let d = db();
        assert!(matches!(d.table("nope"), Err(DataError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_pk_detected() {
        let mut d = db();
        d.insert("customers", vec![Value::Int(1), Value::from("a")])
            .unwrap();
        d.insert("customers", vec![Value::Int(1), Value::from("b")])
            .unwrap();
        assert!(matches!(d.validate(), Err(DataError::DuplicateKey { .. })));
    }
}
