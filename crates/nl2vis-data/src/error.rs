//! Error types for the data layer.

use std::fmt;

/// Errors raised by the data layer (schema violations, parse failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A table name was not found in the database.
    UnknownTable(String),
    /// A column name was not found in the named table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// A row had the wrong number of cells for its table.
    RowArity {
        /// Table name.
        table: String,
        /// Expected cell count.
        expected: usize,
        /// Actual cell count.
        got: usize,
    },
    /// A cell's runtime type disagreed with the column's declared type.
    TypeMismatch {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Declared type name.
        expected: &'static str,
        /// Value found (rendered).
        got: String,
    },
    /// A foreign-key value had no matching row in the referenced table.
    ForeignKeyViolation {
        /// Referencing table.column.
        from: String,
        /// Referenced table.column.
        to: String,
        /// Offending value (rendered).
        value: String,
    },
    /// A duplicate primary-key value.
    DuplicateKey {
        /// Table name.
        table: String,
        /// Key value (rendered).
        value: String,
    },
    /// JSON parse error with byte offset.
    JsonParse {
        /// Byte offset of the failure.
        offset: usize,
        /// Description.
        message: String,
    },
    /// CSV parse error with line number.
    CsvParse {
        /// 1-based line.
        line: usize,
        /// Description.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DataError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            DataError::RowArity {
                table,
                expected,
                got,
            } => write!(
                f,
                "row in table `{table}` has {got} cells, expected {expected}"
            ),
            DataError::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "value `{got}` in `{table}.{column}` does not match declared type {expected}"
            ),
            DataError::ForeignKeyViolation { from, to, value } => {
                write!(
                    f,
                    "foreign key {from} -> {to}: value `{value}` has no referent"
                )
            }
            DataError::DuplicateKey { table, value } => {
                write!(f, "duplicate primary key `{value}` in table `{table}`")
            }
            DataError::JsonParse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            DataError::CsvParse { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DataError::UnknownColumn {
            table: "t".into(),
            column: "c".into(),
        };
        assert_eq!(e.to_string(), "unknown column `c` in table `t`");
        let e = DataError::RowArity {
            table: "t".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("2 cells"));
        let e = DataError::JsonParse {
            offset: 7,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("byte 7"));
    }
}
