//! A dependency-free JSON implementation.
//!
//! Object member order is preserved (insertion order) because Vega-Lite specs
//! and prompt serializations are compared textually in tests, and because the
//! paper's `Table2JSON` prompt format reads better with columns in schema
//! order.

use crate::error::DataError;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always stored as f64; integral values serialize without a
    /// decimal point).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Inserts/replaces a member on an object; no-op on other variants.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Object(members) = self {
            if let Some(slot) = members.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                members.push((key.to_string(), value));
            }
        }
    }

    /// Compact serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(input: &str) -> Result<Json, DataError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_nan() || n.is_infinite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> DataError {
        DataError::JsonParse {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DataError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, DataError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, DataError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, DataError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, DataError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, DataError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            // Find the next byte of interest, decoding UTF-8 runs wholesale.
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DataError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, DataError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Number(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

impl From<&crate::value::Value> for Json {
    fn from(v: &crate::value::Value) -> Json {
        use crate::value::Value;
        match v {
            Value::Null => Json::Null,
            Value::Int(i) => Json::Number(*i as f64),
            Value::Float(f) => Json::Number(*f),
            Value::Text(s) => Json::String(s.clone()),
            Value::Bool(b) => Json::Bool(*b),
            Value::Date(d) => Json::String(d.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let src = r#"{"a":[1,2.5,null,true,"x\ny"],"b":{"c":-3}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_compact(), src);
    }

    #[test]
    fn pretty_printing() {
        let v = Json::object(vec![("k", Json::Array(vec![Json::from(1i64)]))]);
        assert_eq!(v.to_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{} x").is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["{", "[1,", "\"abc", "{\"a\"}", "tru", "01a", "- 1", ""] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn escape_roundtrip() {
        let original = Json::String("a\"b\\c\nd\te\u{1}".to_string());
        let reparsed = Json::parse(&original.to_compact()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn numbers() {
        assert_eq!(Json::parse("3.5e2").unwrap().as_f64(), Some(350.0));
        assert_eq!(Json::parse("-7").unwrap().as_f64(), Some(-7.0));
        assert_eq!(Json::Number(3.0).to_compact(), "3");
        assert_eq!(Json::Number(3.25).to_compact(), "3.25");
        assert_eq!(Json::Number(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn object_access_and_set() {
        let mut v = Json::object(vec![("a", Json::from(1i64))]);
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert!(v.get("zz").is_none());
        v.set("a", Json::from(2i64));
        v.set("b", Json::from("x"));
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn member_order_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap().to_pretty(), "[]");
        assert_eq!(Json::parse("{}").unwrap().to_pretty(), "{}");
        assert_eq!(Json::parse("[ ]").unwrap(), Json::Array(vec![]));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" {\n\t\"a\" :\r [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.to_compact(), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn value_conversion() {
        use crate::value::{Date, Value};
        assert_eq!(Json::from(&Value::Null), Json::Null);
        assert_eq!(Json::from(&Value::Int(3)), Json::Number(3.0));
        assert_eq!(
            Json::from(&Value::Date(Date::new(2020, 1, 2).unwrap())),
            Json::String("2020-01-02".into())
        );
    }
}
