//! Minimal RFC-4180-style CSV reading and writing.
//!
//! Used by the `Table2CSV` prompt serialization and for exporting experiment
//! results. Fields containing commas, quotes or newlines are quoted; quotes
//! are doubled.

use crate::error::DataError;

/// Writes one CSV record (no trailing newline).
pub fn write_record(fields: &[String]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape_field(f));
    }
    out
}

/// Writes multiple rows as CSV text, one record per line with `\n`.
pub fn write_rows(rows: &[Vec<String>]) -> String {
    rows.iter()
        .map(|r| write_record(r))
        .collect::<Vec<_>>()
        .join("\n")
}

fn escape_field(f: &str) -> String {
    if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
        let mut s = String::with_capacity(f.len() + 2);
        s.push('"');
        for c in f.chars() {
            if c == '"' {
                s.push('"');
            }
            s.push(c);
        }
        s.push('"');
        s
    } else {
        f.to_string()
    }
}

/// Parses CSV text into records. Handles quoted fields, embedded newlines,
/// doubled quotes, and both `\n` and `\r\n` record separators. A trailing
/// newline does not produce an empty final record.
pub fn parse(input: &str) -> Result<Vec<Vec<String>>, DataError> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    let mut in_quotes = false;
    let mut any_char = false;

    while let Some(c) = chars.next() {
        any_char = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(DataError::CsvParse {
                            line,
                            message: "quote inside unquoted field".to_string(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataError::CsvParse {
            line,
            message: "unterminated quoted field".to_string(),
        });
    }
    if any_char && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_roundtrip() {
        let rows = vec![
            vec!["a".to_string(), "b".to_string()],
            vec!["1".to_string(), "2".to_string()],
        ];
        let text = write_rows(&rows);
        assert_eq!(text, "a,b\n1,2");
        assert_eq!(parse(&text).unwrap(), rows);
    }

    #[test]
    fn quoting_roundtrip() {
        let rows = vec![vec![
            "has,comma".to_string(),
            "has\"quote".to_string(),
            "has\nnewline".to_string(),
            "plain".to_string(),
        ]];
        let text = write_rows(&rows);
        assert_eq!(parse(&text).unwrap(), rows);
        assert!(text.contains("\"has,comma\""));
        assert!(text.contains("\"has\"\"quote\""));
    }

    #[test]
    fn crlf_records() {
        let parsed = parse("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(parsed, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn trailing_newline_no_empty_record() {
        assert_eq!(parse("a,b\n").unwrap().len(), 1);
        assert_eq!(parse("").unwrap().len(), 0);
    }

    #[test]
    fn empty_fields_preserved() {
        assert_eq!(parse("a,,c").unwrap(), vec![vec!["a", "", "c"]]);
        assert_eq!(parse(",").unwrap(), vec![vec!["", ""]]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(matches!(parse("\"abc"), Err(DataError::CsvParse { .. })));
    }

    #[test]
    fn stray_quote_is_error() {
        assert!(matches!(parse("ab\"c"), Err(DataError::CsvParse { .. })));
    }
}
