//! Row storage for a single table.

use crate::error::DataError;
use crate::schema::TableDef;
use crate::value::Value;

/// A table: a definition plus row data.
///
/// Rows are stored row-major (`Vec<Vec<Value>>`); tables in this system are
/// small (nvBench-scale, tens to thousands of rows) and the executor scans
/// them, so a columnar layout would buy little.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Schema of this table.
    pub def: TableDef,
    /// Row data; every row has `def.columns.len()` cells.
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table for a definition.
    pub fn new(def: TableDef) -> Table {
        Table {
            def,
            rows: Vec::new(),
        }
    }

    /// Appends a row after arity- and type-checking it.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), DataError> {
        if row.len() != self.def.columns.len() {
            return Err(DataError::RowArity {
                table: self.def.name.clone(),
                expected: self.def.columns.len(),
                got: row.len(),
            });
        }
        for (cell, col) in row.iter().zip(&self.def.columns) {
            if let Some(t) = cell.data_type() {
                if t != col.dtype {
                    return Err(DataError::TypeMismatch {
                        table: self.def.name.clone(),
                        column: col.name.clone(),
                        expected: col.dtype.name(),
                        got: cell.render(),
                    });
                }
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow all rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Borrow one row.
    pub fn row(&self, i: usize) -> Option<&[Value]> {
        self.rows.get(i).map(Vec::as_slice)
    }

    /// All values of one column by index.
    pub fn column_values(&self, col: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[col])
    }

    /// Distinct non-null values of a column, in first-appearance order.
    pub fn distinct_values(&self, col: usize) -> Vec<Value> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for v in self.column_values(col) {
            if !v.is_null() && seen.insert(v.clone()) {
                out.push(v.clone());
            }
        }
        out
    }

    /// The first `n` rows (used by `+Select`/`+Value` prompt variants).
    pub fn head(&self, n: usize) -> &[Vec<Value>] {
        &self.rows[..n.min(self.rows.len())]
    }

    /// Verifies primary-key uniqueness.
    pub fn check_primary_key(&self) -> Result<(), DataError> {
        let Some(pk) = self.def.primary_key else {
            return Ok(());
        };
        let mut seen = std::collections::HashSet::new();
        for row in &self.rows {
            if !seen.insert(row[pk].clone()) {
                return Err(DataError::DuplicateKey {
                    table: self.def.name.clone(),
                    value: row[pk].render(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType::*;

    fn t() -> Table {
        Table::new(
            TableDef::new(
                "people",
                vec![ColumnDef::new("id", Int), ColumnDef::new("name", Text)],
            )
            .with_primary_key("id"),
        )
    }

    #[test]
    fn push_and_read() {
        let mut tab = t();
        tab.push_row(vec![Value::Int(1), Value::Text("ann".into())])
            .unwrap();
        assert_eq!(tab.len(), 1);
        assert_eq!(tab.row(0).unwrap()[1], Value::Text("ann".into()));
    }

    #[test]
    fn arity_checked() {
        let mut tab = t();
        let err = tab.push_row(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            DataError::RowArity {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn type_checked_but_null_allowed() {
        let mut tab = t();
        let err = tab.push_row(vec![Value::Text("x".into()), Value::Text("y".into())]);
        assert!(matches!(err, Err(DataError::TypeMismatch { .. })));
        tab.push_row(vec![Value::Null, Value::Null]).unwrap();
    }

    #[test]
    fn primary_key_uniqueness() {
        let mut tab = t();
        tab.push_row(vec![Value::Int(1), Value::Text("a".into())])
            .unwrap();
        tab.push_row(vec![Value::Int(1), Value::Text("b".into())])
            .unwrap();
        assert!(matches!(
            tab.check_primary_key(),
            Err(DataError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn distinct_skips_nulls_and_dups() {
        let mut tab = t();
        tab.push_row(vec![Value::Int(1), Value::Text("a".into())])
            .unwrap();
        tab.push_row(vec![Value::Int(2), Value::Text("a".into())])
            .unwrap();
        tab.push_row(vec![Value::Int(3), Value::Null]).unwrap();
        assert_eq!(tab.distinct_values(1), vec![Value::Text("a".into())]);
    }

    #[test]
    fn head_caps_at_len() {
        let mut tab = t();
        tab.push_row(vec![Value::Int(1), Value::Text("a".into())])
            .unwrap();
        assert_eq!(tab.head(10).len(), 1);
        assert_eq!(tab.head(0).len(), 0);
    }
}
