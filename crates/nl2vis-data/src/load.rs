//! Loading user data: build a [`Database`] from CSV text with column-type
//! inference, so the pipeline runs over real data rather than only the
//! generated benchmark.

use crate::csv;
use crate::database::Database;
use crate::error::DataError;
use crate::schema::{ColumnDef, DatabaseSchema, TableDef};
use crate::value::{DataType, Date, Value};

/// Infers the narrowest [`DataType`] that accepts every non-empty cell of a
/// column: Int ⊂ Float; Date, Bool and Text are disjoint; mixed columns fall
/// back to Text. An all-empty column is Text.
pub fn infer_column_type<'a>(cells: impl Iterator<Item = &'a str>) -> DataType {
    let mut candidates = [
        (DataType::Int, true),
        (DataType::Float, true),
        (DataType::Date, true),
        (DataType::Bool, true),
    ];
    let mut saw_value = false;
    for cell in cells {
        let cell = cell.trim();
        if cell.is_empty() || cell.eq_ignore_ascii_case("null") {
            continue;
        }
        saw_value = true;
        for (dtype, ok) in candidates.iter_mut() {
            if *ok {
                *ok = match dtype {
                    DataType::Int => cell.parse::<i64>().is_ok(),
                    DataType::Float => cell.parse::<f64>().is_ok(),
                    DataType::Date => Date::parse(cell).is_some(),
                    DataType::Bool => matches!(
                        cell.to_ascii_lowercase().as_str(),
                        "true" | "false" | "yes" | "no" | "t" | "f"
                    ),
                    _ => false,
                };
            }
        }
    }
    if !saw_value {
        return DataType::Text;
    }
    for (dtype, ok) in candidates {
        if ok {
            return dtype;
        }
    }
    DataType::Text
}

/// Builds a database from named CSV tables. The first record of each CSV is
/// the header; column types are inferred from the data. Empty cells load as
/// NULL.
pub fn database_from_csv(
    name: &str,
    domain: &str,
    tables: &[(&str, &str)],
) -> Result<Database, DataError> {
    let mut schema = DatabaseSchema::new(name, domain);
    let mut parsed: Vec<(String, Vec<Vec<String>>, Vec<DataType>)> = Vec::new();

    for (table_name, text) in tables {
        let records = csv::parse(text)?;
        let Some((header, rows)) = records.split_first() else {
            return Err(DataError::CsvParse {
                line: 1,
                message: format!("table `{table_name}` has no header record"),
            });
        };
        for (i, row) in rows.iter().enumerate() {
            if row.len() != header.len() {
                return Err(DataError::CsvParse {
                    line: i + 2,
                    message: format!(
                        "table `{table_name}`: record has {} fields, header has {}",
                        row.len(),
                        header.len()
                    ),
                });
            }
        }
        let types: Vec<DataType> = (0..header.len())
            .map(|c| infer_column_type(rows.iter().map(|r| r[c].as_str())))
            .collect();
        let columns: Vec<ColumnDef> = header
            .iter()
            .zip(&types)
            .map(|(h, t)| ColumnDef::new(h.trim(), *t))
            .collect();
        schema.tables.push(TableDef::new(*table_name, columns));
        parsed.push((table_name.to_string(), rows.to_vec(), types));
    }

    schema
        .check()
        .map_err(|message| DataError::CsvParse { line: 0, message })?;

    let mut db = Database::new(schema);
    for (table_name, rows, types) in parsed {
        for (i, row) in rows.iter().enumerate() {
            let values: Result<Vec<Value>, DataError> = row
                .iter()
                .zip(&types)
                .map(|(cell, dtype)| {
                    Value::parse_typed(cell, *dtype).ok_or_else(|| DataError::TypeMismatch {
                        table: table_name.clone(),
                        column: String::new(),
                        expected: dtype.name(),
                        got: cell.clone(),
                    })
                })
                .collect();
            db.insert(
                &table_name,
                values.map_err(|e| match e {
                    DataError::TypeMismatch {
                        table,
                        expected,
                        got,
                        ..
                    } => DataError::CsvParse {
                        line: i + 2,
                        message: format!("table `{table}`: `{got}` is not a {expected}"),
                    },
                    other => other,
                })?,
            )?;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SALES: &str = "region,amount,ratio,day,vip\n\
        east,10,0.5,2024-01-01,true\n\
        west,25,1.25,2024-02-15,false\n\
        east,,0.75,2024-03-01,true\n";

    #[test]
    fn loads_with_inferred_types() {
        let db = database_from_csv("shop", "retail", &[("sales", SALES)]).unwrap();
        let t = db.table("sales").unwrap();
        let types: Vec<DataType> = t.def.columns.iter().map(|c| c.dtype).collect();
        assert_eq!(
            types,
            vec![
                DataType::Text,
                DataType::Int,
                DataType::Float,
                DataType::Date,
                DataType::Bool
            ]
        );
        assert_eq!(t.len(), 3);
        // Empty cell loads as NULL.
        assert!(t.row(2).unwrap()[1].is_null());
    }

    #[test]
    fn loaded_database_is_queryable() {
        let db = database_from_csv("shop", "retail", &[("sales", SALES)]).unwrap();
        // The facade query path is exercised in integration tests; here the
        // raw data must at least validate.
        db.validate().unwrap();
        assert_eq!(db.table("sales").unwrap().distinct_values(0).len(), 2);
    }

    #[test]
    fn type_inference_rules() {
        assert_eq!(infer_column_type(["1", "2"].into_iter()), DataType::Int);
        assert_eq!(infer_column_type(["1", "2.5"].into_iter()), DataType::Float);
        assert_eq!(
            infer_column_type(["2024-01-01"].into_iter()),
            DataType::Date
        );
        assert_eq!(
            infer_column_type(["true", "no"].into_iter()),
            DataType::Bool
        );
        assert_eq!(infer_column_type(["1", "x"].into_iter()), DataType::Text);
        assert_eq!(infer_column_type(["", ""].into_iter()), DataType::Text);
        assert_eq!(infer_column_type(["", "7"].into_iter()), DataType::Int);
    }

    #[test]
    fn header_only_and_ragged_rejected() {
        assert!(database_from_csv("d", "x", &[("t", "")]).is_err());
        let ragged = "a,b\n1\n";
        let err = database_from_csv("d", "x", &[("t", ragged)]).unwrap_err();
        assert!(matches!(err, DataError::CsvParse { line: 2, .. }));
    }

    #[test]
    fn multiple_tables() {
        let db =
            database_from_csv("d", "x", &[("a", "k,v\n1,one\n"), ("b", "k,w\n1,2\n")]).unwrap();
        assert_eq!(db.tables().len(), 2);
    }

    #[test]
    fn duplicate_table_names_rejected() {
        let err = database_from_csv("d", "x", &[("t", "a\n1\n"), ("t", "b\n2\n")]).unwrap_err();
        assert!(matches!(err, DataError::CsvParse { .. }));
    }
}
