//! Text utilities shared by the demonstration selector and schema linkers:
//! identifier tokenization, lowercase word extraction, and Jaccard
//! similarity (the paper selects demonstration rows and examples by Jaccard
//! similarity, §2.2.2 and §5.1.1).

use std::collections::HashSet;

/// Splits an identifier into lowercase word tokens: `snake_case`,
/// `kebab-case`, `camelCase`, `PascalCase` and digit boundaries are all word
/// breaks. `"orderID2"` → `["order", "id", "2"]`.
pub fn split_identifier(ident: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for c in ident.chars() {
        if c == '_' || c == '-' || c == ' ' || c == '.' {
            flush(&mut words, &mut current);
            prev_lower = false;
        } else if c.is_ascii_uppercase() {
            if prev_lower {
                flush(&mut words, &mut current);
            }
            current.push(c.to_ascii_lowercase());
            prev_lower = false;
        } else if c.is_ascii_digit() {
            if !current
                .chars()
                .next_back()
                .is_some_and(|p| p.is_ascii_digit())
                && !current.is_empty()
            {
                flush(&mut words, &mut current);
            }
            current.push(c);
            prev_lower = false;
        } else {
            current.push(c.to_ascii_lowercase());
            prev_lower = true;
        }
    }
    flush(&mut words, &mut current);
    words
}

fn flush(words: &mut Vec<String>, current: &mut String) {
    if !current.is_empty() {
        words.push(std::mem::take(current));
    }
}

/// Lowercase alphanumeric word tokens from free text. Punctuation is
/// discarded; digits stay attached to their run (`"top 5"` → `["top","5"]`).
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            current.push(c.to_ascii_lowercase());
        } else if !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Jaccard similarity of the word sets of two strings: |A∩B| / |A∪B|.
/// Returns 1.0 when both are empty.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = words(a).into_iter().collect();
    let sb: HashSet<String> = words(b).into_iter().collect();
    jaccard_sets(&sa, &sb)
}

/// Jaccard similarity of two pre-tokenized word sets.
pub fn jaccard_sets(sa: &HashSet<String>, sb: &HashSet<String>) -> f64 {
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(sb).count() as f64;
    let union = (sa.len() + sb.len()) as f64 - inter;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// Crude singularization for schema linking ("technicians" → "technician").
/// Handles the regular English plural suffixes that appear in generated
/// schemas; irregulars go through alias lists instead.
pub fn singularize(word: &str) -> String {
    if let Some(stem) = word.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    for suffix in ["ses", "xes", "zes", "ches", "shes"] {
        if let Some(stem) = word.strip_suffix(suffix) {
            return format!("{stem}{}", &suffix[..suffix.len() - 2]);
        }
    }
    if let Some(stem) = word.strip_suffix('s') {
        if !stem.ends_with('s') && stem.len() >= 2 {
            return stem.to_string();
        }
    }
    word.to_string()
}

/// Token-set equality after singularization; used to decide whether an NL
/// phrase names a schema identifier.
pub fn phrase_matches_identifier(phrase: &str, ident: &str) -> bool {
    let norm = |s: &str| -> Vec<String> {
        let mut w: Vec<String> = split_identifier(s).iter().map(|t| singularize(t)).collect();
        w.sort();
        w
    };
    norm(phrase) == norm(ident)
}

/// Approximate token count of a prompt string, for the paper's discussion of
/// LLM context-length limits. Counts word and punctuation chunks, roughly
/// matching GPT-style byte-pair tokenizers within a small constant factor.
pub fn approx_token_count(text: &str) -> usize {
    let mut count = 0usize;
    let mut in_word = false;
    for c in text.chars() {
        if c.is_alphanumeric() {
            if !in_word {
                count += 1;
                in_word = true;
            }
        } else {
            in_word = false;
            if !c.is_whitespace() {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_snake_camel_digits() {
        assert_eq!(split_identifier("order_id"), vec!["order", "id"]);
        assert_eq!(split_identifier("orderID2"), vec!["order", "id", "2"]);
        assert_eq!(
            split_identifier("CamelCaseName"),
            vec!["camel", "case", "name"]
        );
        assert_eq!(split_identifier("kebab-case"), vec!["kebab", "case"]);
        assert_eq!(split_identifier("a.b c"), vec!["a", "b", "c"]);
        assert!(split_identifier("").is_empty());
    }

    #[test]
    fn words_strip_punctuation() {
        assert_eq!(
            words("List the top 5, please!"),
            vec!["list", "the", "top", "5", "please"]
        );
    }

    #[test]
    fn jaccard_basic() {
        assert!((jaccard("a b c", "b c d") - 0.5).abs() < 1e-12);
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("x", ""), 0.0);
        assert_eq!(jaccard("same words", "words same"), 1.0);
    }

    #[test]
    fn singularize_rules() {
        assert_eq!(singularize("technicians"), "technician");
        assert_eq!(singularize("cities"), "city");
        assert_eq!(singularize("boxes"), "box");
        assert_eq!(singularize("matches"), "match");
        assert_eq!(singularize("glass"), "glass");
        assert_eq!(singularize("bus"), "bu"); // acceptable crudeness
        assert_eq!(singularize("is"), "is"); // too short to strip
    }

    #[test]
    fn phrase_identifier_match() {
        assert!(phrase_matches_identifier("customer names", "customer_name"));
        assert!(phrase_matches_identifier("OrderId", "order_id"));
        assert!(!phrase_matches_identifier("customer", "customer_name"));
    }

    #[test]
    fn token_count_rough() {
        assert_eq!(approx_token_count("hello world"), 2);
        assert_eq!(approx_token_count("a,b"), 3);
        assert_eq!(approx_token_count(""), 0);
        let long = "word ".repeat(100);
        assert_eq!(approx_token_count(&long), 100);
    }
}
