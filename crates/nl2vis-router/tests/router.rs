//! Router behavior: sticky affinity, shard hits, the hedge race (winner
//! selection, loser cancellation, gauge hygiene), failover, 429
//! penalties, ejection/readmission, and the all-ejected error.
//!
//! All assertions read the router's own [`RouterStats`] — never the
//! process-global registry — so concurrently running tests cannot bleed
//! into each other.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nl2vis_router::{ReplicaSpec, RouteLayer, Router, RouterConfig};
use nl2vis_service::{
    service_fn, stack_of, validate_stack, CompletionService, GenOptions, Layer, TransportError,
    TransportErrorKind,
};

fn opts() -> GenOptions {
    GenOptions::default()
}

/// A config with hedging tuned for fast tests and no active prober.
fn test_config() -> RouterConfig {
    RouterConfig {
        default_hedge_delay: Duration::from_millis(10),
        ..RouterConfig::default()
    }
}

/// Finds a prompt whose ring owner is the replica named `want`.
fn prompt_owned_by(router: &Router, want: &str) -> String {
    for i in 0..10_000 {
        let prompt = format!("Q: question {i}\nVQL:");
        if router.primary_replica(&prompt, &opts()) == want {
            return prompt;
        }
    }
    panic!("no prompt hashed to replica {want}");
}

/// Polls `cond` for up to `deadline`, sleeping between checks.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn same_prompt_sticks_to_one_replica_and_hits_its_shard() {
    let calls_a = Arc::new(AtomicUsize::new(0));
    let calls_b = Arc::new(AtomicUsize::new(0));
    let (ca, cb) = (Arc::clone(&calls_a), Arc::clone(&calls_b));
    let config = RouterConfig {
        shard_capacity: 64,
        hedge: false,
        ..test_config()
    };
    let router = Router::new(
        vec![
            ReplicaSpec::service(
                "a",
                service_fn("gpt-4", move |p, _| {
                    ca.fetch_add(1, Ordering::SeqCst);
                    Ok(format!("a:{p}"))
                }),
            ),
            ReplicaSpec::service(
                "b",
                service_fn("gpt-4", move |p, _| {
                    cb.fetch_add(1, Ordering::SeqCst);
                    Ok(format!("b:{p}"))
                }),
            ),
        ],
        config,
    );
    let prompt = prompt_owned_by(&router, "a");

    let first = router.call_detailed(&prompt, &opts());
    assert_eq!(first.outcome.unwrap(), format!("a:{prompt}"));
    assert_eq!(first.replica, "a");
    assert!(!first.shard_hit);

    for _ in 0..3 {
        let again = router.call_detailed(&prompt, &opts());
        assert_eq!(again.outcome.unwrap(), format!("a:{prompt}"));
        assert!(
            again.shard_hit,
            "repeat of an owned prompt must hit the shard"
        );
        assert_eq!(again.role, "shard");
    }

    let stats = router.stats().snapshot();
    assert_eq!(
        calls_a.load(Ordering::SeqCst),
        1,
        "one wire call, three shard hits"
    );
    assert_eq!(calls_b.load(Ordering::SeqCst), 0, "replica b never touched");
    assert_eq!(stats.shard_hits, 3);
    assert_eq!(stats.requests, 4);
}

#[test]
fn hedge_fires_at_the_delay_and_a_faster_secondary_wins() {
    let router = Router::new(
        vec![
            ReplicaSpec::service(
                "slow",
                service_fn("gpt-4", |_, _| {
                    std::thread::sleep(Duration::from_millis(150));
                    Ok("slow answer".to_string())
                }),
            ),
            ReplicaSpec::service(
                "fast",
                service_fn("gpt-4", |_, _| Ok("fast answer".to_string())),
            ),
        ],
        test_config(),
    );
    let prompt = prompt_owned_by(&router, "slow");

    let started = Instant::now();
    let call = router.call_detailed(&prompt, &opts());
    let elapsed = started.elapsed();

    assert_eq!(call.outcome.unwrap(), "fast answer");
    assert_eq!(call.replica, "fast");
    assert_eq!(call.role, "hedge");
    assert!(call.hedged);
    assert!(
        elapsed < Duration::from_millis(120),
        "the hedge must answer well before the stalled primary ({elapsed:?})"
    );
    let stats = router.stats().snapshot();
    assert_eq!(stats.hedges_fired, 1);
    assert_eq!(stats.hedge_wins, 1);
    assert_eq!(stats.primary_wins, 0);
}

#[test]
fn errored_hedge_never_masks_a_successful_primary() {
    let router = Router::new(
        vec![
            ReplicaSpec::service(
                "steady",
                service_fn("gpt-4", |_, _| {
                    std::thread::sleep(Duration::from_millis(60));
                    Ok("primary answer".to_string())
                }),
            ),
            ReplicaSpec::service(
                "broken",
                service_fn("gpt-4", |_, _| {
                    Err(TransportError::new(
                        TransportErrorKind::Connect,
                        1,
                        "connection refused",
                    ))
                }),
            ),
        ],
        test_config(),
    );
    let prompt = prompt_owned_by(&router, "steady");

    let call = router.call_detailed(&prompt, &opts());
    assert_eq!(
        call.outcome.unwrap(),
        "primary answer",
        "the hedge's error must not preempt the primary's success"
    );
    assert_eq!(call.role, "primary");
    let stats = router.stats().snapshot();
    assert_eq!(stats.hedges_fired, 1, "the hedge did fire");
    assert_eq!(stats.hedge_wins, 0);
    assert_eq!(stats.primary_wins, 1);
}

#[test]
fn losing_attempt_is_discarded_and_inflight_settles_to_zero() {
    let router = Arc::new(Router::new(
        vec![
            ReplicaSpec::service(
                "laggard",
                service_fn("gpt-4", |_, _| {
                    std::thread::sleep(Duration::from_millis(120));
                    Ok("late loser".to_string())
                }),
            ),
            ReplicaSpec::service(
                "sprinter",
                service_fn("gpt-4", |_, _| Ok("winner".to_string())),
            ),
        ],
        test_config(),
    ));
    let prompt = prompt_owned_by(&router, "laggard");

    let call = router.call_detailed(&prompt, &opts());
    assert_eq!(
        call.outcome.unwrap(),
        "winner",
        "loser's text must be discarded"
    );

    // The losing primary is still running when the call returns; its
    // guard must decrement the gauge exactly once when it drains.
    assert!(
        wait_until(Duration::from_secs(2), || router.stats().inflight() == 0),
        "in-flight gauge stuck at {} after the loser drained",
        router.stats().inflight()
    );
    // A second, un-hedged request leaves the gauge balanced too — a
    // double decrement by the first race would show up as -1 here.
    let call = router.call_detailed(&prompt, &opts());
    assert!(call.outcome.is_ok());
    assert!(wait_until(Duration::from_secs(2), || {
        router.stats().inflight() == 0
    }));
    assert_eq!(router.stats().inflight(), 0, "gauge must never go negative");
}

#[test]
fn fast_primary_error_fails_over_without_waiting_for_the_hedge_timer() {
    let config = RouterConfig {
        // A timer far above the test budget: only error-failover can win.
        default_hedge_delay: Duration::from_millis(500),
        ..RouterConfig::default()
    };
    let router = Router::new(
        vec![
            ReplicaSpec::service(
                "down",
                service_fn("gpt-4", |_, _| {
                    Err(TransportError::new(
                        TransportErrorKind::Connect,
                        1,
                        "connection refused",
                    ))
                }),
            ),
            ReplicaSpec::service("up", service_fn("gpt-4", |_, _| Ok("backup".to_string()))),
        ],
        config,
    );
    let prompt = prompt_owned_by(&router, "down");

    let started = Instant::now();
    let call = router.call_detailed(&prompt, &opts());
    assert_eq!(call.outcome.unwrap(), "backup");
    assert_eq!(call.role, "failover");
    assert!(!call.hedged, "failover is not a latency hedge");
    assert!(
        started.elapsed() < Duration::from_millis(300),
        "failover must not wait out the hedge timer"
    );
    let stats = router.stats().snapshot();
    assert_eq!(stats.failovers, 1);
    assert_eq!(stats.hedges_fired, 0);
}

#[test]
fn retry_after_penalty_routes_the_key_around_the_replica() {
    let config = RouterConfig {
        hedge: false,
        ..test_config()
    };
    let router = Router::new(
        vec![
            ReplicaSpec::service(
                "overloaded",
                service_fn("gpt-4", |_, _| {
                    let mut e = TransportError::new(TransportErrorKind::Status(429), 1, "shed");
                    e.retry_after = Some(Duration::from_secs(10));
                    Err(e)
                }),
            ),
            ReplicaSpec::service("calm", service_fn("gpt-4", |_, _| Ok("served".to_string()))),
        ],
        config,
    );
    let prompt = prompt_owned_by(&router, "overloaded");

    // First call pays the 429 and fails over; the Retry-After opens a
    // 10-second penalty window on the owner.
    let first = router.call_detailed(&prompt, &opts());
    assert_eq!(first.outcome.unwrap(), "served");
    assert_eq!(first.role, "failover");

    // Inside the window the owner is skipped outright: the next replica
    // is the *primary* candidate now, no failover needed.
    let second = router.call_detailed(&prompt, &opts());
    assert_eq!(second.outcome.unwrap(), "served");
    assert_eq!(second.replica, "calm");
    assert_eq!(second.role, "primary");

    let stats = router.stats().snapshot();
    assert_eq!(stats.penalties, 1);
    assert_eq!(stats.failovers, 1, "only the discovering call failed over");
    assert!(stats.penalty_deferrals >= 1);
}

#[test]
fn all_replicas_ejected_is_a_typed_error_not_a_hang() {
    let config = RouterConfig {
        eject_after: 1,
        hedge: false,
        ..test_config()
    };
    let router = Router::new(
        vec![
            ReplicaSpec::service(
                "dead-1",
                service_fn("gpt-4", |_, _| {
                    Err(TransportError::new(
                        TransportErrorKind::Connect,
                        1,
                        "refused",
                    ))
                }),
            ),
            ReplicaSpec::service(
                "dead-2",
                service_fn("gpt-4", |_, _| {
                    Err(TransportError::new(
                        TransportErrorKind::Connect,
                        1,
                        "refused",
                    ))
                }),
            ),
        ],
        config,
    );

    // The discovering call ejects both replicas (primary + failover).
    let first = router.call_detailed("Q: q0\nVQL:", &opts());
    assert!(first.outcome.is_err());
    assert!(wait_until(Duration::from_secs(2), || {
        router.stats().snapshot().ejections == 2
    }));

    let started = Instant::now();
    let second = router.call_detailed("Q: q1\nVQL:", &opts());
    let err = second.outcome.unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Connect);
    assert!(
        err.message.contains("ejected"),
        "error must name the condition: {}",
        err.message
    );
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "an all-ejected router must answer immediately, not hang"
    );
    assert_eq!(router.stats().snapshot().all_ejected, 1);
}

#[test]
fn without_probes_ejection_is_sticky_even_after_the_backend_recovers() {
    // The replica recovers mid-test, but with no active prober nothing
    // re-tests it: the router keeps answering the typed all-ejected error
    // instead of silently probing with live traffic. (Deployments that
    // want automatic readmission configure `health_interval`.)
    let broken = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&broken);
    let config = RouterConfig {
        eject_after: 1,
        hedge: false,
        ..test_config()
    };
    let router = Router::new(
        vec![ReplicaSpec::service(
            "solo",
            service_fn("gpt-4", move |_, _| {
                if flag.load(Ordering::SeqCst) {
                    Err(TransportError::new(TransportErrorKind::Timeout, 1, "stall"))
                } else {
                    Ok("back".to_string())
                }
            }),
        )],
        config,
    );

    assert!(router.call_detailed("Q: a\nVQL:", &opts()).outcome.is_err());
    assert!(wait_until(Duration::from_secs(2), || {
        router.stats().snapshot().ejections == 1
    }));

    broken.store(false, Ordering::SeqCst);
    let after_recovery = router.call_detailed("Q: b\nVQL:", &opts());
    let err = after_recovery.outcome.unwrap_err();
    assert!(err.message.contains("ejected"), "{}", err.message);
    assert!(router.stats().snapshot().all_ejected >= 1);
}

#[test]
fn health_probes_eject_and_readmit_a_replica() {
    use std::io::{Read, Write};

    // A raw /healthz endpoint whose status is switchable at runtime.
    let healthy = Arc::new(AtomicBool::new(true));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let health_addr = listener.local_addr().unwrap();
    let flag = Arc::clone(&healthy);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let mut buf = [0u8; 512];
            let _ = stream.read(&mut buf);
            let status = if flag.load(Ordering::SeqCst) {
                "HTTP/1.1 200 OK"
            } else {
                "HTTP/1.1 503 Service Unavailable"
            };
            let _ = write!(
                stream,
                "{status}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
            );
        }
    });

    let config = RouterConfig {
        hedge: false,
        eject_after: 2,
        health_interval: Some(Duration::from_millis(25)),
        ..RouterConfig::default()
    };
    let router = Router::new(
        vec![
            ReplicaSpec::service(
                "probed",
                service_fn("gpt-4", |_, _| Ok("from probed".to_string())),
            )
            .with_health_addr(health_addr),
            ReplicaSpec::service(
                "other",
                service_fn("gpt-4", |_, _| Ok("from other".to_string())),
            ),
        ],
        config,
    );
    let prompt = prompt_owned_by(&router, "probed");
    assert_eq!(
        router.call_detailed(&prompt, &opts()).replica,
        "probed",
        "healthy replica serves its own keyspace"
    );

    healthy.store(false, Ordering::SeqCst);
    assert!(
        wait_until(Duration::from_secs(3), || {
            router.stats().snapshot().ejections >= 1
        }),
        "failed probes must eject the replica"
    );
    assert_eq!(
        router.call_detailed(&prompt, &opts()).replica,
        "other",
        "ejected replica's keyspace moves to the next ring candidate"
    );

    healthy.store(true, Ordering::SeqCst);
    assert!(
        wait_until(Duration::from_secs(3), || {
            router.stats().snapshot().readmissions >= 1
        }),
        "healthy probes must readmit the replica"
    );
    assert_eq!(
        router.call_detailed(&prompt, &opts()).replica,
        "probed",
        "readmitted replica gets its keyspace (and warm shard) back"
    );
}

#[test]
fn route_layer_composes_under_the_stack_contract() {
    let layer = RouteLayer::new(RouterConfig {
        hedge: false,
        ..test_config()
    })
    .with_peer(ReplicaSpec::service(
        "peer",
        service_fn("gpt-4", |_, _| Ok("peer".to_string())),
    ));
    let router = layer.layer(service_fn("gpt-4", |_, _| Ok("inner".to_string())));

    assert_eq!(router.model(), "gpt-4");
    assert_eq!(router.replica_count(), 2);
    let stack = stack_of(&router);
    assert_eq!(stack, vec!["route", "fn"]);
    validate_stack(&stack).unwrap();
    // The canonical full ordering stays legal with route innermost-but-leaf.
    validate_stack(&["trace", "metrics", "cache", "retry", "route", "http"]).unwrap();

    assert!(router.call("Q: x\nVQL:", &opts()).is_ok());
}
