//! The acceptance demo: a hedged request over two live HTTP replicas
//! renders as ONE trace tree — `router.request` at the top, a
//! `router.attempt` per racer (role-annotated), each with the replica's
//! own `server.handle` span stitched under it via the trace headers the
//! attempt thread injected — and `/trace/<id>` served by either replica
//! shows the whole race with the winner marked.
//!
//! Runs in its own test binary because the flight recorder is process
//! global.

use std::sync::Arc;
use std::time::Duration;

use nl2vis_llm::fault::FaultInjector;
use nl2vis_llm::http::CompletionServer;
use nl2vis_llm::profile::ModelProfile;
use nl2vis_llm::sim::SimLlm;
use nl2vis_obs::recorder::{self, FlightRecorder};
use nl2vis_obs::{MetricsRegistry, Span};
use nl2vis_router::{Router, RouterConfig};
use nl2vis_service::GenOptions;

/// One `GET` over a throwaway connection; returns (status, body).
fn raw_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    use std::io::{BufRead, BufReader, Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8_lossy(&body).to_string())
}

#[test]
fn hedged_request_renders_as_one_trace_tree_with_the_winner_marked() {
    recorder::install(Arc::new(FlightRecorder::new(256)));

    // Replica A stalls every completion by 150ms; replica B is prompt.
    let slow = CompletionServer::start_with_faults(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::new(MetricsRegistry::new()),
        FaultInjector::random(7, 0.0, 0.0, 1.0, Duration::from_millis(150)),
    )
    .unwrap();
    let fast = CompletionServer::start_with_registry(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::new(MetricsRegistry::new()),
    )
    .unwrap();

    let config = RouterConfig {
        default_hedge_delay: Duration::from_millis(15),
        ..RouterConfig::default()
    };
    let router = Router::over_http(&[slow.address(), fast.address()], "gpt-4", config);
    let slow_id = slow.address().to_string();
    let fast_id = fast.address().to_string();

    // A prompt whose ring owner is the stalled replica, so the hedge must
    // fire and the fast replica must win the race.
    let opts = GenOptions::default();
    let prompt = (0..10_000)
        .map(|i| {
            format!("-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:")
        })
        .find(|p| router.primary_replica(p, &opts) == slow_id)
        .expect("some prompt hashes to the slow replica");

    let root = Span::enter_root("client.request");
    let trace_id = nl2vis_obs::current_context().unwrap().trace_id;
    let call = router.call_detailed(&prompt, &opts);
    assert!(
        call.outcome.is_ok(),
        "hedged call failed: {:?}",
        call.outcome
    );
    assert!(call.hedged, "the stalled primary must trigger a hedge");
    assert_eq!(call.replica, fast_id, "the fast replica wins the race");
    assert_eq!(call.role, "hedge");

    // Let the losing primary drain so its span (and the slow replica's
    // server.handle) are part of the record before the root closes.
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while router.stats().inflight() != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(router.stats().inflight(), 0, "loser never drained");
    drop(root);

    // Either replica can serve the stitched trace; ask the *loser*.
    let (status, body) = raw_get(slow.address(), &format!("/trace/{trace_id}"));
    assert_eq!(status, 200, "trace endpoint: {body}");

    assert!(body.contains(r#""name":"router.request""#), "{body}");
    assert_eq!(
        body.matches(r#""name":"router.attempt""#).count(),
        2,
        "both racers must appear in one tree: {body}"
    );
    assert!(
        body.matches(r#""name":"server.handle""#).count() >= 2,
        "each replica's server span must stitch under its attempt: {body}"
    );
    assert!(body.contains(r#""role":"primary""#), "{body}");
    assert!(body.contains(r#""role":"hedge""#), "{body}");
    assert!(
        body.contains(&format!(r#""winner":"{fast_id}""#)),
        "winner must be annotated on the request span: {body}"
    );
    assert!(body.contains(r#""winner_role":"hedge""#), "{body}");
    assert!(body.contains(r#""hedged":"true""#), "{body}");
}
