//! Fleet-plane acceptance: two live HTTP replicas behind a router, a
//! [`FleetObserver`] scraping both, and a [`FleetServer`] proving that
//! (a) the fleet-merged request count is exactly the sum of the
//! per-replica counts, (b) fleet-served percentiles equal the merge of
//! the replicas' own wire snapshots bucket-for-bucket, (c) SLO gauges
//! publish from the merged view, and (d) a hedged request's
//! `/fleet/trace/<id>` is one stitched tree with a `server.handle` under
//! each `router.attempt`.
//!
//! Runs in its own test binary because the flight recorder is process
//! global.

use std::sync::Arc;
use std::time::Duration;

use nl2vis_data::Json;
use nl2vis_llm::fault::FaultInjector;
use nl2vis_llm::http::CompletionServer;
use nl2vis_llm::profile::ModelProfile;
use nl2vis_llm::sim::SimLlm;
use nl2vis_obs::recorder::{self, FlightRecorder};
use nl2vis_obs::{MetricsRegistry, Span};
use nl2vis_router::fleet::{parse_snapshot, FleetConfig, FleetObserver, FleetServer};
use nl2vis_router::{Router, RouterConfig};
use nl2vis_service::GenOptions;

/// One `GET` over a throwaway connection; returns (status, body).
fn raw_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    use std::io::{BufRead, BufReader, Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8_lossy(&body).to_string())
}

fn sql_prompt(i: usize) -> String {
    format!("-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:")
}

#[test]
fn fleet_plane_merges_metrics_publishes_slos_and_stitches_hedged_traces() {
    recorder::install(Arc::new(FlightRecorder::new(256)));

    // Replica A stalls every completion by 150ms; replica B is prompt.
    let slow = CompletionServer::start_with_faults(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::new(MetricsRegistry::new()),
        FaultInjector::random(7, 0.0, 0.0, 1.0, Duration::from_millis(150)),
    )
    .unwrap();
    let fast = CompletionServer::start_with_registry(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::new(MetricsRegistry::new()),
    )
    .unwrap();
    let addrs = [slow.address(), fast.address()];

    let config = RouterConfig {
        default_hedge_delay: Duration::from_millis(15),
        ..RouterConfig::default()
    };
    let router = Router::over_http(&addrs, "gpt-4", config);
    let slow_id = slow.address().to_string();

    let observer = FleetObserver::new(&addrs, FleetConfig::default());
    let fleet = FleetServer::start(Arc::clone(&observer)).unwrap();

    // Spread some plain traffic over both replicas, then drive one
    // request whose ring owner is the stalled replica so the hedge fires.
    let opts = GenOptions::default();
    for i in 0..6 {
        let call = router.call_detailed(&sql_prompt(i), &opts);
        assert!(call.outcome.is_ok(), "warmup call {i}: {:?}", call.outcome);
    }
    let prompt = (0..10_000)
        .map(sql_prompt)
        .find(|p| router.primary_replica(p, &opts) == slow_id)
        .expect("some prompt hashes to the slow replica");

    let root = Span::enter_root("client.request");
    let trace_id = nl2vis_obs::current_context().unwrap().trace_id;
    let call = router.call_detailed(&prompt, &opts);
    assert!(call.outcome.is_ok(), "hedged call: {:?}", call.outcome);
    assert!(call.hedged, "the stalled primary must trigger a hedge");

    // Let the losing primary drain so both server.handle spans exist.
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while router.stats().inflight() != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(router.stats().inflight(), 0, "loser never drained");
    drop(root);

    // --- Metrics: scrape both replicas directly, then make the observer
    // take a fresh poll; no traffic moves in between, so the fleet view
    // must equal the direct merge exactly.
    let scrape = |addr| {
        let (status, body) = raw_get(addr, "/metrics.json");
        assert_eq!(status, 200, "{body}");
        parse_snapshot(&body).expect("replica snapshot decodes")
    };
    let (snap_slow, snap_fast) = (scrape(slow.address()), scrape(fast.address()));
    observer.poll_once();

    let (status, body) = raw_get(fleet.address(), "/fleet/metrics");
    assert_eq!(status, 200, "{body}");
    let merged = parse_snapshot(&body).expect("fleet metrics is itself a mergeable snapshot");
    assert_eq!(merged.sources, 2);
    assert_eq!(
        merged.counter("llm.requests_total"),
        snap_slow.counter("llm.requests_total") + snap_fast.counter("llm.requests_total"),
        "fleet count must be the exact per-replica sum"
    );
    assert!(merged.counter("llm.requests_total") >= 7);

    // Percentile exactness over the wire path: merging the two directly
    // scraped snapshots must reproduce the fleet histogram bucket-for-
    // bucket, hence quantile-for-quantile.
    let mut direct = snap_slow.clone();
    direct.merge(&snap_fast);
    let fleet_hist = &merged.histograms["llm.request_latency_us"];
    let direct_hist = &direct.histograms["llm.request_latency_us"];
    assert_eq!(fleet_hist, direct_hist, "bucket-exact fleet merge");
    for q in [0.5, 0.95, 0.99] {
        assert_eq!(fleet_hist.quantile(q), direct_hist.quantile(q));
    }

    // --- SLO gauges published globally from the merged view.
    let (status, body) = raw_get(fleet.address(), "/fleet/stats");
    assert_eq!(status, 200, "{body}");
    let stats = Json::parse(&body).expect("fleet stats parses");
    assert_eq!(stats.get("replicas_ok").and_then(Json::as_f64), Some(2.0));
    let slo = stats.get("slo").and_then(Json::as_array).unwrap();
    let names: Vec<&str> = slo
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, vec!["latency", "availability"]);
    assert_eq!(
        nl2vis_obs::global()
            .gauge("slo.availability.fast_good_milli")
            .get(),
        1000,
        "nothing was shed, availability attainment is 100%"
    );
    let rows = stats.get("replicas").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows
        .iter()
        .all(|r| r.get("ok").and_then(Json::as_bool) == Some(true)));

    // --- The hedged trace, stitched by the fleet plane.
    let (status, body) = raw_get(fleet.address(), &format!("/fleet/trace/{trace_id}"));
    assert_eq!(status, 200, "{body}");
    let trace = Json::parse(&body).expect("stitched trace parses");
    assert_eq!(trace.get("stitched").and_then(Json::as_bool), Some(true));
    assert_eq!(
        body.matches(r#""name":"router.attempt""#).count(),
        2,
        "both racers in one stitched tree: {body}"
    );
    assert!(
        body.matches(r#""name":"server.handle""#).count() >= 2,
        "each replica's server span present: {body}"
    );
    // Walk the tree: every attempt's subtree carries a server.handle.
    let tree = trace.get("tree").and_then(Json::as_array).unwrap();
    assert_eq!(tree.len(), 1, "one root: {body}");
    fn attempts_with_handles(node: &Json, found: &mut usize) {
        if node.get("name").and_then(Json::as_str) == Some("router.attempt") {
            let subtree = node.to_compact();
            if subtree.contains(r#""name":"server.handle""#) {
                *found += 1;
            }
        }
        if let Some(children) = node.get("children").and_then(Json::as_array) {
            for child in children {
                attempts_with_handles(child, found);
            }
        }
    }
    let mut covered = 0;
    attempts_with_handles(&tree[0], &mut covered);
    assert_eq!(covered, 2, "a server.handle under each attempt: {body}");

    // --- Error surfaces stay JSON through the fleet layer.
    let (status, body) = raw_get(fleet.address(), "/fleet/trace/999999999");
    assert_eq!(status, 404, "{body}");
    assert!(Json::parse(&body).is_ok(), "fleet 404 is JSON: {body}");
    let (status, _) = raw_get(fleet.address(), "/fleet/trace/banana");
    assert_eq!(status, 400);
    let (status, body) = raw_get(fleet.address(), "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("fleet-observer"));
}
