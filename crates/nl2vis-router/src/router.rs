//! The [`Router`]: a client-side replica selector with prompt affinity,
//! health ejection, 429 penalties, and hedged requests.
//!
//! Request flow:
//!
//! 1. The canonical completion key (the same string the cache layer keys
//!    on) hashes onto the [`crate::ring::Ring`]; the owning replica is the
//!    *primary* and the subsequent ring order is the failover list.
//!    Ejected replicas are skipped; penalized replicas (an open 429
//!    `Retry-After` window) sort after healthy ones.
//! 2. The primary's per-replica cache shard answers hits without touching
//!    the wire.
//! 3. On a miss, the primary attempt runs on its own thread. If it hasn't
//!    answered within the primary's observed p95 (sliding window, clamped),
//!    a *hedge* fires at the next candidate; if the primary *errors*
//!    before the hedge timer, a *failover* fires instead. First success
//!    wins; the loser's result is discarded when it lands. An errored
//!    hedge never masks a primary that later succeeds, and the request
//!    errors only after every spawned attempt has errored (the primary's
//!    error is the one reported).
//!
//! Every attempt runs under a `router.attempt` span parented to the
//! request's `router.request` span, so a hedge race renders as one trace
//! tree with the winner annotated — `/trace/<id>` on any replica sharing
//! the process flight recorder shows the whole race.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nl2vis_cache::completion_key;
use nl2vis_obs::span::{current_context, Span, TraceContext};
use nl2vis_obs::{self as obs, registry};
use nl2vis_service::{
    CompletionOutcome, CompletionService, GenOptions, Layer, TransportError, TransportErrorKind,
};

use crate::replica::{probe_healthz, Replica, ReplicaSpec};
use crate::ring::Ring;

/// Routing, hedging, and health policy.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// Master switch for latency hedging (failover on error still works
    /// when off).
    pub hedge: bool,
    /// Hedge trigger before a replica has [`Self::hedge_min_samples`]
    /// latency observations.
    pub default_hedge_delay: Duration,
    /// Samples required before the windowed p95 drives the trigger.
    pub hedge_min_samples: u64,
    /// Clamp band for the adaptive trigger: never hedge earlier than the
    /// floor (protects against a p95 collapsed by cache-fast samples) nor
    /// later than the ceiling.
    pub hedge_delay_floor: Duration,
    pub hedge_delay_ceiling: Duration,
    /// Consecutive transport failures (or failed probes) that eject a
    /// replica.
    pub eject_after: u32,
    /// Penalty window for a 429 that advertised no `Retry-After`.
    pub default_penalty: Duration,
    /// Per-replica completion-cache shard capacity; 0 disables shards.
    pub shard_capacity: usize,
    /// Active `/healthz` probe cadence; `None` disables the prober (only
    /// passive ejection/readmission then).
    pub health_interval: Option<Duration>,
    /// Connect/read deadline for one probe.
    pub probe_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            vnodes: 32,
            hedge: true,
            default_hedge_delay: Duration::from_millis(25),
            hedge_min_samples: 20,
            hedge_delay_floor: Duration::from_millis(2),
            hedge_delay_ceiling: Duration::from_millis(500),
            eject_after: 3,
            default_penalty: Duration::from_millis(50),
            shard_capacity: 0,
            health_interval: None,
            probe_timeout: Duration::from_millis(200),
        }
    }
}

/// Router counters, kept on the router (not only the process-global
/// registry) so tests and per-run reports are immune to unrelated traffic
/// in the same process.
#[derive(Default)]
pub struct RouterStats {
    requests: AtomicU64,
    shard_hits: AtomicU64,
    hedges_fired: AtomicU64,
    hedge_wins: AtomicU64,
    primary_wins: AtomicU64,
    failovers: AtomicU64,
    penalties: AtomicU64,
    penalty_deferrals: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
    all_ejected: AtomicU64,
    inflight: AtomicI64,
}

/// A plain-value copy of [`RouterStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStatsSnapshot {
    pub requests: u64,
    pub shard_hits: u64,
    pub hedges_fired: u64,
    pub hedge_wins: u64,
    pub primary_wins: u64,
    pub failovers: u64,
    pub penalties: u64,
    pub penalty_deferrals: u64,
    pub ejections: u64,
    pub readmissions: u64,
    pub all_ejected: u64,
    pub inflight: i64,
}

impl RouterStats {
    fn bump(&self, field: &AtomicU64, metric: &str) {
        field.fetch_add(1, Ordering::Relaxed);
        obs::count(metric, 1);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> RouterStatsSnapshot {
        RouterStatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            shard_hits: self.shard_hits.load(Ordering::Relaxed),
            hedges_fired: self.hedges_fired.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            primary_wins: self.primary_wins.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            penalties: self.penalties.load(Ordering::Relaxed),
            penalty_deferrals: self.penalty_deferrals.load(Ordering::Relaxed),
            ejections: self.ejections.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            all_ejected: self.all_ejected.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
        }
    }

    /// Attempts currently on the wire (includes losers still draining).
    pub fn inflight(&self) -> i64 {
        self.inflight.load(Ordering::Relaxed)
    }
}

/// Balances the in-flight gauge exactly once per attempt, however the
/// attempt thread exits.
struct InflightGuard {
    stats: Arc<RouterStats>,
}

impl InflightGuard {
    fn enter(stats: &Arc<RouterStats>) -> InflightGuard {
        stats.inflight.fetch_add(1, Ordering::Relaxed);
        registry::global().gauge("router.inflight").add(1);
        InflightGuard {
            stats: Arc::clone(stats),
        }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.stats.inflight.fetch_sub(1, Ordering::Relaxed);
        registry::global().gauge("router.inflight").add(-1);
    }
}

/// One request's routing outcome, for callers (the load generator) that
/// account hits and hedge wins, not just text.
#[derive(Debug)]
pub struct RoutedCall {
    pub outcome: CompletionOutcome,
    /// Id of the replica that answered (primary candidate's id on error).
    pub replica: String,
    /// `"shard"`, `"primary"`, `"hedge"`, or `"failover"`.
    pub role: &'static str,
    /// Whether a latency hedge was fired for this request.
    pub hedged: bool,
    /// Whether the per-replica cache shard answered.
    pub shard_hit: bool,
}

/// A finished attempt parked in the race state.
struct RaceSlot {
    outcome: CompletionOutcome,
    replica: usize,
}

/// Two-slot race: slot 0 is the primary, slot 1 the hedge/failover.
#[derive(Default)]
struct Race {
    slots: Mutex<[Option<RaceSlot>; 2]>,
    cv: Condvar,
}

struct HealthChecker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for HealthChecker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The replica router. Implements [`CompletionService`] (tag `"route"`),
/// so it composes under the cache and retry layers —
/// `Cache(Retry(Route(..)))` is the canonical stack and
/// [`nl2vis_service::validate_stack`] enforces that ordering.
pub struct Router {
    model: String,
    replicas: Arc<Vec<Replica>>,
    ring: Ring,
    config: RouterConfig,
    epoch: Instant,
    stats: Arc<RouterStats>,
    /// Held for its Drop: stops and joins the prober thread.
    _health: Option<HealthChecker>,
}

impl Router {
    /// Builds a router over `specs` (at least one replica required).
    /// Starts the active health checker when the config asks for one and
    /// any replica has a health address.
    pub fn new(specs: Vec<ReplicaSpec>, config: RouterConfig) -> Router {
        assert!(!specs.is_empty(), "router needs at least one replica");
        let model = specs[0].service.model().to_string();
        let ids: Vec<String> = specs.iter().map(|s| s.id.clone()).collect();
        let ring = Ring::new(&ids, config.vnodes);
        let replicas: Arc<Vec<Replica>> = Arc::new(
            specs
                .into_iter()
                .map(|spec| Replica::new(spec, &config))
                .collect(),
        );
        let stats = Arc::new(RouterStats::default());
        let health = config.health_interval.and_then(|interval| {
            replicas.iter().any(|r| r.health_addr.is_some()).then(|| {
                spawn_health_checker(
                    Arc::clone(&replicas),
                    Arc::clone(&stats),
                    interval,
                    config.probe_timeout,
                    config.eject_after,
                )
            })
        });
        Router {
            model,
            replicas,
            ring,
            config,
            epoch: Instant::now(),
            stats,
            _health: health,
        }
    }

    /// A router over HTTP replicas: one pooled [`nl2vis_llm::http::HttpLlmClient`]
    /// per address, each probed at its own `/healthz`.
    pub fn over_http(addrs: &[std::net::SocketAddr], model: &str, config: RouterConfig) -> Router {
        let specs = addrs
            .iter()
            .map(|&addr| {
                ReplicaSpec::shared(
                    addr.to_string(),
                    Arc::new(nl2vis_llm::http::HttpLlmClient::new(addr, model)),
                )
                .with_health_addr(addr)
            })
            .collect();
        Router::new(specs, config)
    }

    /// This router's counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Number of replicas on the ring.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Id of the replica that owns `prompt` on the ring (ignoring health),
    /// for tests and debugging.
    pub fn primary_replica(&self, prompt: &str, opts: &GenOptions) -> &str {
        let key = completion_key(&self.model, opts, prompt);
        let idx = self.ring.primary(&key).expect("non-empty ring");
        &self.replicas[idx].id
    }

    fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Routes one request, exposing the routing decision alongside the
    /// outcome. [`CompletionService::call`] discards the decision.
    pub fn call_detailed(&self, prompt: &str, opts: &GenOptions) -> RoutedCall {
        let span = Span::enter("router.request");
        self.stats
            .bump(&self.stats.requests, "router.requests_total");
        let key = completion_key(&self.model, opts, prompt);
        let order = self.ring.candidates(&key);

        // Partition the ring order by health: live first, penalized after
        // (still contactable — a Retry-After window is advice, not death),
        // ejected skipped entirely.
        let now_us = self.elapsed_us();
        let mut candidates: Vec<usize> = Vec::with_capacity(order.len());
        let mut penalized: Vec<usize> = Vec::new();
        for &idx in &order {
            let replica = &self.replicas[idx];
            if replica.is_ejected() {
                continue;
            }
            if replica.is_penalized(now_us) {
                penalized.push(idx);
            } else {
                candidates.push(idx);
            }
        }
        if !candidates.is_empty() && Some(&candidates[0]) != order.first() {
            // The affinity owner exists but was routed around (penalty);
            // ejections are not deferrals — the owner is gone, not demoted.
            if penalized.first() == order.first() {
                self.stats.bump(
                    &self.stats.penalty_deferrals,
                    "router.penalty_deferrals_total",
                );
            }
        }
        candidates.extend(penalized);
        let Some(&primary) = candidates.first() else {
            self.stats
                .bump(&self.stats.all_ejected, "router.all_ejected_total");
            let message = format!(
                "router: all {} replicas ejected, no candidate for request",
                self.replicas.len()
            );
            span.annotate("error", "all_ejected");
            return RoutedCall {
                outcome: Err(TransportError::new(TransportErrorKind::Connect, 1, message)),
                replica: order
                    .first()
                    .map(|&i| self.replicas[i].id.clone())
                    .unwrap_or_default(),
                role: "none",
                hedged: false,
                shard_hit: false,
            };
        };

        span.annotate("replica.primary", &self.replicas[primary].id);

        // Shard path: the affinity owner's cache shard answers hits
        // locally, and its per-key single-flight dedupes concurrent
        // misses — a herd on a cold hot key costs one upstream race, and
        // the flight inserts the winner's text into *this* shard, the one
        // every future request for the key routes to.
        let mut raced: Option<(usize, RaceSlot, Option<&'static str>)> = None;
        let outcome = if let Some(shard) = &self.replicas[primary].shard {
            shard.complete_through(&key, || {
                let r = self.race(&span, prompt, opts, &candidates);
                let outcome = r.1.outcome.clone();
                raced = Some(r);
                outcome
            })
        } else {
            let r = self.race(&span, prompt, opts, &candidates);
            let outcome = r.1.outcome.clone();
            raced = Some(r);
            outcome
        };

        let Some((winner_slot, winner, second_role)) = raced else {
            // The shard answered without racing: a cache hit, or a
            // single-flight wait that rode a concurrent leader's race.
            self.stats
                .bump(&self.stats.shard_hits, "router.shard_hits_total");
            span.annotate("cache_shard", "hit");
            span.annotate("winner", &self.replicas[primary].id);
            return RoutedCall {
                outcome,
                replica: self.replicas[primary].id.clone(),
                role: "shard",
                hedged: false,
                shard_hit: true,
            };
        };
        if self.replicas[primary].shard.is_some() {
            span.annotate("cache_shard", "miss");
        }
        let hedged = second_role == Some("hedge");
        let role = if winner_slot == 0 {
            if winner.outcome.is_ok() {
                self.stats
                    .bump(&self.stats.primary_wins, "router.primary_wins_total");
            }
            "primary"
        } else {
            let role = second_role.unwrap_or("hedge");
            if role == "hedge" && winner.outcome.is_ok() {
                self.stats
                    .bump(&self.stats.hedge_wins, "router.hedge_wins_total");
            }
            role
        };
        let winner_id = self.replicas[winner.replica].id.clone();
        span.annotate("hedged", if hedged { "true" } else { "false" });
        span.annotate("winner", &winner_id);
        span.annotate("winner_role", role);
        RoutedCall {
            outcome,
            replica: winner_id,
            role,
            hedged,
            shard_hit: false,
        }
    }

    /// Runs the primary/hedge race over `candidates` (non-empty). Returns
    /// the winning slot, its result, and what slot 1 was used for.
    fn race(
        &self,
        _request_span: &Span,
        prompt: &str,
        opts: &GenOptions,
        candidates: &[usize],
    ) -> (usize, RaceSlot, Option<&'static str>) {
        let race = Arc::new(Race::default());
        let prompt: Arc<str> = Arc::from(prompt);
        let ctx = current_context();
        let primary = candidates[0];
        let second_target = candidates.get(1).copied();
        let hedge_after = (self.config.hedge && second_target.is_some())
            .then(|| self.replicas[primary].hedge_delay(&self.config));

        self.spawn_attempt(&race, 0, primary, "primary", ctx, &prompt, opts);
        let started = Instant::now();
        let mut second_role: Option<&'static str> = None;

        let mut slots = race.slots.lock().expect("race slots");
        loop {
            // A success wins immediately; the primary is checked first so
            // a hedge that lands in the same wake-up never shadows it.
            for slot in 0..2 {
                if slots[slot].as_ref().is_some_and(|s| s.outcome.is_ok()) {
                    return (slot, slots[slot].take().expect("checked"), second_role);
                }
            }
            let primary_done = slots[0].is_some();
            let second_done = second_role.is_none() || slots[1].is_some();
            if primary_done && second_done {
                if second_role.is_none() {
                    if let Some(target) = second_target {
                        // The primary failed before any hedge fired: fail
                        // over to the next candidate right away.
                        second_role = Some("failover");
                        self.stats
                            .bump(&self.stats.failovers, "router.failovers_total");
                        self.spawn_attempt(&race, 1, target, "failover", ctx, &prompt, opts);
                        continue;
                    }
                }
                // Every attempt errored; report the primary's error.
                return (0, slots[0].take().expect("primary done"), second_role);
            }
            let elapsed = started.elapsed();
            if second_role.is_none() {
                if let (Some(delay), Some(target)) = (hedge_after, second_target) {
                    if elapsed >= delay {
                        second_role = Some("hedge");
                        self.stats
                            .bump(&self.stats.hedges_fired, "router.hedges_fired_total");
                        self.spawn_attempt(&race, 1, target, "hedge", ctx, &prompt, opts);
                        continue;
                    }
                }
            }
            let wait = match (second_role, hedge_after) {
                // Waiting for the hedge timer: sleep exactly until it.
                (None, Some(delay)) => delay.saturating_sub(elapsed),
                // Waiting on attempt threads, which carry their own
                // transport deadlines; the long timeout is a backstop.
                _ => Duration::from_secs(60),
            }
            .max(Duration::from_millis(1));
            slots = race.cv.wait_timeout(slots, wait).expect("race slots").0;
        }
    }

    /// Spawns one attempt on its own thread: runs the call under a
    /// `router.attempt` span (so HTTP trace headers propagate from the
    /// attempt, stitching the race into one tree), updates replica health
    /// and latency, and parks the result in `race.slots[slot]`.
    #[allow(clippy::too_many_arguments)]
    fn spawn_attempt(
        &self,
        race: &Arc<Race>,
        slot: usize,
        replica_idx: usize,
        role: &'static str,
        ctx: Option<TraceContext>,
        prompt: &Arc<str>,
        opts: &GenOptions,
    ) {
        let race = Arc::clone(race);
        let replicas = Arc::clone(&self.replicas);
        let stats = Arc::clone(&self.stats);
        let prompt = Arc::clone(prompt);
        let opts = opts.clone();
        let epoch = self.epoch;
        let eject_after = self.config.eject_after;
        let default_penalty = self.config.default_penalty;
        std::thread::spawn(move || {
            let replica = &replicas[replica_idx];
            let span = match ctx {
                Some(ctx) => Span::enter_with("router.attempt", ctx),
                None => Span::enter_root("router.attempt"),
            };
            span.annotate("replica", &replica.id);
            span.annotate("role", role);
            let _inflight = InflightGuard::enter(&stats);
            let started = Instant::now();
            let outcome = replica.call(&prompt, &opts);
            let elapsed = started.elapsed();
            replica.latency.record_duration(elapsed);
            registry::global()
                .histogram("router.attempt_latency_us")
                .record_duration(elapsed);
            match &outcome {
                Ok(_) => {
                    if replica.note_success() {
                        stats.bump(&stats.readmissions, "router.replica_readmitted_total");
                    }
                }
                Err(e) => {
                    span.annotate("error", &format!("{:?}", e.kind));
                    let penalty = match (e.retry_after, &e.kind) {
                        (Some(advertised), _) => Some(advertised),
                        (None, TransportErrorKind::Status(429)) => Some(default_penalty),
                        _ => None,
                    };
                    if let Some(penalty) = penalty {
                        let deadline = epoch.elapsed() + penalty;
                        replica.penalize_until(deadline.as_micros().min(u64::MAX as u128) as u64);
                        stats.bump(&stats.penalties, "router.penalties_total");
                    }
                    if matches!(
                        e.kind,
                        TransportErrorKind::Timeout
                            | TransportErrorKind::Connect
                            | TransportErrorKind::ConnectionClosed
                            | TransportErrorKind::Io
                    ) && replica.note_transport_failure(eject_after)
                    {
                        stats.bump(&stats.ejections, "router.replica_ejected_total");
                    }
                }
            }
            let mut slots = race.slots.lock().expect("race slots");
            slots[slot] = Some(RaceSlot {
                outcome,
                replica: replica_idx,
            });
            race.cv.notify_all();
        });
    }
}

fn spawn_health_checker(
    replicas: Arc<Vec<Replica>>,
    stats: Arc<RouterStats>,
    interval: Duration,
    probe_timeout: Duration,
    eject_after: u32,
) -> HealthChecker {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        while !stop_flag.load(Ordering::Acquire) {
            for replica in replicas.iter() {
                let Some(addr) = replica.health_addr else {
                    continue;
                };
                let healthy = probe_healthz(addr, probe_timeout);
                match replica.note_probe(healthy, eject_after) {
                    Some(true) => {
                        stats.bump(&stats.readmissions, "router.replica_readmitted_total")
                    }
                    Some(false) => stats.bump(&stats.ejections, "router.replica_ejected_total"),
                    None => {}
                }
            }
            // Chunked sleep so Drop never waits a full interval to join.
            let mut left = interval;
            while !stop_flag.load(Ordering::Acquire) && !left.is_zero() {
                let step = left.min(Duration::from_millis(20));
                std::thread::sleep(step);
                left -= step;
            }
        }
    });
    HealthChecker {
        stop,
        handle: Some(handle),
    }
}

impl CompletionService for Router {
    fn model(&self) -> &str {
        &self.model
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        self.call_detailed(prompt, opts).outcome
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("route");
        self.replicas[0].service.describe(stack);
    }
}

/// [`Layer`] adapter: wraps the inner service as replica 0 and adds the
/// configured peers, yielding a [`Router`]. Composes as
/// `Cache(Retry(Route(..)))` under the stack contract.
pub struct RouteLayer {
    config: RouterConfig,
    peers: Vec<ReplicaSpec>,
}

impl RouteLayer {
    pub fn new(config: RouterConfig) -> RouteLayer {
        RouteLayer {
            config,
            peers: Vec::new(),
        }
    }

    /// Adds a peer replica alongside the layered-over service.
    pub fn with_peer(mut self, peer: ReplicaSpec) -> RouteLayer {
        self.peers.push(peer);
        self
    }
}

impl<S: CompletionService + Send + Sync + 'static> Layer<S> for RouteLayer {
    type Service = Router;

    fn layer(&self, inner: S) -> Router {
        let mut specs = vec![ReplicaSpec::service("replica-0", inner)];
        specs.extend(self.peers.iter().cloned());
        Router::new(specs, self.config.clone())
    }
}
