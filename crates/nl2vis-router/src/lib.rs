//! Client-side replica routing for the completion serving path.
//!
//! A [`Router`] spreads requests over N completion-server replicas while
//! preserving *prompt affinity*: the canonical completion key (identical
//! to the cache layer's key) is consistent-hashed onto a ring, so the same
//! prompt keeps landing on the same replica and that replica's completion
//! cache stays hot as the fleet scales out. Around that core:
//!
//! - **Health**: replicas are ejected after consecutive transport failures
//!   or failed `/healthz` probes, and readmitted when probes (or a served
//!   request) prove them back; the ring itself never changes, so a
//!   readmitted replica gets its old keyspace — and its warm shard — back.
//! - **429 feedback**: a replica advertising `Retry-After` is deprioritized
//!   for exactly that window, not ejected.
//! - **Hedging**: if the primary hasn't answered within its observed p95
//!   (sliding window), the request is hedged to the next ring candidate;
//!   first success wins and the loser is discarded. Both attempts run
//!   under one trace tree with the winner annotated.
//! - **Fleet observability** ([`fleet`]): a [`FleetObserver`] scrapes
//!   every replica's mergeable `/metrics.json` snapshot, folds them into
//!   an exact fleet view with SLO burn rates, stitches cross-process
//!   traces, and serves it all over a [`FleetServer`]'s `/fleet/*`
//!   endpoints.
//!
//! The router is itself a [`nl2vis_service::CompletionService`] (layer tag
//! `"route"`), composing as `Cache(Retry(Route(..)))` — see
//! [`nl2vis_service::validate_stack`] for why the router must sit inside
//! both.

pub mod fleet;
pub mod replica;
pub mod ring;
pub mod router;

pub use fleet::{FleetConfig, FleetObserver, FleetServer};
pub use replica::ReplicaSpec;
pub use ring::Ring;
pub use router::{RouteLayer, RoutedCall, Router, RouterConfig, RouterStats, RouterStatsSnapshot};
