//! `nl2vis-fleet`: the multi-process fleet demo and smoke harness.
//!
//! Two subcommands, designed so a shell script can stand up a real
//! multi-process fleet — separate recorders, separate registries,
//! colliding span-id counters — and exercise the observability plane
//! end to end:
//!
//! ```text
//! nl2vis-fleet serve [--stall-ms=N] [--seed=N]
//!     One completion-server replica on an ephemeral port with its own
//!     registry and flight recorder. Prints `listening <addr>` and parks.
//!     `--stall-ms` injects a fixed service-time stall (a slow replica,
//!     to force hedging).
//!
//! nl2vis-fleet observe --replicas=HOST:PORT,HOST:PORT [--hedge-ms=N]
//!                      [--requests=N]
//!     A router over the given replicas plus a FleetObserver/FleetServer.
//!     Drives `--requests` warmup calls, then one request whose ring
//!     owner is the FIRST replica (start that one with `--stall-ms` so
//!     the hedge fires and the trace spans two server processes). Prints
//!     `fleet listening <addr>` and `hedged_trace <id>`, then parks so
//!     the caller can probe `/fleet/*`.
//! ```

use std::sync::Arc;
use std::time::Duration;

use nl2vis_llm::fault::FaultInjector;
use nl2vis_llm::http::CompletionServer;
use nl2vis_llm::profile::ModelProfile;
use nl2vis_llm::sim::SimLlm;
use nl2vis_obs::recorder::{self, FlightRecorder};
use nl2vis_obs::{MetricsRegistry, Span};
use nl2vis_router::{FleetConfig, FleetObserver, FleetServer, Router, RouterConfig};
use nl2vis_service::GenOptions;

fn flag_u64(args: &[String], key: &str, default: u64) -> u64 {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("--{key}=")))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("--{key} must be an integer")))
        })
        .unwrap_or(default)
}

fn flag_str<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("--{key}=")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: nl2vis-fleet serve [--stall-ms=N] [--seed=N]\n       \
         nl2vis-fleet observe --replicas=H:P,H:P [--hedge-ms=N] [--requests=N]"
    );
    std::process::exit(2)
}

fn park() -> ! {
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("observe") => observe(&args[1..]),
        _ => die("first argument must be `serve` or `observe`"),
    }
}

fn serve(args: &[String]) -> ! {
    let stall_ms = flag_u64(args, "stall-ms", 0);
    let seed = flag_u64(args, "seed", 9);
    recorder::install(Arc::new(FlightRecorder::new(256)));
    let faults = if stall_ms > 0 {
        FaultInjector::random(seed, 0.0, 0.0, 1.0, Duration::from_millis(stall_ms))
    } else {
        FaultInjector::none()
    };
    let server = CompletionServer::start_with_faults(
        SimLlm::new(ModelProfile::gpt_4(), seed),
        Arc::new(MetricsRegistry::new()),
        faults,
    )
    .unwrap_or_else(|e| die(&format!("server failed to start: {e}")));
    // The caller reads this line to learn the ephemeral port.
    println!("listening {}", server.address());
    park()
}

fn observe(args: &[String]) -> ! {
    let replicas: Vec<std::net::SocketAddr> = flag_str(args, "replicas")
        .unwrap_or_else(|| die("observe requires --replicas=H:P,H:P"))
        .split(',')
        .map(|a| {
            a.trim()
                .parse()
                .unwrap_or_else(|_| die(&format!("bad replica address `{a}`")))
        })
        .collect();
    if replicas.is_empty() {
        die("--replicas must name at least one replica");
    }
    let hedge_ms = flag_u64(args, "hedge-ms", 15);
    let requests = flag_u64(args, "requests", 6);

    recorder::install(Arc::new(FlightRecorder::new(256)));
    let router = Router::over_http(
        &replicas,
        "gpt-4",
        RouterConfig {
            default_hedge_delay: Duration::from_millis(hedge_ms),
            ..RouterConfig::default()
        },
    );
    let observer = FleetObserver::new(&replicas, FleetConfig::default());
    let fleet = FleetServer::start(Arc::clone(&observer))
        .unwrap_or_else(|e| die(&format!("fleet server failed to start: {e}")));
    println!("fleet listening {}", fleet.address());

    let opts = GenOptions::default();
    let prompt_for = |i: u64| {
        format!("-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:")
    };
    for i in 0..requests {
        let call = router.call_detailed(&prompt_for(i), &opts);
        if let Err(e) = call.outcome {
            eprintln!("warmup request {i} failed: {e:?}");
        }
    }

    // A prompt owned by the first replica — the one the harness started
    // slow — so the router hedges and the trace spans two processes.
    let slow_id = replicas[0].to_string();
    let hedged_prompt = (0..10_000)
        .map(prompt_for)
        .find(|p| router.primary_replica(p, &opts) == slow_id)
        .unwrap_or_else(|| die("no prompt hashed to the first replica"));
    let root = Span::enter_root("client.request");
    let trace_id = nl2vis_obs::current_context()
        .map(|c| c.trace_id)
        .unwrap_or_else(|| die("no trace context under the client root span"));
    let call = router.call_detailed(&hedged_prompt, &opts);
    if let Err(e) = call.outcome {
        die(&format!("hedged request failed: {e:?}"));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while router.stats().inflight() != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(root);

    observer.poll_once();
    println!("hedged {}", call.hedged);
    println!("hedged_trace {trace_id}");
    park()
}
