//! Per-replica state: the wrapped service, health/penalty bookkeeping, a
//! sliding latency histogram (feeding the hedge trigger), and an optional
//! completion-cache shard modelling the warmth consistent hashing is
//! trying to preserve.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nl2vis_cache::CompletionCache;
use nl2vis_obs::window::{WindowConfig, WindowedHistogram};
use nl2vis_service::{CompletionService, GenOptions};

use crate::router::RouterConfig;

/// A dynamic service object — any leaf or stack the router can fan out to.
pub type SharedService = Arc<dyn CompletionService + Send + Sync>;

/// The public description of one replica, consumed by
/// [`crate::Router::new`] and [`crate::RouteLayer::with_peer`].
#[derive(Clone)]
pub struct ReplicaSpec {
    pub(crate) id: String,
    pub(crate) service: SharedService,
    pub(crate) health_addr: Option<SocketAddr>,
}

impl ReplicaSpec {
    /// A replica backed by an arbitrary service (tests use `service_fn`
    /// leaves; production embeds whole per-replica stacks).
    pub fn service(
        id: impl Into<String>,
        service: impl CompletionService + Send + Sync + 'static,
    ) -> ReplicaSpec {
        ReplicaSpec {
            id: id.into(),
            service: Arc::new(service),
            health_addr: None,
        }
    }

    /// A replica over an already-shared service object.
    pub fn shared(id: impl Into<String>, service: SharedService) -> ReplicaSpec {
        ReplicaSpec {
            id: id.into(),
            service,
            health_addr: None,
        }
    }

    /// Points the active health checker at `addr`'s `/healthz` endpoint.
    /// Without one, the replica is ejected and readmitted passively (by
    /// observed transport failures and successes).
    pub fn with_health_addr(mut self, addr: SocketAddr) -> ReplicaSpec {
        self.health_addr = Some(addr);
        self
    }
}

/// Live router-side state for one replica.
pub(crate) struct Replica {
    pub(crate) id: String,
    pub(crate) service: SharedService,
    pub(crate) health_addr: Option<SocketAddr>,
    /// Client-side shard of completions this replica served; present when
    /// [`RouterConfig::shard_capacity`] > 0.
    pub(crate) shard: Option<CompletionCache>,
    /// Sliding attempt-latency window; its p95 is the hedge trigger.
    pub(crate) latency: WindowedHistogram,
    ejected: AtomicBool,
    /// Consecutive transport failures feeding passive ejection.
    consecutive_failures: AtomicU32,
    /// Consecutive failed `/healthz` probes feeding active ejection.
    probe_failures: AtomicU32,
    /// 429 `Retry-After` deadline, as microseconds since the router epoch
    /// (0 = no penalty). Stored relative so it fits an atomic.
    penalty_until_us: AtomicU64,
}

impl Replica {
    pub(crate) fn new(spec: ReplicaSpec, config: &RouterConfig) -> Replica {
        Replica {
            id: spec.id,
            service: spec.service,
            health_addr: spec.health_addr,
            shard: (config.shard_capacity > 0)
                .then(|| CompletionCache::in_memory(config.shard_capacity)),
            latency: WindowedHistogram::new(WindowConfig::default()),
            ejected: AtomicBool::new(false),
            consecutive_failures: AtomicU32::new(0),
            probe_failures: AtomicU32::new(0),
            penalty_until_us: AtomicU64::new(0),
        }
    }

    pub(crate) fn is_ejected(&self) -> bool {
        self.ejected.load(Ordering::Acquire)
    }

    /// True while a 429 `Retry-After` window is open.
    pub(crate) fn is_penalized(&self, now_us: u64) -> bool {
        self.penalty_until_us.load(Ordering::Acquire) > now_us
    }

    /// Opens (or extends) the penalty window.
    pub(crate) fn penalize_until(&self, deadline_us: u64) {
        self.penalty_until_us
            .fetch_max(deadline_us, Ordering::AcqRel);
    }

    /// Records a served request: clears the failure streak and readmits a
    /// passively-ejected replica. Returns true when this readmitted it.
    pub(crate) fn note_success(&self) -> bool {
        self.consecutive_failures.store(0, Ordering::Release);
        self.ejected.swap(false, Ordering::AcqRel)
    }

    /// Records a transport-level failure (timeout/connect/closed/io — not
    /// an HTTP status, which proves the replica is up). Returns true when
    /// the failure streak just crossed `eject_after` and ejected it.
    pub(crate) fn note_transport_failure(&self, eject_after: u32) -> bool {
        let streak = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        if streak >= eject_after.max(1) {
            !self.ejected.swap(true, Ordering::AcqRel)
        } else {
            false
        }
    }

    /// Records one active `/healthz` probe result. Returns
    /// `Some(true)` when the probe readmitted the replica, `Some(false)`
    /// when it ejected it, `None` when nothing changed.
    pub(crate) fn note_probe(&self, healthy: bool, eject_after: u32) -> Option<bool> {
        if healthy {
            self.probe_failures.store(0, Ordering::Release);
            self.consecutive_failures.store(0, Ordering::Release);
            self.ejected.swap(false, Ordering::AcqRel).then_some(true)
        } else {
            let streak = self.probe_failures.fetch_add(1, Ordering::AcqRel) + 1;
            if streak >= eject_after.max(1) && !self.ejected.swap(true, Ordering::AcqRel) {
                Some(false)
            } else {
                None
            }
        }
    }

    /// How long to wait for this replica before hedging: its windowed p95
    /// once enough samples exist, clamped to the configured band; the
    /// configured default until then.
    pub(crate) fn hedge_delay(&self, config: &RouterConfig) -> Duration {
        let summary = self.latency.summary();
        if summary.count >= config.hedge_min_samples {
            Duration::from_micros(summary.p95 as u64)
                .clamp(config.hedge_delay_floor, config.hedge_delay_ceiling)
        } else {
            config.default_hedge_delay
        }
    }

    pub(crate) fn call(
        &self,
        prompt: &str,
        opts: &GenOptions,
    ) -> nl2vis_service::CompletionOutcome {
        self.service.call(prompt, opts)
    }
}

/// One blocking `GET /healthz` against `addr`; healthy iff it answers 200
/// within `timeout`. Uses `Connection: close` so probe sockets never
/// linger in the replica's keep-alive table.
pub(crate) fn probe_healthz(addr: SocketAddr, timeout: Duration) -> bool {
    use std::io::{BufRead, BufReader, Write};
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    if write!(
        stream,
        "GET /healthz HTTP/1.1\r\nHost: router\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .and_then(|()| stream.flush())
    .is_err()
    {
        return false;
    }
    let mut status_line = String::new();
    if BufReader::new(stream).read_line(&mut status_line).is_err() {
        return false;
    }
    status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        == Some(200)
}
