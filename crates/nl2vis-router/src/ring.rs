//! Consistent-hash ring over replica ids.
//!
//! Each replica owns `vnodes` points on a `u64` ring; a request key routes
//! to the replica owning the first point at or after the key's hash, and
//! the fallback order for hedging/failover is simply the subsequent
//! distinct owners in ring order. Virtual nodes smooth the per-replica
//! share, and — the property the router exists for — adding or removing
//! one replica moves only the keys whose arcs that replica gained or lost,
//! so the surviving replicas keep their completion-cache shards hot across
//! a scale-out.

use nl2vis_cache::fnv1a;

/// FNV-1a concentrates its entropy in the low bits for short, similar
/// inputs (replica ids differ by one digit), which clusters ring points
/// badly. A 64-bit avalanche finalizer (splitmix64's) spreads the points
/// uniformly without changing the underlying keying.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Position of `bytes` on the ring.
fn point_of(bytes: &[u8]) -> u64 {
    mix(fnv1a(bytes))
}

/// An immutable consistent-hash ring; rebuild it when the replica set
/// changes (the router treats membership as fixed for its lifetime —
/// unhealthy replicas are *ejected*, not removed, precisely so the ring
/// stays stable and their keys come back to a warm shard on readmission).
#[derive(Debug)]
pub struct Ring {
    /// `(point, replica)` sorted by point.
    points: Vec<(u64, usize)>,
    replicas: usize,
}

impl Ring {
    /// Builds a ring with `vnodes` points per replica id. Point hashes mix
    /// the replica *id* (not its index) so that a ring rebuilt from the
    /// same addresses lands the same keys on the same replicas.
    pub fn new<S: AsRef<str>>(ids: &[S], vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(ids.len() * vnodes);
        for (replica, id) in ids.iter().enumerate() {
            for v in 0..vnodes {
                let point = point_of(format!("{}#{v}", id.as_ref()).as_bytes());
                points.push((point, replica));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            replicas: ids.len(),
        }
    }

    /// Number of replicas on the ring.
    pub fn len(&self) -> usize {
        self.replicas
    }

    /// True when the ring has no replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas == 0
    }

    /// The replica owning `key` (its cache-affinity home).
    pub fn primary(&self, key: &str) -> Option<usize> {
        self.candidates(key).into_iter().next()
    }

    /// Every replica, in ring order starting from `key`'s owner: the
    /// preference list a request walks for hedging and failover. Distinct
    /// and complete — the last entries are the coldest choices, not
    /// omitted.
    pub fn candidates(&self, key: &str) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let hash = point_of(key.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let mut seen = vec![false; self.replicas];
        let mut order = Vec::with_capacity(self.replicas);
        for i in 0..self.points.len() {
            let (_, replica) = self.points[(start + i) % self.points.len()];
            if !seen[replica] {
                seen[replica] = true;
                order.push(replica);
                if order.len() == self.replicas {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:8080")).collect()
    }

    #[test]
    fn candidates_cover_every_replica_exactly_once() {
        let ring = Ring::new(&ids(5), 16);
        for k in 0..50 {
            let order = ring.candidates(&format!("key-{k}"));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "order was {order:?}");
        }
    }

    #[test]
    fn routing_is_deterministic_across_rebuilds() {
        let a = Ring::new(&ids(4), 32);
        let b = Ring::new(&ids(4), 32);
        for k in 0..200 {
            let key = format!("prompt {k}");
            assert_eq!(a.candidates(&key), b.candidates(&key));
        }
    }

    #[test]
    fn keys_spread_over_all_replicas() {
        let ring = Ring::new(&ids(4), 32);
        let mut hits = [0usize; 4];
        for k in 0..1000 {
            hits[ring.primary(&format!("key-{k}")).unwrap()] += 1;
        }
        for (replica, &h) in hits.iter().enumerate() {
            assert!(
                h > 100,
                "replica {replica} owns only {h}/1000 keys: {hits:?}"
            );
        }
    }

    #[test]
    fn scaling_out_moves_a_bounded_fraction_of_keys() {
        // Going 3 -> 4 replicas should move roughly 1/4 of the keyspace;
        // a modulo router would move ~3/4. Assert well under half moved.
        let before = Ring::new(&ids(3), 32);
        let after = Ring::new(&ids(4), 32);
        let total = 2000;
        let moved = (0..total)
            .filter(|k| {
                let key = format!("prompt number {k}");
                before.primary(&key) != after.primary(&key)
            })
            .count();
        assert!(
            moved < total / 2,
            "scale-out moved {moved}/{total} keys — affinity lost"
        );
        assert!(moved > 0, "adding a replica must claim some keys");
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = Ring::new(&Vec::<String>::new(), 32);
        assert!(ring.is_empty());
        assert!(ring.candidates("k").is_empty());
        assert_eq!(ring.primary("k"), None);
    }
}
