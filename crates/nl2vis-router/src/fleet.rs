//! The fleet observability plane: one pane of glass over N replicas.
//!
//! A [`FleetObserver`] scrapes every replica's `GET /metrics.json` (the
//! mergeable [`Snapshot`] wire format) and `GET /stats` on a poll
//! interval, folds the snapshots into a single fleet view — exact, since
//! snapshot merge is lossless and order-independent — and evaluates the
//! configured [`SloSpec`]s against the merged view, publishing `slo.*`
//! burn-rate gauges. A [`FleetServer`] fronts the observer over HTTP:
//!
//! | endpoint            | body                                          |
//! |---------------------|-----------------------------------------------|
//! | `/fleet/metrics`    | the merged snapshot (itself `nl2vis.metrics.v1`, so fleets of fleets merge the same way) |
//! | `/fleet/stats`      | fleet rollup + SLO statuses + per-replica rows|
//! | `/fleet/trace/<id>` | the cross-replica stitched trace tree         |
//! | `/healthz`          | observer liveness                             |
//!
//! **Trace stitching.** A hedged request's spans live in up to three
//! processes: the router records `router.request`/`router.attempt`, and
//! each raced replica records its own `server.handle` subtree whose
//! parent id points at the router-side attempt span (propagated via the
//! `X-Nl2vis-*` headers). Span ids are per-process counters, so ids from
//! different processes may collide; the stitcher therefore keys spans by
//! *(record, id)* and resolves a parent id missing from its own record —
//! a graft point — against the other records, preferring the record
//! whose candidate span is annotated `replica=<the orphan's source>`
//! (the router annotates every attempt that way). Byte-identical records
//! (replicas sharing one in-process recorder) collapse into one with
//! their source labels merged. Replicas that answer 404 or time out are
//! reported in `partial`, never as a fan-out failure.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nl2vis_data::Json;
use nl2vis_obs::slo::{evaluate_all, publish, SloSpec, SloStatus};
use nl2vis_obs::snapshot::{HistSnapshot, Snapshot, FORMAT};
use nl2vis_obs::{recorder, registry};

/// Observer policy: scrape cadence, fetch deadlines, and objectives.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// How often the poller re-scrapes every replica.
    pub poll_interval: Duration,
    /// Connect/read deadline for one metrics or stats fetch.
    pub fetch_timeout: Duration,
    /// Connect/read deadline for one trace fan-out fetch.
    pub trace_timeout: Duration,
    /// Objectives evaluated against the merged snapshot each poll.
    pub slos: Vec<SloSpec>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            poll_interval: Duration::from_millis(1000),
            fetch_timeout: Duration::from_millis(500),
            trace_timeout: Duration::from_millis(500),
            slos: SloSpec::server_defaults(100_000),
        }
    }
}

/// One blocking `GET` against `addr`; returns `(status, body)` or a
/// transport-level error string. `Connection: close`, like the health
/// prober, so observer sockets never linger in replica keep-alive tables.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| format!("socket: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: fleet\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("write: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{}`", status_line.trim_end()))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?
            == 0
        {
            return Err("truncated headers".to_string());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

fn u64_of(json: Option<&Json>) -> u64 {
    json.and_then(Json::as_f64).unwrap_or(0.0) as u64
}

fn u64_map(json: Option<&Json>) -> BTreeMap<String, u64> {
    match json {
        Some(Json::Object(members)) => members
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f as u64)))
            .collect(),
        _ => BTreeMap::new(),
    }
}

fn hist_of(json: &Json) -> HistSnapshot {
    let buckets = json
        .get("buckets")
        .and_then(Json::as_array)
        .map(|a| a.iter().map(|v| v.as_f64().unwrap_or(0.0) as u64).collect())
        .unwrap_or_default();
    HistSnapshot::from_parts(
        u64_of(json.get("count")),
        u64_of(json.get("sum")),
        u64_of(json.get("min")),
        u64_of(json.get("max")),
        buckets,
    )
}

fn hist_map(json: Option<&Json>) -> BTreeMap<String, HistSnapshot> {
    match json {
        Some(Json::Object(members)) => members
            .iter()
            .map(|(k, v)| (k.clone(), hist_of(v)))
            .collect(),
        _ => BTreeMap::new(),
    }
}

/// Decodes one replica's `/metrics.json` body back into a [`Snapshot`].
/// The decode inverts [`Snapshot::to_json`] exactly (counts below 2^53,
/// which metric values are in practice), so scrape → merge → re-serve
/// loses nothing.
pub fn parse_snapshot(body: &str) -> Result<Snapshot, String> {
    let json = Json::parse(body).map_err(|e| format!("snapshot parse: {e}"))?;
    let format = json.get("format").and_then(Json::as_str).unwrap_or("");
    if format != FORMAT {
        return Err(format!("unknown snapshot format `{format}`"));
    }
    let gauges = match json.get("gauges") {
        Some(Json::Object(members)) => members
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f as i64)))
            .collect(),
        _ => BTreeMap::new(),
    };
    Ok(Snapshot {
        sources: u64_of(json.get("sources")).max(1),
        window_covered_us: u64_of(json.get("window_covered_us")),
        counters: u64_map(json.get("counters")),
        gauges,
        histograms: hist_map(json.get("histograms")),
        windowed_counters: u64_map(json.get("windowed_counters")),
        windowed_histograms: hist_map(json.get("windowed_histograms")),
    })
}

/// What the last poll learned about one replica.
#[derive(Debug, Clone, Default)]
struct ReplicaScrape {
    snapshot: Option<Snapshot>,
    /// Parsed `/stats` body (best-effort; rows tolerate its absence).
    stats: Option<Json>,
    /// Last scrape failure, when the replica was unreachable.
    error: Option<String>,
}

/// Scrapes, merges, and evaluates. Shared between the poller thread and
/// the HTTP frontend via `Arc`.
pub struct FleetObserver {
    addrs: Vec<SocketAddr>,
    config: FleetConfig,
    scrapes: Mutex<Vec<ReplicaScrape>>,
    merged: Mutex<Snapshot>,
    statuses: Mutex<Vec<SloStatus>>,
    polls: AtomicU64,
}

impl FleetObserver {
    /// An observer over `addrs` (the replicas' serving addresses — the
    /// same ports expose completions and the debug surface).
    pub fn new(addrs: &[SocketAddr], config: FleetConfig) -> Arc<FleetObserver> {
        Arc::new(FleetObserver {
            addrs: addrs.to_vec(),
            scrapes: Mutex::new(vec![ReplicaScrape::default(); addrs.len()]),
            merged: Mutex::new(Snapshot::default()),
            statuses: Mutex::new(evaluate_all(&config.slos, &Snapshot::default())),
            polls: AtomicU64::new(0),
            config,
        })
    }

    /// The replicas being observed.
    pub fn replica_addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Scrapes every replica once, refreshes the merged view, and
    /// re-evaluates the SLOs (publishing `slo.*` gauges globally).
    pub fn poll_once(&self) {
        let mut fresh: Vec<ReplicaScrape> = Vec::with_capacity(self.addrs.len());
        for &addr in &self.addrs {
            let mut scrape = ReplicaScrape::default();
            match http_get(addr, "/metrics.json", self.config.fetch_timeout).and_then(
                |(status, body)| match status {
                    200 => parse_snapshot(&body),
                    other => Err(format!("/metrics.json: http {other}")),
                },
            ) {
                Ok(snapshot) => scrape.snapshot = Some(snapshot),
                Err(e) => scrape.error = Some(e),
            }
            if scrape.error.is_none() {
                // Best-effort: /stats enriches per-replica rows but its
                // loss does not fail the scrape.
                if let Ok((200, body)) = http_get(addr, "/stats", self.config.fetch_timeout) {
                    scrape.stats = Json::parse(&body).ok();
                }
            }
            fresh.push(scrape);
        }
        let merged = Snapshot::merged(fresh.iter().filter_map(|s| s.snapshot.as_ref()));
        let statuses = evaluate_all(&self.config.slos, &merged);
        publish(&statuses, registry::global());
        *self.scrapes.lock().expect("fleet scrapes") = fresh;
        *self.merged.lock().expect("fleet merged") = merged;
        *self.statuses.lock().expect("fleet statuses") = statuses;
        self.polls.fetch_add(1, Ordering::Relaxed);
    }

    /// The last merged fleet snapshot.
    pub fn merged(&self) -> Snapshot {
        self.merged.lock().expect("fleet merged").clone()
    }

    /// The last SLO evaluation.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.statuses.lock().expect("fleet statuses").clone()
    }

    /// `GET /fleet/metrics`: the merged snapshot, in the same
    /// `nl2vis.metrics.v1` format replicas serve — so a fleet of fleets
    /// merges with the identical machinery.
    pub fn fleet_metrics_json(&self) -> String {
        self.merged().to_json()
    }

    /// `GET /fleet/stats`: fleet rollup, SLO statuses, per-replica rows.
    pub fn fleet_stats_json(&self) -> String {
        let merged = self.merged();
        let statuses = self.statuses();
        let scrapes = self.scrapes.lock().expect("fleet scrapes").clone();
        let window = merged
            .windowed_histograms
            .get("llm.request_latency_us")
            .cloned()
            .unwrap_or_default();
        let covered_secs = merged.window_covered_us as f64 / 1e6;
        let throughput = if covered_secs > 0.0 {
            window.count as f64 / covered_secs
        } else {
            0.0
        };
        let replicas_ok = scrapes.iter().filter(|s| s.snapshot.is_some()).count();
        let fleet = Json::object(vec![
            ("sources", Json::from(merged.sources as f64)),
            (
                "requests_total",
                Json::from(merged.counter("llm.requests_total") as f64),
            ),
            (
                "shed_total",
                Json::from(merged.counter("server.shed_total") as f64),
            ),
            ("window_requests", Json::from(window.count as f64)),
            (
                "window_shed",
                Json::from(merged.windowed_counter("server.shed_total") as f64),
            ),
            ("throughput_rps", Json::from(throughput)),
            ("window_p50_us", Json::from(window.quantile(0.50))),
            ("window_p95_us", Json::from(window.quantile(0.95))),
            ("window_p99_us", Json::from(window.quantile(0.99))),
            (
                "window_covered_us",
                Json::from(merged.window_covered_us as f64),
            ),
            (
                "router_inflight",
                Json::from(registry::global().gauge("router.inflight").get()),
            ),
        ]);
        let slo = Json::Array(
            statuses
                .iter()
                .map(|s| Json::parse(&s.to_json()).expect("slo status json"))
                .collect(),
        );
        let replicas = Json::Array(
            self.addrs
                .iter()
                .zip(&scrapes)
                .map(|(addr, scrape)| {
                    let mut row = vec![
                        ("id", Json::from(addr.to_string())),
                        ("ok", Json::from(scrape.snapshot.is_some())),
                    ];
                    if let Some(e) = &scrape.error {
                        row.push(("error", Json::from(e.as_str())));
                    }
                    if let Some(snap) = &scrape.snapshot {
                        let w = snap
                            .windowed_histograms
                            .get("llm.request_latency_us")
                            .cloned()
                            .unwrap_or_default();
                        row.push((
                            "requests_total",
                            Json::from(snap.counter("llm.requests_total") as f64),
                        ));
                        row.push(("window_requests", Json::from(w.count as f64)));
                        row.push(("window_p50_us", Json::from(w.quantile(0.50))));
                        row.push(("window_p99_us", Json::from(w.quantile(0.99))));
                        row.push((
                            "window_shed",
                            Json::from(snap.windowed_counter("server.shed_total") as f64),
                        ));
                    }
                    if let Some(stats) = &scrape.stats {
                        if let Some(rps) = stats.get("throughput_rps").and_then(Json::as_f64) {
                            row.push(("throughput_rps", Json::from(rps)));
                        }
                        if let Some(rate) = stats.get("window_shed_rate").and_then(Json::as_f64) {
                            row.push(("window_shed_rate", Json::from(rate)));
                        }
                    }
                    Json::object(row)
                })
                .collect(),
        );
        Json::object(vec![
            ("replica_count", Json::from(self.addrs.len())),
            ("replicas_ok", Json::from(replicas_ok)),
            (
                "polls",
                Json::from(self.polls.load(Ordering::Relaxed) as f64),
            ),
            ("fleet", fleet),
            ("slo", slo),
            ("replicas", replicas),
        ])
        .to_compact()
    }

    /// `GET /fleet/trace/<id>`: fans the id out to the local recorder and
    /// every replica, then stitches. Returns `(status, body)`.
    pub fn fleet_trace_json(&self, trace_id: u64) -> (u16, String) {
        let mut sources: Vec<(String, Result<String, String>)> = Vec::new();
        // The router's own spans first: in a multi-process fleet only this
        // process retains `router.request` / `router.attempt`.
        let local = recorder::installed()
            .and_then(|r| r.get(trace_id))
            .map(|record| record.to_json());
        sources.push((
            "router".to_string(),
            local.ok_or_else(|| format!("trace {trace_id} not retained")),
        ));
        for &addr in &self.addrs {
            let fetched = http_get(
                addr,
                &format!("/trace/{trace_id}"),
                self.config.trace_timeout,
            )
            .and_then(|(status, body)| match status {
                200 => Ok(body),
                404 => Err(Json::parse(&body)
                    .ok()
                    .and_then(|j| j.get("error").and_then(Json::as_str).map(String::from))
                    .unwrap_or_else(|| "not retained".to_string())),
                other => Err(format!("http {other}")),
            });
            sources.push((addr.to_string(), fetched));
        }
        stitch_trace_records(trace_id, sources)
    }
}

/// One span lifted out of a fetched trace record.
#[derive(Debug, Clone)]
struct StitchSpan {
    span: u64,
    parent: Option<u64>,
    name: String,
    duration_us: u64,
    annotations: Vec<(String, String)>,
}

/// One successfully fetched record: who reported it and its spans.
struct StitchRecord {
    sources: Vec<String>,
    root: String,
    duration_us: u64,
    spans: Vec<StitchSpan>,
}

fn parse_trace_record(source: &str, body: &str) -> Result<StitchRecord, String> {
    let json = Json::parse(body).map_err(|e| format!("trace parse: {e}"))?;
    let spans = json
        .get("spans")
        .and_then(Json::as_array)
        .ok_or("trace body has no spans array")?
        .iter()
        .map(|s| {
            let annotations = match s.get("annotations") {
                Some(Json::Object(members)) => members
                    .iter()
                    .filter_map(|(k, v)| v.as_str().map(|v| (k.clone(), v.to_string())))
                    .collect(),
                _ => Vec::new(),
            };
            StitchSpan {
                span: u64_of(s.get("span")),
                parent: s.get("parent").and_then(Json::as_f64).map(|p| p as u64),
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                duration_us: u64_of(s.get("duration_us")),
                annotations,
            }
        })
        .collect();
    Ok(StitchRecord {
        sources: vec![source.to_string()],
        root: json
            .get("root")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
        duration_us: u64_of(json.get("duration_us")),
        spans,
    })
}

/// Stitches fetched per-process records for `trace_id` into one tree.
/// Public so tests (and the loadgen dashboard) can stitch pre-fetched
/// bodies without an observer. Returns `(http_status, json_body)`.
pub fn stitch_trace_records(
    trace_id: u64,
    sources: Vec<(String, Result<String, String>)>,
) -> (u16, String) {
    let mut records: Vec<StitchRecord> = Vec::new();
    let mut partial: Vec<(String, String)> = Vec::new();
    for (source, fetched) in sources {
        match fetched.and_then(|body| parse_trace_record(&source, &body)) {
            Ok(record) => {
                // Replicas sharing one in-process recorder return the
                // same record; collapse them so spans aren't duplicated.
                let key: Vec<u64> = record.spans.iter().map(|s| s.span).collect();
                match records
                    .iter_mut()
                    .find(|r| r.spans.iter().map(|s| s.span).eq(key.iter().copied()))
                {
                    Some(existing) => existing.sources.push(source),
                    None => records.push(record),
                }
            }
            Err(reason) => partial.push((source, reason)),
        }
    }
    if records.is_empty() {
        let body = Json::object(vec![
            (
                "error",
                Json::from(format!("trace {trace_id} not retained by any replica")),
            ),
            ("partial", partial_json(&partial)),
        ])
        .to_compact();
        return (404, body);
    }

    // Keys are (record index, span id): span ids are per-process
    // counters and may collide across records.
    let mut children: BTreeMap<(usize, u64), Vec<(usize, u64)>> = BTreeMap::new();
    let mut roots: Vec<(usize, u64)> = Vec::new();
    let mut grafted: Vec<(usize, u64)> = Vec::new();
    for (ri, record) in records.iter().enumerate() {
        let local: std::collections::BTreeSet<u64> = record.spans.iter().map(|s| s.span).collect();
        for span in &record.spans {
            let key = (ri, span.span);
            match span.parent {
                None => roots.push(key),
                // Span ids are a monotone per-process counter and a parent
                // is always created before its child, so a true in-process
                // parent has a *smaller* id. A local id match with p >=
                // span.id is a cross-process collision, not a local edge.
                Some(p) if local.contains(&p) && p < span.span => {
                    children.entry((ri, p)).or_default().push(key)
                }
                Some(p) => {
                    // Graft point: the parent lives in another process's
                    // record. Prefer the record whose span `p` is the
                    // attempt dispatched to *this* record's replica
                    // (annotated `replica=<source>`); otherwise the first
                    // record holding the id.
                    let candidates: Vec<(usize, &StitchSpan)> = records
                        .iter()
                        .enumerate()
                        .filter(|&(oi, _)| oi != ri)
                        .flat_map(|(oi, r)| {
                            r.spans.iter().filter(|s| s.span == p).map(move |s| (oi, s))
                        })
                        .collect();
                    let target = candidates
                        .iter()
                        .find(|(_, s)| {
                            s.annotations
                                .iter()
                                .any(|(k, v)| k == "replica" && records[ri].sources.contains(v))
                        })
                        .or_else(|| candidates.first())
                        .map(|&(oi, s)| (oi, s.span));
                    match target {
                        Some(parent_key) => {
                            children.entry(parent_key).or_default().push(key);
                            grafted.push(key);
                        }
                        // Suspicious local edge as a last resort beats
                        // dropping the span to root.
                        None if local.contains(&p) => {
                            children.entry((ri, p)).or_default().push(key)
                        }
                        // Parent truncated everywhere: surface at root.
                        None => roots.push(key),
                    }
                }
            }
        }
    }

    let span_index: BTreeMap<(usize, u64), &StitchSpan> = records
        .iter()
        .enumerate()
        .flat_map(|(ri, r)| r.spans.iter().map(move |s| ((ri, s.span), s)))
        .collect();
    fn render(
        key: (usize, u64),
        records: &[StitchRecord],
        span_index: &BTreeMap<(usize, u64), &StitchSpan>,
        children: &BTreeMap<(usize, u64), Vec<(usize, u64)>>,
        grafted: &[(usize, u64)],
    ) -> Json {
        let span = span_index[&key];
        let mut node = vec![
            ("span", Json::from(span.span as f64)),
            (
                "parent",
                span.parent.map_or(Json::Null, |p| Json::from(p as f64)),
            ),
            ("name", Json::from(span.name.as_str())),
            ("duration_us", Json::from(span.duration_us as f64)),
            (
                "sources",
                Json::Array(
                    records[key.0]
                        .sources
                        .iter()
                        .map(|s| Json::from(s.as_str()))
                        .collect(),
                ),
            ),
        ];
        if !span.annotations.is_empty() {
            node.push((
                "annotations",
                Json::Object(
                    span.annotations
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                        .collect(),
                ),
            ));
        }
        if grafted.contains(&key) {
            node.push(("grafted", Json::from(true)));
        }
        let kids: Vec<Json> = children
            .get(&key)
            .into_iter()
            .flatten()
            .map(|&k| render(k, records, span_index, children, grafted))
            .collect();
        if !kids.is_empty() {
            node.push(("children", Json::Array(kids)));
        }
        Json::object(node)
    }
    let tree: Vec<Json> = roots
        .iter()
        .map(|&k| render(k, &records, &span_index, &children, &grafted))
        .collect();

    let body = Json::object(vec![
        ("trace_id", Json::from(trace_id as f64)),
        ("stitched", Json::from(true)),
        ("root", Json::from(records[0].root.as_str())),
        ("duration_us", Json::from(records[0].duration_us as f64)),
        ("span_count", Json::from(span_index.len())),
        (
            "sources",
            Json::Array(
                records
                    .iter()
                    .map(|r| {
                        Json::object(vec![
                            (
                                "ids",
                                Json::Array(
                                    r.sources.iter().map(|s| Json::from(s.as_str())).collect(),
                                ),
                            ),
                            ("spans", Json::from(r.spans.len())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("partial", partial_json(&partial)),
        ("tree", Json::Array(tree)),
    ])
    .to_compact();
    (200, body)
}

fn partial_json(partial: &[(String, String)]) -> Json {
    Json::Array(
        partial
            .iter()
            .map(|(id, reason)| {
                Json::object(vec![
                    ("id", Json::from(id.as_str())),
                    ("error", Json::from(reason.as_str())),
                ])
            })
            .collect(),
    )
}

/// The observer's HTTP face plus its background poller. Dropping stops
/// and joins both threads.
pub struct FleetServer {
    addr: SocketAddr,
    observer: Arc<FleetObserver>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    poll_handle: Option<std::thread::JoinHandle<()>>,
}

impl FleetServer {
    /// Binds an ephemeral localhost port, takes one immediate poll so the
    /// first request never sees an empty view, and starts the accept and
    /// poll loops.
    pub fn start(observer: Arc<FleetObserver>) -> std::io::Result<FleetServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        observer.poll_once();
        let stop = Arc::new(AtomicBool::new(false));

        let accept_stop = Arc::clone(&stop);
        let accept_observer = Arc::clone(&observer);
        let accept_handle = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let observer = Arc::clone(&accept_observer);
                        std::thread::spawn(move || serve_connection(stream, &observer));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });

        let poll_stop = Arc::clone(&stop);
        let poll_observer = Arc::clone(&observer);
        let interval = poll_observer.config.poll_interval;
        let poll_handle = std::thread::spawn(move || {
            while !poll_stop.load(Ordering::Acquire) {
                // Chunked sleep so Drop never waits a full interval.
                let mut left = interval;
                while !poll_stop.load(Ordering::Acquire) && !left.is_zero() {
                    let step = left.min(Duration::from_millis(20));
                    std::thread::sleep(step);
                    left -= step;
                }
                if !poll_stop.load(Ordering::Acquire) {
                    poll_observer.poll_once();
                }
            }
        });

        Ok(FleetServer {
            addr,
            observer,
            stop,
            accept_handle: Some(accept_handle),
            poll_handle: Some(poll_handle),
        })
    }

    /// The frontend's bound address.
    pub fn address(&self) -> SocketAddr {
        self.addr
    }

    /// The shared observer (e.g. to force a poll in tests).
    pub fn observer(&self) -> &Arc<FleetObserver> {
        &self.observer
    }
}

impl Drop for FleetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for handle in [self.accept_handle.take(), self.poll_handle.take()]
            .into_iter()
            .flatten()
        {
            let _ = handle.join();
        }
    }
}

/// Handles one `Connection: close` request on `stream`.
fn serve_connection(stream: TcpStream, observer: &FleetObserver) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).unwrap_or(0) == 0 {
        return;
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    // Drain headers; the observer surface is GET-only, bodies ignored.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 || line.trim_end().is_empty() {
            break;
        }
    }
    let (status, body) = route_fleet(&method, &path, observer);
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let mut stream = stream;
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

/// Routes one observer request; exposed at crate level for direct tests.
pub(crate) fn route_fleet(method: &str, path: &str, observer: &FleetObserver) -> (u16, String) {
    match (method, path) {
        ("GET", "/fleet/metrics") => (200, observer.fleet_metrics_json()),
        ("GET", "/fleet/stats") => (200, observer.fleet_stats_json()),
        ("GET", trace_path) if trace_path.starts_with("/fleet/trace/") => {
            match trace_path["/fleet/trace/".len()..].parse::<u64>() {
                Ok(id) => observer.fleet_trace_json(id),
                Err(_) => (
                    400,
                    r#"{"error":"trace id must be a decimal integer"}"#.to_string(),
                ),
            }
        }
        ("GET", "/healthz") => (
            200,
            r#"{"status":"ok","role":"fleet-observer"}"#.to_string(),
        ),
        _ => (404, r#"{"error":"not found"}"#.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_obs::MetricsRegistry;

    /// A tiny xorshift PRNG (the crate pulls in no test dependencies).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn snapshot_round_trips_through_json_exactly() {
        let metrics = MetricsRegistry::new();
        metrics.counter("llm.requests_total").add(12345);
        metrics.gauge("router.inflight").set(-3);
        let h = metrics.histogram("llm.request_latency_us");
        let mut rng = Rng(7);
        for _ in 0..500 {
            // Spread across ~32 octaves; keep sums far below 2^53 so the
            // JSON number hop is exact (the format's stated envelope).
            h.record(rng.next() % (1 << (1 + rng.next() % 32)));
        }
        let snap = Snapshot::collect(&metrics, None);
        let decoded = parse_snapshot(&snap.to_json()).expect("decode");
        assert_eq!(decoded, snap);
        // The wire hop preserves quantiles exactly.
        let original = &snap.histograms["llm.request_latency_us"];
        let wired = &decoded.histograms["llm.request_latency_us"];
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(original.quantile(q), wired.quantile(q));
        }
    }

    #[test]
    fn decoded_replica_snapshots_merge_to_union_ground_truth() {
        // Ground truth: all samples recorded into one histogram. The
        // fleet path — two registries, serialized, decoded, merged —
        // must produce identical percentiles.
        let (a, b, union) = (
            MetricsRegistry::new(),
            MetricsRegistry::new(),
            MetricsRegistry::new(),
        );
        let mut rng = Rng(99);
        for i in 0..600 {
            let v = rng.next() % (1 << (1 + rng.next() % 32));
            let side = if i % 2 == 0 { &a } else { &b };
            side.histogram("llm.request_latency_us").record(v);
            side.counter("llm.requests_total").inc();
            union.histogram("llm.request_latency_us").record(v);
            union.counter("llm.requests_total").inc();
        }
        let decoded_a = parse_snapshot(&Snapshot::collect(&a, None).to_json()).unwrap();
        let decoded_b = parse_snapshot(&Snapshot::collect(&b, None).to_json()).unwrap();
        let merged = Snapshot::merged([&decoded_a, &decoded_b]);
        let truth = Snapshot::collect(&union, None);
        assert_eq!(merged.counter("llm.requests_total"), 600);
        let (m, t) = (
            &merged.histograms["llm.request_latency_us"],
            &truth.histograms["llm.request_latency_us"],
        );
        assert_eq!(m, t, "bucket-exact merge");
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(m.quantile(q), t.quantile(q), "q={q}");
        }
    }

    #[test]
    fn parse_snapshot_rejects_foreign_formats() {
        assert!(parse_snapshot("{}").is_err());
        assert!(parse_snapshot(r#"{"format":"something.else"}"#).is_err());
        assert!(parse_snapshot("not json").is_err());
    }

    /// Hand-built router-side record: client.request → router.request →
    /// two attempts annotated with their replica ids.
    fn router_record_body() -> String {
        concat!(
            r#"{"trace_id":42,"root":"client.request","duration_us":9000,"outcome":"ok","span_count":4,"spans":["#,
            r#"{"span":10,"parent":null,"name":"client.request","duration_us":9000},"#,
            r#"{"span":11,"parent":10,"name":"router.request","duration_us":8500,"annotations":{"hedged":"true","winner":"B"}},"#,
            r#"{"span":12,"parent":11,"name":"router.attempt","duration_us":8000,"annotations":{"replica":"A","role":"primary"}},"#,
            r#"{"span":13,"parent":11,"name":"router.attempt","duration_us":2000,"annotations":{"replica":"B","role":"hedge"}}"#,
            r#"]}"#
        )
        .to_string()
    }

    #[test]
    fn stitch_grafts_replica_subtrees_under_their_attempts() {
        // Replica A's server.handle parents the attempt span 12; replica
        // B's spans deliberately reuse ids 12/13 locally (per-process
        // counters collide) with its handle parenting attempt 13.
        let replica_a = concat!(
            r#"{"trace_id":42,"root":"client.request","duration_us":8000,"outcome":"ok","span_count":1,"spans":["#,
            r#"{"span":3,"parent":12,"name":"server.handle","duration_us":7800,"annotations":{"status":"200"}}"#,
            r#"]}"#
        );
        let replica_b = concat!(
            r#"{"trace_id":42,"root":"client.request","duration_us":1900,"outcome":"ok","span_count":2,"spans":["#,
            r#"{"span":12,"parent":13,"name":"server.handle","duration_us":1800},"#,
            r#"{"span":13,"parent":12,"name":"server.batch.flush","duration_us":900}"#,
            r#"]}"#
        );
        let (status, body) = stitch_trace_records(
            42,
            vec![
                ("router".to_string(), Ok(router_record_body())),
                ("A".to_string(), Ok(replica_a.to_string())),
                ("B".to_string(), Ok(replica_b.to_string())),
                ("C".to_string(), Err("trace 42 not retained".to_string())),
            ],
        );
        assert_eq!(status, 200, "{body}");
        let json = Json::parse(&body).unwrap();
        assert_eq!(json.get("span_count").and_then(Json::as_f64), Some(7.0));
        // The unreachable replica is annotated, not an error.
        let partial = json.get("partial").and_then(Json::as_array).unwrap();
        assert_eq!(partial.len(), 1);
        assert_eq!(partial[0].get("id").and_then(Json::as_str), Some("C"));

        // Walk: one root (client.request) → router.request → 2 attempts.
        let tree = json.get("tree").and_then(Json::as_array).unwrap();
        assert_eq!(tree.len(), 1, "one stitched root: {body}");
        let request = &tree[0].get("children").and_then(Json::as_array).unwrap()[0];
        assert_eq!(
            request.get("name").and_then(Json::as_str),
            Some("router.request")
        );
        let attempts = request.get("children").and_then(Json::as_array).unwrap();
        assert_eq!(attempts.len(), 2);
        for attempt in attempts {
            let replica = attempt
                .get("annotations")
                .and_then(|a| a.get("replica"))
                .and_then(Json::as_str)
                .unwrap();
            let kids = attempt.get("children").and_then(Json::as_array).unwrap();
            // Each attempt's grafted child is the server.handle reported
            // by that attempt's replica — collisions notwithstanding.
            assert_eq!(kids.len(), 1, "{body}");
            assert_eq!(
                kids[0].get("name").and_then(Json::as_str),
                Some("server.handle")
            );
            assert_eq!(kids[0].get("grafted").and_then(Json::as_bool), Some(true));
            assert_eq!(
                kids[0].get("sources").and_then(Json::as_array).unwrap()[0].as_str(),
                Some(replica),
                "handle must graft under its own replica's attempt: {body}"
            );
        }
        // Replica B's local child (batch.flush) stays under B's handle.
        let b_attempt = attempts
            .iter()
            .find(|a| {
                a.get("annotations")
                    .and_then(|x| x.get("replica"))
                    .and_then(Json::as_str)
                    == Some("B")
            })
            .unwrap();
        let b_handle = &b_attempt.get("children").and_then(Json::as_array).unwrap()[0];
        let b_kids = b_handle.get("children").and_then(Json::as_array).unwrap();
        assert_eq!(
            b_kids[0].get("name").and_then(Json::as_str),
            Some("server.batch.flush")
        );
    }

    #[test]
    fn identical_records_from_a_shared_recorder_collapse() {
        // In-process fleets: every replica serves the same record from
        // the shared flight recorder. Sources merge; spans don't double.
        let (status, body) = stitch_trace_records(
            42,
            vec![
                ("router".to_string(), Ok(router_record_body())),
                ("A".to_string(), Ok(router_record_body())),
                ("B".to_string(), Ok(router_record_body())),
            ],
        );
        assert_eq!(status, 200);
        let json = Json::parse(&body).unwrap();
        assert_eq!(json.get("span_count").and_then(Json::as_f64), Some(4.0));
        let sources = json.get("sources").and_then(Json::as_array).unwrap();
        assert_eq!(sources.len(), 1, "{body}");
        assert_eq!(
            sources[0]
                .get("ids")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            3
        );
        assert_eq!(body.matches("router.attempt").count(), 2, "{body}");
    }

    #[test]
    fn stitch_of_nothing_is_a_json_404() {
        let (status, body) = stitch_trace_records(
            7,
            vec![
                ("router".to_string(), Err("not retained".to_string())),
                ("A".to_string(), Err("connect: refused".to_string())),
            ],
        );
        assert_eq!(status, 404);
        let json = Json::parse(&body).unwrap();
        assert!(json
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("not retained by any replica"));
        assert_eq!(
            json.get("partial").and_then(Json::as_array).unwrap().len(),
            2
        );
    }

    #[test]
    fn orphan_spans_surface_at_root_not_dropped() {
        // A replica record whose parent span was truncated everywhere
        // still renders; nothing silently disappears.
        let lonely = concat!(
            r#"{"trace_id":5,"root":"server.handle","duration_us":100,"outcome":"ok","span_count":1,"spans":["#,
            r#"{"span":2,"parent":999,"name":"server.handle","duration_us":100}"#,
            r#"]}"#
        );
        let (status, body) =
            stitch_trace_records(5, vec![("A".to_string(), Ok(lonely.to_string()))]);
        assert_eq!(status, 200);
        let json = Json::parse(&body).unwrap();
        let tree = json.get("tree").and_then(Json::as_array).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(
            tree[0].get("name").and_then(Json::as_str),
            Some("server.handle")
        );
    }
}
