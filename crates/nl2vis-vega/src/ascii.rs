//! Terminal chart rendering, used by the interactive examples and the user
//! study's command-line interface (the paper's user study, §5.2.2, drove
//! text-davinci-003 through a command-line tool).

use nl2vis_data::Value;
use nl2vis_query::ast::ChartType;
use nl2vis_query::exec::ResultSet;

const BAR_WIDTH: usize = 40;

/// Renders a result set as a terminal chart.
pub fn render_ascii(result: &ResultSet) -> String {
    if result.rows.is_empty() {
        return format!(
            "({} chart of {}: empty result)\n",
            result.chart, result.x_label
        );
    }
    match result.chart {
        ChartType::Bar | ChartType::Pie => render_bars(result),
        ChartType::Line => render_series(result, '*'),
        ChartType::Scatter => render_series(result, 'o'),
    }
}

fn numeric(v: &Value) -> f64 {
    v.as_f64().unwrap_or(0.0)
}

fn render_bars(result: &ResultSet) -> String {
    let y_max = result
        .rows
        .iter()
        .map(|(_, y, _)| numeric(y))
        .fold(f64::MIN, f64::max)
        .max(1.0);
    let label_w = result
        .rows
        .iter()
        .map(|(x, _, s)| {
            x.render().chars().count()
                + s.as_ref()
                    .map(|sv| sv.render().chars().count() + 3)
                    .unwrap_or(0)
        })
        .max()
        .unwrap_or(1);
    let mut out = format!("{} | {}\n", result.x_label, result.y_label);
    for (x, y, s) in &result.rows {
        let label = match s {
            Some(sv) => format!("{} [{}]", x.render(), sv.render()),
            None => x.render(),
        };
        let filled = ((numeric(y) / y_max) * BAR_WIDTH as f64).round().max(0.0) as usize;
        // Numeric values display rounded (float arithmetic noise like
        // 63634.53999999999 is accurate but unreadable).
        let shown = match y.as_f64() {
            Some(v) if y.data_type() == Some(nl2vis_data::value::DataType::Float) => {
                format_num((v * 100.0).round() / 100.0)
            }
            _ => y.render(),
        };
        out.push_str(&format!(
            "{label:<label_w$} | {} {shown}\n",
            "█".repeat(filled.min(BAR_WIDTH)),
        ));
    }
    if result.chart == ChartType::Pie {
        let total: f64 = result.rows.iter().map(|(_, y, _)| numeric(y)).sum();
        if total > 0.0 {
            out.push_str("shares: ");
            let shares: Vec<String> = result
                .rows
                .iter()
                .map(|(x, y, _)| format!("{}={:.0}%", x.render(), numeric(y) / total * 100.0))
                .collect();
            out.push_str(&shares.join(" "));
            out.push('\n');
        }
    }
    out
}

fn render_series(result: &ResultSet, mark: char) -> String {
    const ROWS: usize = 12;
    const COLS: usize = 56;
    let y_min = result
        .rows
        .iter()
        .map(|(_, y, _)| numeric(y))
        .fold(f64::MAX, f64::min);
    let y_max = result
        .rows
        .iter()
        .map(|(_, y, _)| numeric(y))
        .fold(f64::MIN, f64::max);
    let span = (y_max - y_min).max(1e-9);
    let n = result.rows.len();
    let mut grid = vec![vec![' '; COLS]; ROWS];
    for (i, (_, y, _)) in result.rows.iter().enumerate() {
        let col = if n <= 1 { 0 } else { i * (COLS - 1) / (n - 1) };
        let frac = (numeric(y) - y_min) / span;
        let row = ROWS - 1 - ((frac * (ROWS - 1) as f64).round() as usize).min(ROWS - 1);
        grid[row][col] = mark;
    }
    let mut out = format!("{} vs {}\n", result.y_label, result.x_label);
    out.push_str(&format!("{:>8} ┤", format_num(y_max)));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in &grid[1..ROWS - 1] {
        out.push_str("         │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} ┤", format_num(y_min)));
    out.push_str(&grid[ROWS - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str("         └");
    out.push_str(&"─".repeat(COLS));
    out.push('\n');
    // X extremes.
    let first = result
        .rows
        .first()
        .map(|(x, _, _)| x.render())
        .unwrap_or_default();
    let last = result
        .rows
        .last()
        .map(|(x, _, _)| x.render())
        .unwrap_or_default();
    out.push_str(&format!(
        "          {first}{:>width$}\n",
        last,
        width = COLS.saturating_sub(first.chars().count())
    ));
    out
}

fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(chart: ChartType, rows: Vec<(Value, Value, Option<Value>)>) -> ResultSet {
        ResultSet {
            chart,
            x_label: "x".into(),
            y_label: "y".into(),
            series_label: None,
            rows,
            ordered: false,
        }
    }

    #[test]
    fn bar_has_blocks_and_values() {
        let text = render_ascii(&rs(
            ChartType::Bar,
            vec![
                (Value::from("a"), Value::Int(4), None),
                (Value::from("bb"), Value::Int(2), None),
            ],
        ));
        assert!(text.contains('█'));
        assert!(text.contains("a "));
        assert!(text.contains("4"));
        // Longest bar is the max value.
        let a_blocks = text
            .lines()
            .find(|l| l.starts_with("a "))
            .unwrap()
            .matches('█')
            .count();
        let b_blocks = text
            .lines()
            .find(|l| l.starts_with("bb"))
            .unwrap()
            .matches('█')
            .count();
        assert!(a_blocks > b_blocks);
    }

    #[test]
    fn pie_shows_shares() {
        let text = render_ascii(&rs(
            ChartType::Pie,
            vec![
                (Value::from("a"), Value::Int(1), None),
                (Value::from("b"), Value::Int(3), None),
            ],
        ));
        assert!(text.contains("a=25%"));
        assert!(text.contains("b=75%"));
    }

    #[test]
    fn line_plots_marks() {
        let text = render_ascii(&rs(
            ChartType::Line,
            vec![
                (Value::Int(1), Value::Int(1), None),
                (Value::Int(2), Value::Int(5), None),
                (Value::Int(3), Value::Int(3), None),
            ],
        ));
        assert_eq!(text.matches('*').count(), 3);
    }

    #[test]
    fn scatter_uses_o() {
        let text = render_ascii(&rs(
            ChartType::Scatter,
            vec![
                (Value::Int(1), Value::Int(1), None),
                (Value::Int(2), Value::Int(2), None),
            ],
        ));
        assert_eq!(text.matches('o').count(), 2);
    }

    #[test]
    fn empty_result_message() {
        let text = render_ascii(&rs(ChartType::Bar, vec![]));
        assert!(text.contains("empty result"));
    }

    #[test]
    fn series_labels_in_bars() {
        let r = ResultSet {
            chart: ChartType::Bar,
            x_label: "x".into(),
            y_label: "y".into(),
            series_label: Some("s".into()),
            rows: vec![(Value::from("a"), Value::Int(1), Some(Value::from("g1")))],
            ordered: false,
        };
        assert!(render_ascii(&r).contains("a [g1]"));
    }
}
