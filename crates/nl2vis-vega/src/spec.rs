//! VQL → Vega-Lite v5 translation.
//!
//! The translation is hard-coded from the VQL grammar (as in nvBench's
//! reference implementation, §3.4 of the paper): chart types map to marks,
//! the X/Y select expressions map to encodings, the color grouping maps to a
//! color encoding, and the executed result rows are embedded as inline data
//! values.

use nl2vis_data::{Json, Value};
use nl2vis_query::ast::{ChartType, OrderTarget, SortDir, VqlQuery};
use nl2vis_query::exec::ResultSet;

/// Vega-Lite measurement type of a value.
fn vega_type(v: &Value) -> &'static str {
    match v {
        Value::Int(_) | Value::Float(_) => "quantitative",
        Value::Date(_) => "temporal",
        _ => "nominal",
    }
}

/// The dominant Vega-Lite type of a result column (first non-null value
/// decides; all-null columns are nominal).
fn column_type<'a>(values: impl Iterator<Item = &'a Value>) -> &'static str {
    for v in values {
        if !v.is_null() {
            return vega_type(v);
        }
    }
    "nominal"
}

/// Translates a query and its executed result into a Vega-Lite v5
/// specification with inline data.
pub fn to_vega_lite(query: &VqlQuery, result: &ResultSet) -> Json {
    let mark = match query.chart {
        ChartType::Bar => "bar",
        ChartType::Pie => "arc",
        ChartType::Line => "line",
        ChartType::Scatter => "point",
    };

    let x_field = result.x_label.clone();
    let y_field = result.y_label.clone();

    // Inline data values.
    let values: Vec<Json> = result
        .rows
        .iter()
        .map(|(x, y, s)| {
            let mut obj = vec![
                (x_field.as_str(), Json::from(x)),
                (y_field.as_str(), Json::from(y)),
            ];
            if let (Some(label), Some(sv)) = (&result.series_label, s) {
                obj.push((label.as_str(), Json::from(sv)));
            }
            Json::object(obj)
        })
        .collect();

    let x_type = column_type(result.rows.iter().map(|(x, _, _)| x));
    let y_type = column_type(result.rows.iter().map(|(_, y, _)| y));

    let mut x_enc = Json::object(vec![
        ("field", Json::from(x_field.as_str())),
        ("type", Json::from(x_type)),
    ]);
    let y_enc = Json::object(vec![
        ("field", Json::from(y_field.as_str())),
        ("type", Json::from(y_type)),
    ]);

    // Sorting: Vega-Lite expresses VQL's ORDER BY as an axis sort.
    if let Some(order) = &query.order {
        let on_x = match &order.target {
            OrderTarget::X => true,
            OrderTarget::Y => false,
            OrderTarget::Column(c) => query
                .x
                .column()
                .is_some_and(|xc| xc.column.eq_ignore_ascii_case(&c.column)),
        };
        let sort = match (on_x, order.dir) {
            (true, SortDir::Asc) => "ascending".to_string(),
            (true, SortDir::Desc) => "descending".to_string(),
            (false, SortDir::Asc) => "y".to_string(),
            (false, SortDir::Desc) => "-y".to_string(),
        };
        x_enc.set("sort", Json::from(sort.as_str()));
    }

    let mut encoding = if query.chart == ChartType::Pie {
        // Pie charts encode the Y quantity as the arc angle and X as color.
        Json::object(vec![
            (
                "theta",
                Json::object(vec![
                    ("field", Json::from(y_field.as_str())),
                    ("type", Json::from(y_type)),
                ]),
            ),
            (
                "color",
                Json::object(vec![
                    ("field", Json::from(x_field.as_str())),
                    ("type", Json::from("nominal")),
                ]),
            ),
        ])
    } else {
        Json::object(vec![("x", x_enc), ("y", y_enc)])
    };

    if query.chart != ChartType::Pie {
        if let Some(series) = &result.series_label {
            encoding.set(
                "color",
                Json::object(vec![
                    ("field", Json::from(series.as_str())),
                    ("type", Json::from("nominal")),
                ]),
            );
        }
    }

    // Temporal binning surfaces as a timeUnit on the x encoding for
    // documentation purposes; the inline data is already binned by the
    // executor, so the spec notes the unit in a comment-like field.
    let mut spec = Json::object(vec![
        (
            "$schema",
            Json::from("https://vega.github.io/schema/vega-lite/v5.json"),
        ),
        (
            "description",
            Json::from(format!("VQL: {}", nl2vis_query::printer::print(query)).as_str()),
        ),
        ("data", Json::object(vec![("values", Json::Array(values))])),
        ("mark", Json::from(mark)),
        ("encoding", encoding),
    ]);

    if let Some(bin) = &query.bin {
        spec.set(
            "usermeta",
            Json::object(vec![(
                "bin",
                Json::object(vec![
                    ("column", Json::from(bin.column.column.as_str())),
                    ("unit", Json::from(bin.unit.keyword())),
                ]),
            )]),
        );
    }

    spec
}

/// Translates a query into a Vega-Lite v5 specification with a *named* data
/// source and declarative encodings (aggregate, timeUnit, sort, filter
/// transforms) instead of inline pre-executed values — the form a model
/// would emit when asked for Vega-Lite directly (the paper's §6.2
/// direct-generation setting). The translation is lossy exactly where
/// Vega-Lite is: a `JOIN` has no counterpart, so joined queries keep only
/// the `FROM` table, and nested subqueries cannot be expressed and are
/// dropped from the filter.
pub fn to_vega_lite_named(query: &VqlQuery) -> Json {
    use nl2vis_query::ast::{AggFunc, Predicate, SelectExpr};

    let mark = match query.chart {
        ChartType::Bar => "bar",
        ChartType::Pie => "arc",
        ChartType::Line => "line",
        ChartType::Scatter => "point",
    };
    let x_field = query
        .x
        .column()
        .map(|c| c.column.clone())
        .unwrap_or_default();

    let mut x_enc = Json::object(vec![("field", Json::from(x_field.as_str()))]);
    if let Some(bin) = &query.bin {
        let unit = match bin.unit {
            nl2vis_query::ast::BinUnit::Year => "year",
            nl2vis_query::ast::BinUnit::Month => "yearmonth",
            nl2vis_query::ast::BinUnit::Weekday => "day",
            nl2vis_query::ast::BinUnit::Quarter => "yearquarter",
        };
        x_enc.set("timeUnit", Json::from(unit));
        x_enc.set("type", Json::from("temporal"));
    }
    if let Some(order) = &query.order {
        let on_x = match &order.target {
            OrderTarget::X => true,
            OrderTarget::Y => false,
            OrderTarget::Column(c) => query
                .x
                .column()
                .is_some_and(|xc| xc.column.eq_ignore_ascii_case(&c.column)),
        };
        let sort = match (on_x, order.dir) {
            (true, SortDir::Asc) => "ascending",
            (true, SortDir::Desc) => "descending",
            (false, SortDir::Asc) => "y",
            (false, SortDir::Desc) => "-y",
        };
        x_enc.set("sort", Json::from(sort));
    }

    let y_enc = match &query.y {
        SelectExpr::Column(c) => Json::object(vec![("field", Json::from(c.column.as_str()))]),
        SelectExpr::Agg { func, arg } => {
            let agg = match func {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Avg => "mean",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            };
            let mut e = Json::object(vec![("aggregate", Json::from(agg))]);
            if let Some(c) = arg {
                e.set("field", Json::from(c.column.as_str()));
            }
            e
        }
    };

    let encoding = if query.chart == ChartType::Pie {
        let mut color = x_enc.clone();
        // Pie color carries no sort in this subset.
        if let Json::Object(members) = &mut color {
            members.retain(|(k, _)| k != "sort");
        }
        Json::object(vec![("theta", y_enc), ("color", color)])
    } else {
        let mut enc = Json::object(vec![("x", x_enc), ("y", y_enc)]);
        if let Some(series) = query.color() {
            enc.set(
                "color",
                Json::object(vec![("field", Json::from(series.column.as_str()))]),
            );
        }
        enc
    };

    let mut spec = Json::object(vec![
        (
            "$schema",
            Json::from("https://vega.github.io/schema/vega-lite/v5.json"),
        ),
        (
            "data",
            Json::object(vec![("name", Json::from(query.from.as_str()))]),
        ),
        ("mark", Json::from(mark)),
        ("encoding", encoding),
    ]);

    // Filters become `datum.` expression transforms; nested subqueries have
    // no Vega-Lite counterpart and are lost.
    if let Some(f) = &query.filter {
        let mut exprs = Vec::new();
        collect_filter_exprs(f, &mut exprs);
        if !exprs.is_empty() {
            let transforms: Vec<Json> = exprs
                .into_iter()
                .map(|e| Json::object(vec![("filter", Json::from(e.as_str()))]))
                .collect();
            spec.set("transform", Json::Array(transforms));
        }
    }
    // Conjunction-only: OR groups are a single expression, so a filter list
    // is ANDed by Vega-Lite semantics; see `collect_filter_exprs`.
    let _ = Predicate::has_subquery;

    spec
}

fn collect_filter_exprs(p: &nl2vis_query::ast::Predicate, out: &mut Vec<String>) {
    use nl2vis_query::ast::Predicate;
    match p {
        Predicate::And(a, b) => {
            collect_filter_exprs(a, out);
            collect_filter_exprs(b, out);
        }
        Predicate::Or(..) | Predicate::Cmp { .. } => {
            if let Some(e) = expr_of(p) {
                out.push(e);
            }
        }
        // Nested subqueries cannot be expressed in Vega-Lite.
        Predicate::InSubquery { .. } => {}
    }
}

fn expr_of(p: &nl2vis_query::ast::Predicate) -> Option<String> {
    use nl2vis_query::ast::{CmpOp, Literal, Predicate};
    match p {
        Predicate::Cmp { col, op, value } => {
            let op = match op {
                CmpOp::Eq => "===",
                CmpOp::Ne => "!==",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            let lit = match value {
                Literal::Int(i) => i.to_string(),
                Literal::Float(f) => f.to_string(),
                Literal::Text(s) => format!("'{s}'"),
                Literal::Bool(b) => b.to_string(),
                Literal::Date(d) => format!("'{d}'"),
            };
            Some(format!("datum.{} {op} {lit}", col.column))
        }
        Predicate::Or(a, b) => {
            let (ea, eb) = (expr_of(a)?, expr_of(b)?);
            Some(format!("{ea} || {eb}"))
        }
        Predicate::And(a, b) => {
            let (ea, eb) = (expr_of(a)?, expr_of(b)?);
            Some(format!("{ea} && {eb}"))
        }
        Predicate::InSubquery { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_data::schema::{ColumnDef, DatabaseSchema, TableDef};
    use nl2vis_data::value::DataType::*;
    use nl2vis_data::Database;
    use nl2vis_query::{execute, parse};

    fn db() -> Database {
        let mut s = DatabaseSchema::new("d", "x");
        s.tables.push(TableDef::new(
            "sales",
            vec![
                ColumnDef::new("region", Text),
                ColumnDef::new("amount", Int),
                ColumnDef::new("channel", Text),
                ColumnDef::new("day", Date),
            ],
        ));
        let mut d = Database::new(s);
        let date = |y, m, dd| Value::Date(nl2vis_data::value::Date::new(y, m, dd).unwrap());
        for (r, a, c, t) in [
            ("east", 10, "web", date(2020, 1, 1)),
            ("east", 20, "store", date(2020, 2, 1)),
            ("west", 5, "web", date(2021, 1, 1)),
        ] {
            d.insert("sales", vec![r.into(), (a as i64).into(), c.into(), t])
                .unwrap();
        }
        d
    }

    fn spec_for(src: &str) -> Json {
        let q = parse(src).unwrap();
        let r = execute(&q, &db()).unwrap();
        to_vega_lite(&q, &r)
    }

    #[test]
    fn bar_chart_spec() {
        let s = spec_for("VISUALIZE bar SELECT region , SUM(amount) FROM sales GROUP BY region");
        assert_eq!(s.get("mark").and_then(Json::as_str), Some("bar"));
        let enc = s.get("encoding").unwrap();
        assert_eq!(
            enc.get("x")
                .and_then(|x| x.get("field"))
                .and_then(Json::as_str),
            Some("region")
        );
        assert_eq!(
            enc.get("x")
                .and_then(|x| x.get("type"))
                .and_then(Json::as_str),
            Some("nominal")
        );
        assert_eq!(
            enc.get("y")
                .and_then(|y| y.get("type"))
                .and_then(Json::as_str),
            Some("quantitative")
        );
        let values = s
            .get("data")
            .and_then(|d| d.get("values"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn pie_uses_theta_and_color() {
        let s = spec_for("VISUALIZE pie SELECT region , COUNT(region) FROM sales GROUP BY region");
        assert_eq!(s.get("mark").and_then(Json::as_str), Some("arc"));
        let enc = s.get("encoding").unwrap();
        assert!(enc.get("theta").is_some());
        assert!(enc.get("color").is_some());
        assert!(enc.get("x").is_none());
    }

    #[test]
    fn series_becomes_color_encoding() {
        let s = spec_for(
            "VISUALIZE bar SELECT region , SUM(amount) FROM sales GROUP BY region , channel",
        );
        let enc = s.get("encoding").unwrap();
        assert_eq!(
            enc.get("color")
                .and_then(|c| c.get("field"))
                .and_then(Json::as_str),
            Some("channel")
        );
    }

    #[test]
    fn order_becomes_sort() {
        let s = spec_for(
            "VISUALIZE bar SELECT region , SUM(amount) FROM sales GROUP BY region ORDER BY region DESC",
        );
        let enc = s.get("encoding").unwrap();
        assert_eq!(
            enc.get("x")
                .and_then(|x| x.get("sort"))
                .and_then(Json::as_str),
            Some("descending")
        );
        let s = spec_for(
            "VISUALIZE bar SELECT region , SUM(amount) FROM sales GROUP BY region ORDER BY y DESC",
        );
        let enc = s.get("encoding").unwrap();
        assert_eq!(
            enc.get("x")
                .and_then(|x| x.get("sort"))
                .and_then(Json::as_str),
            Some("-y")
        );
    }

    #[test]
    fn bin_recorded_in_usermeta() {
        let s = spec_for("VISUALIZE line SELECT day , COUNT(day) FROM sales BIN day BY year");
        let unit = s
            .get("usermeta")
            .and_then(|u| u.get("bin"))
            .and_then(|b| b.get("unit"))
            .and_then(Json::as_str);
        assert_eq!(unit, Some("year"));
    }

    #[test]
    fn spec_is_valid_json_roundtrip() {
        let s = spec_for("VISUALIZE scatter SELECT amount , amount FROM sales");
        let text = s.to_pretty();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn named_spec_roundtrips_through_import() {
        for src in [
            "VISUALIZE bar SELECT region , SUM(amount) FROM sales GROUP BY region ORDER BY region ASC",
            "VISUALIZE pie SELECT region , COUNT(region) FROM sales GROUP BY region",
            "VISUALIZE line SELECT day , COUNT(day) FROM sales BIN day BY month GROUP BY day",
            "VISUALIZE scatter SELECT amount , amount FROM sales WHERE amount > 5 AND region != \"west\"",
            "VISUALIZE bar SELECT region , SUM(amount) FROM sales GROUP BY region , channel",
        ] {
            let q = parse(src).unwrap();
            let spec = to_vega_lite_named(&q);
            let back = crate::import::from_vega_lite(&spec)
                .unwrap_or_else(|e| panic!("{src}: {e}"));
            let (a, b) = (execute(&q, &db()).unwrap(), execute(&back, &db()).unwrap());
            assert!(a.same_data(&b), "{src} not execution-equivalent after roundtrip");
        }
    }

    #[test]
    fn named_spec_loses_joins_and_subqueries() {
        let q = parse(
            "VISUALIZE bar SELECT a , COUNT(a) FROM t JOIN u ON t.k = u.k WHERE k IN ( SELECT k FROM u ) GROUP BY a",
        )
        .unwrap();
        let spec = to_vega_lite_named(&q);
        // The joined table is gone and the nested filter dropped.
        assert_eq!(
            spec.get("data")
                .and_then(|d| d.get("name"))
                .and_then(Json::as_str),
            Some("t")
        );
        assert!(spec.get("transform").is_none());
    }

    #[test]
    fn description_contains_vql() {
        let s = spec_for("VISUALIZE bar SELECT region , COUNT(region) FROM sales GROUP BY region");
        assert!(s
            .get("description")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("VQL: VISUALIZE"));
    }
}
