//! Language-aware rendering (§3.4 of the paper): translating executed VQL
//! queries into Vega-Lite specifications and rendering them as charts.
//!
//! The paper's pipeline renders a VQL query in three steps: the query is
//! executed over the grounded table, translated into a visualization
//! specification (Vega-Lite JSON), and drawn. This crate implements all
//! three rendering targets:
//!
//! - [`spec`]: VQL → Vega-Lite v5 JSON (with inline data values);
//! - [`svg`]: a self-contained SVG renderer for bar / line / scatter / pie
//!   charts including stacked bars and colored series;
//! - [`ascii`]: a terminal renderer used by the interactive examples and the
//!   simulated user study;
//! - [`import`]: the reverse translation — a practical Vega-Lite v5 subset
//!   back into VQL (the paper's §6.2 direct-Vega-Lite direction), so
//!   JSON-emitting models share the same evaluation path.

pub mod ascii;
pub mod import;
pub mod spec;
pub mod svg;

pub use import::{from_vega_lite, from_vega_lite_text, ImportError};
pub use spec::to_vega_lite;
