//! A self-contained SVG chart renderer.
//!
//! Renders an executed [`ResultSet`] as a standalone SVG document. Supports
//! the four VQL chart types, with stacked bars / colored series when the
//! result carries a series column. The renderer is deliberately simple —
//! fixed canvas, linear scales, categorical x for bar/pie — but it makes the
//! whole pipeline of the paper (NL → VQL → spec → chart) actually end in a
//! picture.

use nl2vis_data::Value;
use nl2vis_query::ast::ChartType;
use nl2vis_query::exec::ResultSet;
use std::collections::BTreeSet;

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_LEFT: f64 = 60.0;
const MARGIN_RIGHT: f64 = 20.0;
const MARGIN_TOP: f64 = 30.0;
const MARGIN_BOTTOM: f64 = 60.0;

/// Categorical color palette (Vega's `category10`).
const PALETTE: [&str; 10] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf",
];

/// Renders a result set as an SVG document string.
pub fn render_svg(result: &ResultSet) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\">\n"
    ));
    out.push_str(&format!(
        "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"14\">{} — {} by {}</text>\n",
        WIDTH / 2.0,
        escape(result.chart.keyword()),
        escape(&result.y_label),
        escape(&result.x_label)
    ));
    if result.rows.is_empty() {
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"#888\">(empty result)</text>\n",
            WIDTH / 2.0,
            HEIGHT / 2.0
        ));
        out.push_str("</svg>\n");
        return out;
    }
    match result.chart {
        ChartType::Pie => render_pie(result, &mut out),
        ChartType::Bar => render_bar(result, &mut out),
        ChartType::Line => render_line(result, &mut out),
        ChartType::Scatter => render_scatter(result, &mut out),
    }
    out.push_str("</svg>\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn plot_width() -> f64 {
    WIDTH - MARGIN_LEFT - MARGIN_RIGHT
}
fn plot_height() -> f64 {
    HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
}

fn numeric(v: &Value) -> f64 {
    v.as_f64().unwrap_or(0.0)
}

/// Distinct series values in first-appearance order, if any.
fn series_values(result: &ResultSet) -> Vec<Value> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (_, _, s) in &result.rows {
        if let Some(sv) = s {
            if seen.insert(sv.clone()) {
                out.push(sv.clone());
            }
        }
    }
    out
}

fn series_color(series: &[Value], v: &Option<Value>) -> &'static str {
    match v {
        None => PALETTE[0],
        Some(sv) => {
            let idx = series.iter().position(|s| s == sv).unwrap_or(0);
            PALETTE[idx % PALETTE.len()]
        }
    }
}

/// Distinct x categories in row order.
fn x_categories(result: &ResultSet) -> Vec<Value> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (x, _, _) in &result.rows {
        if seen.insert(x.clone()) {
            out.push(x.clone());
        }
    }
    out
}

fn axes(out: &mut String, result: &ResultSet, y_max: f64) {
    let x0 = MARGIN_LEFT;
    let y0 = MARGIN_TOP + plot_height();
    out.push_str(&format!(
        "<line x1=\"{x0}\" y1=\"{y0}\" x2=\"{}\" y2=\"{y0}\" stroke=\"#333\"/>\n",
        x0 + plot_width()
    ));
    out.push_str(&format!(
        "<line x1=\"{x0}\" y1=\"{MARGIN_TOP}\" x2=\"{x0}\" y2=\"{y0}\" stroke=\"#333\"/>\n"
    ));
    // Y ticks: 5 divisions.
    for i in 0..=5 {
        let frac = i as f64 / 5.0;
        let y = y0 - frac * plot_height();
        let label = y_max * frac;
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"10\">{}</text>\n",
            x0 - 6.0,
            y + 3.0,
            format_tick(label)
        ));
        out.push_str(&format!(
            "<line x1=\"{}\" y1=\"{y}\" x2=\"{x0}\" y2=\"{y}\" stroke=\"#999\"/>\n",
            x0 - 4.0
        ));
    }
    out.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\">{}</text>\n",
        MARGIN_LEFT + plot_width() / 2.0,
        HEIGHT - 8.0,
        escape(&result.x_label)
    ));
}

fn format_tick(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

fn render_bar(result: &ResultSet, out: &mut String) {
    let cats = x_categories(result);
    let series = series_values(result);
    // Stacked bars: totals per category set the y scale.
    let mut totals = vec![0.0; cats.len()];
    for (x, y, _) in &result.rows {
        let idx = cats.iter().position(|c| c == x).unwrap();
        totals[idx] += numeric(y).max(0.0);
    }
    let y_max = totals.iter().cloned().fold(1.0_f64, f64::max);
    axes(out, result, y_max);

    let band = plot_width() / cats.len() as f64;
    let bar_w = (band * 0.7).max(1.0);
    let y0 = MARGIN_TOP + plot_height();
    let mut stack_base = vec![0.0; cats.len()];

    for (x, y, s) in &result.rows {
        let idx = cats.iter().position(|c| c == x).unwrap();
        let value = numeric(y).max(0.0);
        let h = value / y_max * plot_height();
        let base = stack_base[idx];
        stack_base[idx] += h;
        let cx = MARGIN_LEFT + band * idx as f64 + (band - bar_w) / 2.0;
        out.push_str(&format!(
            "<rect x=\"{cx:.1}\" y=\"{:.1}\" width=\"{bar_w:.1}\" height=\"{h:.1}\" fill=\"{}\"/>\n",
            y0 - base - h,
            series_color(&series, s)
        ));
    }
    // Category labels.
    for (idx, c) in cats.iter().enumerate() {
        let cx = MARGIN_LEFT + band * (idx as f64 + 0.5);
        out.push_str(&format!(
            "<text x=\"{cx:.1}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
            y0 + 14.0,
            escape(&c.render())
        ));
    }
    legend(out, &series);
}

fn render_line(result: &ResultSet, out: &mut String) {
    let cats = x_categories(result);
    let series = series_values(result);
    let y_max = result
        .rows
        .iter()
        .map(|(_, y, _)| numeric(y))
        .fold(1.0_f64, f64::max);
    axes(out, result, y_max);
    let y0 = MARGIN_TOP + plot_height();
    let step = plot_width() / (cats.len().max(2) - 1) as f64;

    let groups: Vec<Option<Value>> = if series.is_empty() {
        vec![None]
    } else {
        series.iter().cloned().map(Some).collect()
    };
    for g in &groups {
        let mut points = Vec::new();
        for (x, y, s) in &result.rows {
            if s == g || (g.is_none() && s.is_none()) {
                let idx = cats.iter().position(|c| c == x).unwrap();
                let px = MARGIN_LEFT + step * idx as f64;
                let py = y0 - numeric(y) / y_max * plot_height();
                points.push(format!("{px:.1},{py:.1}"));
            }
        }
        out.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\"/>\n",
            points.join(" "),
            series_color(&series, g)
        ));
    }
    for (idx, c) in cats.iter().enumerate() {
        let cx = MARGIN_LEFT + step * idx as f64;
        out.push_str(&format!(
            "<text x=\"{cx:.1}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
            y0 + 14.0,
            escape(&c.render())
        ));
    }
    legend(out, &series);
}

fn render_scatter(result: &ResultSet, out: &mut String) {
    let series = series_values(result);
    let x_max = result
        .rows
        .iter()
        .map(|(x, _, _)| numeric(x))
        .fold(1.0_f64, f64::max);
    let y_max = result
        .rows
        .iter()
        .map(|(_, y, _)| numeric(y))
        .fold(1.0_f64, f64::max);
    axes(out, result, y_max);
    let y0 = MARGIN_TOP + plot_height();
    for (x, y, s) in &result.rows {
        let px = MARGIN_LEFT + numeric(x) / x_max * plot_width();
        let py = y0 - numeric(y) / y_max * plot_height();
        out.push_str(&format!(
            "<circle cx=\"{px:.1}\" cy=\"{py:.1}\" r=\"4\" fill=\"{}\" fill-opacity=\"0.7\"/>\n",
            series_color(&series, s)
        ));
    }
    legend(out, &series);
}

fn render_pie(result: &ResultSet, out: &mut String) {
    let cx = WIDTH / 2.0;
    let cy = (HEIGHT + MARGIN_TOP) / 2.0;
    let radius = (plot_height() / 2.0) - 10.0;
    let total: f64 = result
        .rows
        .iter()
        .map(|(_, y, _)| numeric(y).max(0.0))
        .sum();
    if total <= 0.0 {
        return;
    }
    let mut angle = -std::f64::consts::FRAC_PI_2;
    for (i, (x, y, _)) in result.rows.iter().enumerate() {
        let frac = numeric(y).max(0.0) / total;
        let sweep = frac * std::f64::consts::TAU;
        let (x1, y1) = (cx + radius * angle.cos(), cy + radius * angle.sin());
        let end = angle + sweep;
        let (x2, y2) = (cx + radius * end.cos(), cy + radius * end.sin());
        let large = i32::from(sweep > std::f64::consts::PI);
        out.push_str(&format!(
            "<path d=\"M{cx:.1},{cy:.1} L{x1:.1},{y1:.1} A{radius:.1},{radius:.1} 0 {large} 1 {x2:.1},{y2:.1} Z\" fill=\"{}\"/>\n",
            PALETTE[i % PALETTE.len()]
        ));
        // Slice label at the middle angle.
        let mid = angle + sweep / 2.0;
        let (lx, ly) = (
            cx + (radius + 16.0) * mid.cos(),
            cy + (radius + 16.0) * mid.sin(),
        );
        out.push_str(&format!(
            "<text x=\"{lx:.1}\" y=\"{ly:.1}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
            escape(&x.render())
        ));
        angle = end;
    }
}

fn legend(out: &mut String, series: &[Value]) {
    for (i, s) in series.iter().enumerate() {
        let y = MARGIN_TOP + 14.0 * i as f64;
        let x = WIDTH - MARGIN_RIGHT - 90.0;
        out.push_str(&format!(
            "<rect x=\"{x}\" y=\"{}\" width=\"10\" height=\"10\" fill=\"{}\"/>\n",
            y - 9.0,
            PALETTE[i % PALETTE.len()]
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{y}\" font-size=\"10\">{}</text>\n",
            x + 14.0,
            escape(&s.render())
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_query::ast::ChartType;

    fn rs(chart: ChartType, rows: Vec<(Value, Value, Option<Value>)>) -> ResultSet {
        ResultSet {
            chart,
            x_label: "x".into(),
            y_label: "y".into(),
            series_label: rows.iter().any(|r| r.2.is_some()).then(|| "s".to_string()),
            rows,
            ordered: false,
        }
    }

    #[test]
    fn bar_svg_has_rects() {
        let svg = render_svg(&rs(
            ChartType::Bar,
            vec![
                (Value::from("a"), Value::Int(3), None),
                (Value::from("b"), Value::Int(5), None),
            ],
        ));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 2);
    }

    #[test]
    fn stacked_bar_has_colored_rects_and_legend() {
        let svg = render_svg(&rs(
            ChartType::Bar,
            vec![
                (Value::from("a"), Value::Int(3), Some(Value::from("s1"))),
                (Value::from("a"), Value::Int(2), Some(Value::from("s2"))),
            ],
        ));
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
        assert!(svg.contains(">s1</text>"));
    }

    #[test]
    fn line_svg_has_polyline() {
        let svg = render_svg(&rs(
            ChartType::Line,
            vec![
                (Value::Int(2020), Value::Int(3), None),
                (Value::Int(2021), Value::Int(5), None),
            ],
        ));
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn scatter_svg_has_circles() {
        let svg = render_svg(&rs(
            ChartType::Scatter,
            vec![
                (Value::Float(1.0), Value::Float(2.0), None),
                (Value::Float(3.0), Value::Float(4.0), None),
            ],
        ));
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn pie_svg_has_arcs() {
        let svg = render_svg(&rs(
            ChartType::Pie,
            vec![
                (Value::from("a"), Value::Int(1), None),
                (Value::from("b"), Value::Int(3), None),
            ],
        ));
        assert_eq!(svg.matches("<path").count(), 2);
    }

    #[test]
    fn empty_result_renders_placeholder() {
        let svg = render_svg(&rs(ChartType::Bar, vec![]));
        assert!(svg.contains("empty result"));
    }

    #[test]
    fn labels_are_escaped() {
        let svg = render_svg(&rs(
            ChartType::Bar,
            vec![(Value::from("a<b&c"), Value::Int(1), None)],
        ));
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(!svg.contains("a<b&c"));
    }
}
