//! Vega-Lite → VQL import: the reverse of [`crate::spec`].
//!
//! The paper (§6.2) names "direct generation of diverse Vega-Lite
//! specifications" as future work and argues VQL is the more robust
//! intermediate. This module makes the comparison concrete: it translates a
//! practical subset of Vega-Lite v5 — named data sources, the four marks,
//! field/aggregate/timeUnit/sort encodings, color series, and `filter`
//! transforms (predicate objects or `datum.` expressions) — into VQL, so a
//! model that emits Vega-Lite JSON can be evaluated through the same
//! executor and metrics as one that emits VQL.

use nl2vis_data::value::Date;
use nl2vis_data::Json;
use nl2vis_query::ast::*;

/// Errors from Vega-Lite import.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportError {
    /// The document is not valid JSON.
    Json(String),
    /// A required piece is missing.
    Missing(&'static str),
    /// A construct is outside the supported subset.
    Unsupported(String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Json(e) => write!(f, "invalid JSON: {e}"),
            ImportError::Missing(what) => write!(f, "missing {what}"),
            ImportError::Unsupported(what) => write!(f, "unsupported Vega-Lite construct: {what}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Parses a Vega-Lite v5 document (text) into a VQL query.
pub fn from_vega_lite_text(text: &str) -> Result<VqlQuery, ImportError> {
    let json = Json::parse(text).map_err(|e| ImportError::Json(e.to_string()))?;
    from_vega_lite(&json)
}

/// Translates a parsed Vega-Lite v5 document into a VQL query.
pub fn from_vega_lite(spec: &Json) -> Result<VqlQuery, ImportError> {
    // Data source: a named table. Inline values carry no table identity and
    // cannot be re-grounded.
    let from = spec
        .get("data")
        .and_then(|d| d.get("name"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(ImportError::Missing(
            "data.name (inline values have no source table)",
        ))?;

    // Mark.
    let mark = match spec.get("mark") {
        Some(Json::String(s)) => s.clone(),
        Some(obj) => obj
            .get("type")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(ImportError::Missing("mark.type"))?,
        None => return Err(ImportError::Missing("mark")),
    };
    let chart = match mark.as_str() {
        "bar" => ChartType::Bar,
        "arc" => ChartType::Pie,
        "line" | "area" | "trail" => ChartType::Line,
        "point" | "circle" | "square" | "tick" => ChartType::Scatter,
        other => return Err(ImportError::Unsupported(format!("mark `{other}`"))),
    };

    let encoding = spec
        .get("encoding")
        .ok_or(ImportError::Missing("encoding"))?;

    // Pie charts encode x as color and y as theta; others use x/y.
    let (x_enc, y_enc) = if chart == ChartType::Pie {
        (
            encoding
                .get("color")
                .ok_or(ImportError::Missing("encoding.color (pie)"))?,
            encoding
                .get("theta")
                .ok_or(ImportError::Missing("encoding.theta (pie)"))?,
        )
    } else {
        (
            encoding
                .get("x")
                .ok_or(ImportError::Missing("encoding.x"))?,
            encoding
                .get("y")
                .ok_or(ImportError::Missing("encoding.y"))?,
        )
    };

    let x_field = field_of(x_enc).ok_or(ImportError::Missing("encoding.x.field"))?;
    let x = SelectExpr::Column(ColumnRef::new(x_field.clone()));
    let y = select_expr_of(y_enc)?;

    let mut q = VqlQuery::new(chart, x, y, from);

    // Temporal binning from the x encoding's timeUnit.
    if let Some(unit) = x_enc.get("timeUnit").and_then(Json::as_str) {
        let unit = match unit {
            "year" => BinUnit::Year,
            "month" | "yearmonth" => BinUnit::Month,
            "day" => BinUnit::Weekday,
            "quarter" | "yearquarter" => BinUnit::Quarter,
            other => return Err(ImportError::Unsupported(format!("timeUnit `{other}`"))),
        };
        q.bin = Some(Bin {
            column: ColumnRef::new(x_field.clone()),
            unit,
        });
    }

    // Aggregated queries group by x; a color field (non-pie) is the series.
    if q.y.is_aggregate() {
        q.group_by.push(ColumnRef::new(x_field.clone()));
    }
    if chart != ChartType::Pie {
        if let Some(color_field) = encoding.get("color").and_then(field_of) {
            if q.group_by.is_empty() {
                q.group_by.push(ColumnRef::new(x_field.clone()));
            }
            q.group_by.push(ColumnRef::new(color_field));
        }
    }

    // Sorting from the x encoding's sort.
    if let Some(sort) = x_enc.get("sort") {
        q.order = Some(order_of(sort, &x_field)?);
    }

    // Filter transforms.
    for t in spec
        .get("transform")
        .and_then(Json::as_array)
        .unwrap_or(&[])
    {
        if let Some(filter) = t.get("filter") {
            let p = predicate_of(filter)?;
            q.filter = Some(match q.filter.take() {
                Some(prev) => Predicate::And(Box::new(prev), Box::new(p)),
                None => p,
            });
        } else {
            return Err(ImportError::Unsupported("non-filter transform".to_string()));
        }
    }

    Ok(q)
}

fn field_of(enc: &Json) -> Option<String> {
    enc.get("field").and_then(Json::as_str).map(str::to_string)
}

fn select_expr_of(enc: &Json) -> Result<SelectExpr, ImportError> {
    let aggregate = enc.get("aggregate").and_then(Json::as_str);
    let field = field_of(enc);
    match aggregate {
        None => Ok(SelectExpr::Column(ColumnRef::new(
            field.ok_or(ImportError::Missing("encoding field"))?,
        ))),
        Some(agg) => {
            let func = match agg {
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                "mean" | "average" => AggFunc::Avg,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                other => return Err(ImportError::Unsupported(format!("aggregate `{other}`"))),
            };
            Ok(SelectExpr::Agg {
                func,
                arg: field.map(ColumnRef::new),
            })
        }
    }
}

fn order_of(sort: &Json, x_field: &str) -> Result<OrderBy, ImportError> {
    match sort {
        Json::String(s) => match s.as_str() {
            "ascending" => Ok(OrderBy {
                target: OrderTarget::Column(ColumnRef::new(x_field)),
                dir: SortDir::Asc,
            }),
            "descending" => Ok(OrderBy {
                target: OrderTarget::Column(ColumnRef::new(x_field)),
                dir: SortDir::Desc,
            }),
            "y" => Ok(OrderBy {
                target: OrderTarget::Y,
                dir: SortDir::Asc,
            }),
            "-y" => Ok(OrderBy {
                target: OrderTarget::Y,
                dir: SortDir::Desc,
            }),
            "x" => Ok(OrderBy {
                target: OrderTarget::X,
                dir: SortDir::Asc,
            }),
            "-x" => Ok(OrderBy {
                target: OrderTarget::X,
                dir: SortDir::Desc,
            }),
            other => Err(ImportError::Unsupported(format!("sort `{other}`"))),
        },
        Json::Null => Ok(OrderBy {
            target: OrderTarget::Column(ColumnRef::new(x_field)),
            dir: SortDir::Asc,
        }),
        other => Err(ImportError::Unsupported(format!("sort {other}"))),
    }
}

/// Parses a Vega-Lite filter: either a predicate object
/// (`{"field": "age", "gt": 30}`) or a `datum.` expression string
/// (`"datum.age > 30 && datum.team !== 'NYY'"`).
fn predicate_of(filter: &Json) -> Result<Predicate, ImportError> {
    match filter {
        Json::Object(_) => {
            let field = filter
                .get("field")
                .and_then(Json::as_str)
                .ok_or(ImportError::Missing("filter.field"))?;
            let col = ColumnRef::new(field);
            for (key, op) in [
                ("equal", CmpOp::Eq),
                ("lt", CmpOp::Lt),
                ("lte", CmpOp::Le),
                ("gt", CmpOp::Gt),
                ("gte", CmpOp::Ge),
            ] {
                if let Some(v) = filter.get(key) {
                    return Ok(Predicate::Cmp {
                        col,
                        op,
                        value: literal_of(v)?,
                    });
                }
            }
            if let Some(one_of) = filter.get("oneOf").and_then(Json::as_array) {
                // oneOf desugars to an OR chain of equalities.
                let mut lits = one_of.iter().map(literal_of);
                let first = lits
                    .next()
                    .ok_or(ImportError::Unsupported("empty oneOf".to_string()))??;
                let mut acc = Predicate::Cmp {
                    col: col.clone(),
                    op: CmpOp::Eq,
                    value: first,
                };
                for lit in lits {
                    acc = Predicate::Or(
                        Box::new(acc),
                        Box::new(Predicate::Cmp {
                            col: col.clone(),
                            op: CmpOp::Eq,
                            value: lit?,
                        }),
                    );
                }
                return Ok(acc);
            }
            Err(ImportError::Unsupported(
                "filter predicate without operator".to_string(),
            ))
        }
        Json::String(expr) => parse_datum_expr(expr),
        other => Err(ImportError::Unsupported(format!("filter {other}"))),
    }
}

fn literal_of(v: &Json) -> Result<Literal, ImportError> {
    Ok(match v {
        Json::Number(n) => {
            if n.fract() == 0.0 {
                Literal::Int(*n as i64)
            } else {
                Literal::Float(*n)
            }
        }
        Json::String(s) => match Date::parse(s) {
            Some(d) => Literal::Date(d),
            None => Literal::Text(s.clone()),
        },
        Json::Bool(b) => Literal::Bool(*b),
        other => return Err(ImportError::Unsupported(format!("literal {other}"))),
    })
}

/// Parses `datum.<col> <op> <literal>` chains joined by `&&` / `||`
/// (left-associative, `&&` binding tighter, matching Vega expression
/// semantics closely enough for filters).
fn parse_datum_expr(expr: &str) -> Result<Predicate, ImportError> {
    // Split on || first (lowest precedence).
    let or_parts: Vec<&str> = expr.split("||").collect();
    let mut or_acc: Option<Predicate> = None;
    for or_part in or_parts {
        let and_parts: Vec<&str> = or_part.split("&&").collect();
        let mut and_acc: Option<Predicate> = None;
        for atom in and_parts {
            let p = parse_datum_atom(atom.trim())?;
            and_acc = Some(match and_acc {
                None => p,
                Some(prev) => Predicate::And(Box::new(prev), Box::new(p)),
            });
        }
        let clause = and_acc.ok_or(ImportError::Unsupported("empty clause".to_string()))?;
        or_acc = Some(match or_acc {
            None => clause,
            Some(prev) => Predicate::Or(Box::new(prev), Box::new(clause)),
        });
    }
    or_acc.ok_or(ImportError::Unsupported(
        "empty filter expression".to_string(),
    ))
}

fn parse_datum_atom(atom: &str) -> Result<Predicate, ImportError> {
    const OPS: [(&str, CmpOp); 8] = [
        ("!==", CmpOp::Ne),
        ("===", CmpOp::Eq),
        ("!=", CmpOp::Ne),
        ("==", CmpOp::Eq),
        (">=", CmpOp::Ge),
        ("<=", CmpOp::Le),
        (">", CmpOp::Gt),
        ("<", CmpOp::Lt),
    ];
    for (sym, op) in OPS {
        if let Some(pos) = atom.find(sym) {
            let lhs = atom[..pos].trim();
            let rhs = atom[pos + sym.len()..].trim();
            let col = lhs
                .strip_prefix("datum.")
                .or_else(|| {
                    lhs.strip_prefix("datum['")
                        .map(|s| s.trim_end_matches("']"))
                })
                .ok_or_else(|| {
                    ImportError::Unsupported(format!("expected datum.<field>, got `{lhs}`"))
                })?;
            let value =
                if let Some(stripped) = rhs.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
                    match Date::parse(stripped) {
                        Some(d) => Literal::Date(d),
                        None => Literal::Text(stripped.to_string()),
                    }
                } else if rhs == "true" || rhs == "false" {
                    Literal::Bool(rhs == "true")
                } else if let Ok(i) = rhs.parse::<i64>() {
                    Literal::Int(i)
                } else if let Ok(f) = rhs.parse::<f64>() {
                    Literal::Float(f)
                } else {
                    return Err(ImportError::Unsupported(format!("literal `{rhs}`")));
                };
            return Ok(Predicate::Cmp {
                col: ColumnRef::new(col),
                op,
                value,
            });
        }
    }
    Err(ImportError::Unsupported(format!(
        "no comparison in `{atom}`"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_query::canon::exact_match;
    use nl2vis_query::parse;

    fn vql(src: &str) -> VqlQuery {
        parse(src).unwrap()
    }

    #[test]
    fn bar_with_count_and_sort() {
        let q = from_vega_lite_text(
            r#"{
                "data": {"name": "technician"},
                "mark": "bar",
                "encoding": {
                    "x": {"field": "team", "type": "nominal", "sort": "ascending"},
                    "y": {"field": "team", "aggregate": "count"}
                }
            }"#,
        )
        .unwrap();
        assert!(exact_match(
            &q,
            &vql("VISUALIZE bar SELECT team , COUNT(team) FROM technician GROUP BY team ORDER BY team ASC")
        ));
    }

    #[test]
    fn pie_uses_theta_and_color() {
        let q = from_vega_lite_text(
            r#"{
                "data": {"name": "sales"},
                "mark": "arc",
                "encoding": {
                    "theta": {"field": "amount", "aggregate": "sum"},
                    "color": {"field": "region"}
                }
            }"#,
        )
        .unwrap();
        assert!(exact_match(
            &q,
            &vql("VISUALIZE pie SELECT region , SUM(amount) FROM sales GROUP BY region")
        ));
    }

    #[test]
    fn time_unit_becomes_bin() {
        let q = from_vega_lite_text(
            r#"{
                "data": {"name": "payments"},
                "mark": "line",
                "encoding": {
                    "x": {"field": "pay_date", "type": "temporal", "timeUnit": "yearmonth"},
                    "y": {"aggregate": "count", "field": "pay_date"}
                }
            }"#,
        )
        .unwrap();
        assert_eq!(q.bin.as_ref().unwrap().unit, BinUnit::Month);
        assert_eq!(q.chart, ChartType::Line);
    }

    #[test]
    fn filter_predicate_objects() {
        let q = from_vega_lite_text(
            r#"{
                "data": {"name": "t"},
                "mark": "bar",
                "encoding": {
                    "x": {"field": "a"},
                    "y": {"field": "b", "aggregate": "mean"}
                },
                "transform": [
                    {"filter": {"field": "age", "gt": 30}},
                    {"filter": {"field": "team", "equal": "BOS"}}
                ]
            }"#,
        )
        .unwrap();
        assert!(exact_match(
            &q,
            &vql("VISUALIZE bar SELECT a , AVG(b) FROM t WHERE age > 30 AND team = \"BOS\" GROUP BY a")
        ));
    }

    #[test]
    fn filter_datum_expression() {
        let q = from_vega_lite_text(
            r#"{
                "data": {"name": "t"},
                "mark": "point",
                "encoding": {"x": {"field": "a"}, "y": {"field": "b"}},
                "transform": [{"filter": "datum.age > 30 && datum.team !== 'NYY' || datum.vip === true"}]
            }"#,
        )
        .unwrap();
        assert!(exact_match(
            &q,
            &vql("VISUALIZE scatter SELECT a , b FROM t WHERE age > 30 AND team != \"NYY\" OR vip = true")
        ));
    }

    #[test]
    fn one_of_desugars_to_or() {
        let q = from_vega_lite_text(
            r#"{
                "data": {"name": "t"},
                "mark": "bar",
                "encoding": {"x": {"field": "a"}, "y": {"aggregate": "count"}},
                "transform": [{"filter": {"field": "team", "oneOf": ["BOS", "NYY"]}}]
            }"#,
        )
        .unwrap();
        assert!(exact_match(
            &q,
            &vql("VISUALIZE bar SELECT a , COUNT(*) FROM t WHERE team = \"BOS\" OR team = \"NYY\" GROUP BY a")
        ));
    }

    #[test]
    fn color_series_on_bar() {
        let q = from_vega_lite_text(
            r#"{
                "data": {"name": "s"},
                "mark": {"type": "bar"},
                "encoding": {
                    "x": {"field": "year"},
                    "y": {"field": "sales", "aggregate": "sum"},
                    "color": {"field": "region"}
                }
            }"#,
        )
        .unwrap();
        assert!(exact_match(
            &q,
            &vql("VISUALIZE bar SELECT year , SUM(sales) FROM s GROUP BY year , region")
        ));
    }

    #[test]
    fn roundtrip_with_exporter() {
        use nl2vis_data::schema::{ColumnDef, DatabaseSchema, TableDef};
        use nl2vis_data::value::DataType::*;
        use nl2vis_data::{Database, Value};
        // Export a query + result, rewrite the data to a named source, and
        // import it back: execution-equivalent query.
        let mut s = DatabaseSchema::new("d", "x");
        s.tables.push(TableDef::new(
            "sales",
            vec![
                ColumnDef::new("region", Text),
                ColumnDef::new("amount", Int),
            ],
        ));
        let mut db = Database::new(s);
        for (r, a) in [("east", 10i64), ("west", 25)] {
            db.insert("sales", vec![r.into(), Value::Int(a)]).unwrap();
        }
        let q = vql("VISUALIZE bar SELECT region , SUM(amount) FROM sales GROUP BY region ORDER BY region ASC");
        let result = nl2vis_query::execute(&q, &db).unwrap();
        let mut spec = crate::spec::to_vega_lite(&q, &result);
        spec.set("data", Json::object(vec![("name", Json::from("sales"))]));
        // The exporter labels the y field "sum(amount)"; rewrite it the way a
        // generator targeting a named source would.
        let encoding = spec.get("encoding").unwrap().clone();
        let mut y = encoding.get("y").unwrap().clone();
        y.set("field", Json::from("amount"));
        y.set("aggregate", Json::from("sum"));
        let mut enc = encoding;
        enc.set("y", y);
        spec.set("encoding", enc);

        let imported = from_vega_lite(&spec).unwrap();
        let reexecuted = nl2vis_query::execute(&imported, &db).unwrap();
        assert!(reexecuted.same_data(&result));
    }

    #[test]
    fn inline_values_are_rejected() {
        let err = from_vega_lite_text(
            r#"{"data": {"values": [{"a": 1}]}, "mark": "bar",
                "encoding": {"x": {"field": "a"}, "y": {"field": "a"}}}"#,
        )
        .unwrap_err();
        assert!(matches!(err, ImportError::Missing(_)));
    }

    #[test]
    fn unsupported_constructs_are_reported() {
        let boxplot = r#"{"data": {"name": "t"}, "mark": "boxplot",
            "encoding": {"x": {"field": "a"}, "y": {"field": "b"}}}"#;
        assert!(matches!(
            from_vega_lite_text(boxplot),
            Err(ImportError::Unsupported(_))
        ));
        let bad_json = from_vega_lite_text("{not json");
        assert!(matches!(bad_json, Err(ImportError::Json(_))));
    }
}
