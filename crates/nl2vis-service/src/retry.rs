//! The retry middleware: bounded attempts, capped exponential backoff with
//! deterministic jitter, and server-directed backoff for load shedding.
//!
//! Transient infrastructure faults (a refused connect, a dropped
//! connection, a tripped deadline, a 5xx) deserve another attempt;
//! semantic rejections (4xx: wrong model, malformed request) do not — the
//! server will say the same thing again. The one 4xx exception is **429**:
//! a load-shedding server is explicitly inviting the client back, and when
//! it names a `Retry-After` interval the retry layer sleeps exactly that
//! long instead of its own schedule. [`RetryPolicy`] encodes the split
//! plus a capped exponential backoff whose jitter comes from a seeded
//! [`Rng`], so a retried eval run replays its exact sleep schedule.

use crate::outcome::{CompletionOutcome, GenOptions, TransportError, TransportErrorKind};
use crate::service::{CompletionService, Layer};
use nl2vis_data::Rng;
use nl2vis_obs as obs;
use std::time::Duration;

/// Bounded retry with capped exponential backoff and deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff (applied before jitter halving).
    pub max_backoff: Duration,
    /// Seed for the jitter stream; same seed, same sleep schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, typed error on failure).
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// A policy with `max_attempts` attempts and default backoff shape.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Default::default()
        }
    }

    /// The backoff before retry number `retry` (0-based: the sleep after
    /// the first failure is `backoff(0)`). Exponential with a cap, jittered
    /// into `[cap/2, cap]` by the seeded stream — decorrelating concurrent
    /// clients without sacrificing replayability.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(20))
            .min(self.max_backoff);
        let half = exp / 2;
        if half.is_zero() {
            return exp;
        }
        let mut rng = Rng::new(self.jitter_seed ^ u64::from(retry).wrapping_mul(0x9E37_79B9));
        half + Duration::from_nanos(rng.below(half.as_nanos().min(u128::from(u64::MAX)) as u64))
    }

    /// Whether a failure kind is worth retrying: connectivity loss,
    /// deadlines and 5xx are transient; 4xx and protocol violations are
    /// semantic and deterministic, so retrying them only burns the attempt
    /// budget. The exception is 429 — an admission-control shed is an
    /// explicit invitation to come back, usually with a `Retry-After`.
    pub fn retryable(&self, kind: &TransportErrorKind) -> bool {
        match kind {
            TransportErrorKind::Timeout
            | TransportErrorKind::Connect
            | TransportErrorKind::ConnectionClosed => true,
            TransportErrorKind::Status(code) => *code >= 500 || *code == 429,
            TransportErrorKind::Protocol | TransportErrorKind::Io => false,
        }
    }
}

/// [`Layer`] applying a [`RetryPolicy`] around an inner service.
#[derive(Debug, Clone, Copy)]
pub struct RetryLayer {
    policy: RetryPolicy,
}

impl RetryLayer {
    /// A retry layer driven by `policy`.
    pub fn new(policy: RetryPolicy) -> RetryLayer {
        RetryLayer { policy }
    }
}

impl<S: CompletionService> Layer<S> for RetryLayer {
    type Service = Retry<S>;

    fn layer(&self, inner: S) -> Retry<S> {
        Retry {
            inner,
            policy: self.policy,
        }
    }
}

/// The retry middleware: re-issues retryable failures under the policy.
///
/// Each retry is visible on the `llm.retries_total` counter and annotated
/// onto the enclosing request span (the [`TraceLayer`](crate::TraceLayer)
/// above it in the canonical stack) — the retry layer opens no spans of
/// its own, keeping the emitted span names identical to the pre-layered
/// stack. A server-provided `Retry-After` overrides the policy's backoff.
pub struct Retry<S> {
    inner: S,
    policy: RetryPolicy,
}

impl<S> Retry<S> {
    /// The wrapped policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: CompletionService> CompletionService for Retry<S> {
    fn model(&self) -> &str {
        self.inner.model()
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        let attempts = self.policy.max_attempts.max(1);
        let mut last: Option<TransportError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                obs::count("llm.retries_total", 1);
                obs::annotate_current("retry", &attempt.to_string());
                let server_asked = last.as_ref().and_then(|e| e.retry_after);
                std::thread::sleep(
                    server_asked.unwrap_or_else(|| self.policy.backoff(attempt - 1)),
                );
            }
            match self.inner.call(prompt, opts) {
                Ok(text) => {
                    if attempt > 0 {
                        obs::count("llm.retry_success_total", 1);
                        obs::annotate_current("retry_outcome", "recovered");
                    }
                    return Ok(text);
                }
                Err(e) if self.policy.retryable(&e.kind) => last = Some(e),
                Err(mut e) => {
                    e.attempts = attempt + 1;
                    return Err(e);
                }
            }
        }
        obs::annotate_current("retry_outcome", "exhausted");
        let mut final_error = last.expect("at least one attempt ran");
        final_error.attempts = attempts;
        Err(final_error)
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("retry");
        self.inner.describe(stack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::service_fn;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Instant;

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 1,
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            jitter_seed: 42,
        };
        // Jitter keeps each backoff in [exp/2, exp]; exp doubles then caps.
        let expected_exp = [10u64, 20, 40, 80, 80, 80];
        for (retry, exp_ms) in expected_exp.iter().enumerate() {
            let b = policy.backoff(retry as u32);
            let exp = Duration::from_millis(*exp_ms);
            assert!(b >= exp / 2, "retry {retry}: {b:?} < {:?}", exp / 2);
            assert!(b <= exp, "retry {retry}: {b:?} > {exp:?}");
        }
        // Same seed, same schedule; different seed, (almost surely) not.
        let again = policy;
        assert_eq!(policy.backoff(2), again.backoff(2));
        let other = RetryPolicy {
            jitter_seed: 43,
            ..policy
        };
        assert_ne!(policy.backoff(2), other.backoff(2));
    }

    #[test]
    fn giant_retry_index_does_not_overflow() {
        let policy = RetryPolicy::default();
        let b = policy.backoff(u32::MAX);
        assert!(b <= policy.max_backoff);
    }

    #[test]
    fn retryability_classification() {
        let policy = RetryPolicy::default();
        assert!(policy.retryable(&TransportErrorKind::Timeout));
        assert!(policy.retryable(&TransportErrorKind::Connect));
        assert!(policy.retryable(&TransportErrorKind::ConnectionClosed));
        assert!(policy.retryable(&TransportErrorKind::Status(500)));
        assert!(policy.retryable(&TransportErrorKind::Status(503)));
        // The one 4xx worth retrying: admission-control shedding.
        assert!(policy.retryable(&TransportErrorKind::Status(429)));
        // Semantic failures are deterministic: retrying cannot help.
        assert!(!policy.retryable(&TransportErrorKind::Status(400)));
        assert!(!policy.retryable(&TransportErrorKind::Status(404)));
        assert!(!policy.retryable(&TransportErrorKind::Protocol));
        assert!(!policy.retryable(&TransportErrorKind::Io));
    }

    #[test]
    fn transient_failure_retries_to_success() {
        let calls = AtomicU32::new(0);
        let leaf = service_fn("m", |_, _| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(TransportError::new(
                    TransportErrorKind::ConnectionClosed,
                    1,
                    "peer dropped",
                ))
            } else {
                Ok("BAR X".to_string())
            }
        });
        let svc = RetryLayer::new(fast_policy(3)).layer(leaf);
        assert_eq!(svc.call("p", &GenOptions::default()).unwrap(), "BAR X");
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn semantic_failure_is_not_retried() {
        let calls = AtomicU32::new(0);
        let leaf = service_fn("m", |_, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(TransportError::new(
                TransportErrorKind::Status(400),
                1,
                "not hosted here",
            ))
        });
        let svc = RetryLayer::new(fast_policy(5)).layer(leaf);
        let err = svc.call("p", &GenOptions::default()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Status(400));
        assert_eq!(err.attempts, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn exhaustion_reports_total_attempts() {
        let calls = AtomicU32::new(0);
        let leaf = service_fn("m", |_, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(TransportError::new(
                TransportErrorKind::Status(500),
                1,
                "boom",
            ))
        });
        let svc = RetryLayer::new(fast_policy(3)).layer(leaf);
        let err = svc.call("p", &GenOptions::default()).unwrap_err();
        assert_eq!(err.attempts, 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn server_retry_after_overrides_the_backoff_schedule() {
        // The policy's own backoff would be ~1-2ms; the server asks for
        // 40ms, and the retry layer must honor the longer interval.
        let calls = AtomicU32::new(0);
        let leaf = service_fn("m", |_, _| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                let mut e = TransportError::new(TransportErrorKind::Status(429), 1, "shed");
                e.retry_after = Some(Duration::from_millis(40));
                Err(e)
            } else {
                Ok("ok".to_string())
            }
        });
        let svc = RetryLayer::new(fast_policy(3)).layer(leaf);
        let started = Instant::now();
        assert!(svc.call("p", &GenOptions::default()).is_ok());
        assert!(
            started.elapsed() >= Duration::from_millis(40),
            "slept only {:?}",
            started.elapsed()
        );
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }
}
