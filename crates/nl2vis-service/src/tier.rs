//! Tiered model routing: validation-gated escalation across model tiers.
//!
//! The paper's Table 3 establishes a quality spectrum — retrieval baselines
//! below ncNet below T5 below the LLM tiers — and the repo exploits it
//! offline in the eval harness. This module turns that spectrum into a
//! *runtime* decision: serve the cheapest tier first, check its answer with
//! the VQL parser (and optionally the executor) that already exist in
//! `nl2vis-query`, and escalate to a stronger tier only when the check (or
//! the transport) fails.
//!
//! Two pieces compose:
//!
//! - [`ValidateLayer`] / [`Validated`]: a middleware that runs a
//!   [`Validator`] over every successful completion and converts an
//!   invalid answer into a transport error with status 422. Placed *inside*
//!   a tier's cache (`Cached(Validate(leaf))`), it guarantees the cache
//!   never memoizes an answer that failed validation — errors are never
//!   cached — and 422 is non-retryable under the standard
//!   [`RetryPolicy`](crate::RetryPolicy), so a retry layer above the router
//!   never burns attempts re-asking a tier that produced garbage.
//! - [`RouteLayer`] → [`TieredService`]: an ordered list of inner
//!   [`CompletionService`] tiers, each with a name and a cost weight,
//!   walked under a [`RoutePolicy`]. Any `Err` from a tier — validation
//!   rejection or genuine transport failure — escalates to the next tier.
//!   The *last* tier in routing order is the quality floor: its answer is
//!   final, whatever a validator would have said, so accuracy against a
//!   strong-tier-only configuration is preserved by construction.
//!
//! The stack contract ([`validate_stack`](crate::validate_stack), enforced
//! at compile time by the root crate's `StackBuilder`) pins the router to
//! exactly one position: *above* per-tier caches (each tier caches under
//! its own model's key; a shared cache outside the router would collapse
//! the tiers' distinct keyspaces), *below* retry and metrics (a retry above
//! the router re-enters tier selection, so a transient failure can fail
//! over; a retry inside a tier would multiply the cost budget before the
//! router ever saw the failure).

use crate::outcome::{CompletionOutcome, GenOptions, TransportError, TransportErrorKind};
use crate::service::{validate_stack, CompletionService, Layer};
use nl2vis_obs as obs;
use nl2vis_query::{extract_vql, CheckStage, QueryError};
use std::sync::Arc;
use std::time::Instant;

/// HTTP-ish status carried by validation rejections. Chosen because it is
/// non-retryable under [`RetryPolicy::retryable`](crate::RetryPolicy):
/// re-asking the same tier the same question yields the same bad answer,
/// so the only useful reaction is escalation.
pub const VALIDATION_REJECTED_STATUS: u16 = 422;

/// Why a completion failed validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationFailure {
    /// Which query check rejected it (syntax / binding / execution).
    pub stage: CheckStage,
    /// The failing clause, when the query check attributed one.
    pub component: Option<nl2vis_query::component::Component>,
    /// Human-readable detail.
    pub detail: String,
}

impl ValidationFailure {
    /// A failure from a [`QueryError`], carrying its stage and component.
    pub fn from_query_error(e: &QueryError) -> ValidationFailure {
        ValidationFailure {
            stage: e.stage(),
            component: e.component(),
            detail: e.to_string(),
        }
    }
}

impl std::fmt::Display for ValidationFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.component {
            Some(c) => write!(f, "{} check failed in {}: {}", self.stage, c, self.detail),
            None => write!(f, "{} check failed: {}", self.stage, self.detail),
        }
    }
}

/// A completion check: is this answer worth returning (and caching)?
pub trait Validator {
    /// Validates `completion` as an answer to `prompt`.
    fn validate(&self, prompt: &str, completion: &str) -> Result<(), ValidationFailure>;
}

impl<V: Validator + ?Sized> Validator for Arc<V> {
    fn validate(&self, prompt: &str, completion: &str) -> Result<(), ValidationFailure> {
        (**self).validate(prompt, completion)
    }
}

/// Parse-only VQL validation: the completion must contain an extractable,
/// syntactically well-formed VQL query. The cheapest useful gate — catches
/// refusals, prose, and truncated queries without needing a database.
#[derive(Debug, Clone, Copy, Default)]
pub struct VqlSyntaxValidator;

impl Validator for VqlSyntaxValidator {
    fn validate(&self, _prompt: &str, completion: &str) -> Result<(), ValidationFailure> {
        let Some(vql) = extract_vql(completion) else {
            return Err(ValidationFailure {
                stage: CheckStage::Syntax,
                component: None,
                detail: "no VQL query in completion".to_string(),
            });
        };
        match nl2vis_query::parse(vql) {
            Ok(_) => Ok(()),
            Err(e) => Err(ValidationFailure::from_query_error(&e)),
        }
    }
}

/// Full execution-check validation: the query must parse *and* execute
/// against the database the prompt addressed. The `resolve` closure maps a
/// prompt back to its database (serving knows which schema it prompted
/// with); a prompt that resolves to no database degrades to the syntax
/// check rather than rejecting blindly.
pub struct VqlExecValidator<R> {
    resolve: R,
    require_rows: bool,
}

impl<R> VqlExecValidator<R>
where
    R: Fn(&str) -> Option<Arc<nl2vis_data::Database>>,
{
    /// An execution validator resolving databases through `resolve`.
    pub fn new(resolve: R) -> VqlExecValidator<R> {
        VqlExecValidator {
            resolve,
            require_rows: false,
        }
    }

    /// Also rejects queries that execute to an *empty* result. On a
    /// data-bearing benchmark schema, a well-posed visualization query
    /// yields rows; an empty result usually means the model bound the
    /// wrong column or compared against a literal that isn't in the data
    /// — wrongness that executes cleanly and would otherwise slip past
    /// the gate. Costs false escalations on genuinely empty answers, so
    /// it's opt-in.
    pub fn require_rows(mut self) -> VqlExecValidator<R> {
        self.require_rows = true;
        self
    }
}

impl<R> Validator for VqlExecValidator<R>
where
    R: Fn(&str) -> Option<Arc<nl2vis_data::Database>>,
{
    fn validate(&self, prompt: &str, completion: &str) -> Result<(), ValidationFailure> {
        VqlSyntaxValidator.validate(prompt, completion)?;
        let Some(db) = (self.resolve)(prompt) else {
            return Ok(()); // No schema context: syntax check is all we can do.
        };
        let vql = extract_vql(completion).expect("syntax check passed");
        let query = nl2vis_query::parse(vql).expect("syntax check passed");
        match nl2vis_query::execute(&query, &db) {
            Ok(result) if self.require_rows && result.rows.is_empty() => Err(ValidationFailure {
                stage: CheckStage::Execution,
                component: None,
                detail: "query executed to an empty result".to_string(),
            }),
            Ok(_) => Ok(()),
            Err(e) => Err(ValidationFailure::from_query_error(&e)),
        }
    }
}

/// [`Layer`] gating completions behind a [`Validator`]; see the module
/// docs for where it sits in a tier's stack.
pub struct ValidateLayer<V> {
    validator: Arc<V>,
}

impl<V: Validator> ValidateLayer<V> {
    /// A validation layer running `validator` over every completion.
    pub fn new(validator: V) -> ValidateLayer<V> {
        ValidateLayer {
            validator: Arc::new(validator),
        }
    }
}

impl<V> Clone for ValidateLayer<V> {
    fn clone(&self) -> ValidateLayer<V> {
        ValidateLayer {
            validator: Arc::clone(&self.validator),
        }
    }
}

impl<V: Validator, S: CompletionService> Layer<S> for ValidateLayer<V> {
    type Service = Validated<S, V>;

    fn layer(&self, inner: S) -> Validated<S, V> {
        Validated {
            inner,
            validator: Arc::clone(&self.validator),
        }
    }
}

/// The validation middleware; see [`ValidateLayer`].
pub struct Validated<S, V> {
    inner: S,
    validator: Arc<V>,
}

impl<S: CompletionService, V: Validator> CompletionService for Validated<S, V> {
    fn model(&self) -> &str {
        self.inner.model()
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        let text = self.inner.call(prompt, opts)?;
        match self.validator.validate(prompt, &text) {
            Ok(()) => Ok(text),
            Err(failure) => {
                obs::count("route.tier.validation_failures_total", 1);
                obs::error("route", "validation", &failure.to_string());
                obs::annotate_current("validation.stage", &failure.stage.to_string());
                Err(TransportError::new(
                    TransportErrorKind::Status(VALIDATION_REJECTED_STATUS),
                    1,
                    failure.to_string(),
                ))
            }
        }
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("validate");
        self.inner.describe(stack);
    }
}

/// How the router walks its tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Tiers in registration order (cheapest first, by convention): the
    /// paper's p50 win — the cheap tier answers most traffic, the strong
    /// tier is the quality floor.
    CheapFirst,
    /// Registration order reversed: the strongest tier answers first; the
    /// cheaper tiers only see traffic when it fails at the transport level.
    QualityFirst,
    /// Like [`RoutePolicy::CheapFirst`], but a tier is skipped when the
    /// cost already spent on this request plus its weight would exceed the
    /// per-request budget — except that at least one tier (the first
    /// affordable one, or the cheapest overall) always runs.
    BudgetCapped(u64),
}

impl RoutePolicy {
    /// Parses a policy name as used by CLI flags (`cheap-first`,
    /// `quality-first`, `budget:<units>`).
    pub fn parse(s: &str) -> Result<RoutePolicy, String> {
        match s {
            "cheap-first" => Ok(RoutePolicy::CheapFirst),
            "quality-first" => Ok(RoutePolicy::QualityFirst),
            _ => match s.strip_prefix("budget:") {
                Some(b) => b
                    .parse::<u64>()
                    .map(RoutePolicy::BudgetCapped)
                    .map_err(|e| format!("bad budget in route policy `{s}`: {e}")),
                None => Err(format!(
                    "unknown route policy `{s}` (expected cheap-first, quality-first, \
                     or budget:<units>)"
                )),
            },
        }
    }

    /// Stable display name (inverse of [`RoutePolicy::parse`]).
    pub fn name(&self) -> String {
        match self {
            RoutePolicy::CheapFirst => "cheap-first".to_string(),
            RoutePolicy::QualityFirst => "quality-first".to_string(),
            RoutePolicy::BudgetCapped(b) => format!("budget:{b}"),
        }
    }
}

/// One rung of the ladder: a named inner service with a cost weight.
pub struct Tier {
    /// Tier name used in metrics (`route.tier.<name>.*`) and reporting.
    pub name: String,
    /// Abstract cost units charged per request attempted on this tier
    /// (e.g. derived from a model's per-token price).
    pub cost_units: u64,
    service: Box<dyn CompletionService + Send + Sync>,
}

impl std::fmt::Debug for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tier")
            .field("name", &self.name)
            .field("cost_units", &self.cost_units)
            .field("model", &self.service.model())
            .finish()
    }
}

/// Builder for a [`TieredService`]; `RouteLayer::new(policy).tier(..).
/// tier(..).build()`. Not a [`Layer`] over one inner service — the router
/// *is* the fan-out point — but named for symmetry with the other stack
/// constructors.
pub struct RouteLayer {
    policy: RoutePolicy,
    model: String,
    tiers: Vec<Tier>,
}

impl RouteLayer {
    /// An empty router with `policy`; add rungs with [`RouteLayer::tier`].
    pub fn new(policy: RoutePolicy) -> RouteLayer {
        RouteLayer {
            policy,
            model: "tiered".to_string(),
            tiers: Vec::new(),
        }
    }

    /// Overrides the model label the composed service reports (used for
    /// cache keys above the router and for `/v1/models`).
    pub fn model(mut self, model: impl Into<String>) -> RouteLayer {
        self.model = model.into();
        self
    }

    /// Appends a tier. Registration order is cheap → strong; the policy
    /// decides the walk order.
    pub fn tier(
        mut self,
        name: impl Into<String>,
        cost_units: u64,
        service: impl CompletionService + Send + Sync + 'static,
    ) -> RouteLayer {
        self.tiers.push(Tier {
            name: name.into(),
            cost_units,
            service: Box::new(service),
        });
        self
    }

    /// Validates every tier's inner stack and produces the router.
    ///
    /// Each tier must be a conforming stack on its own (the standard
    /// [`validate_stack`] contract), must not nest another router, and
    /// must not contain a retry layer — retries belong *above* the router
    /// so a transient failure escalates instead of multiplying one tier's
    /// cost.
    pub fn build(self) -> Result<TieredService, String> {
        if self.tiers.is_empty() {
            return Err("tiered service needs at least one tier".to_string());
        }
        for t in &self.tiers {
            let stack = crate::service::stack_of(&t.service);
            validate_stack(&stack)?;
            if stack.contains(&"tier") {
                return Err(format!(
                    "tier `{}` nests another router (tiers must be flat): {stack:?}",
                    t.name
                ));
            }
            if stack.contains(&"retry") {
                return Err(format!(
                    "tier `{}` contains a retry layer; retries belong above the router \
                     so failures escalate instead of multiplying tier cost: {stack:?}",
                    t.name
                ));
            }
        }
        Ok(TieredService {
            policy: self.policy,
            model: self.model,
            tiers: self.tiers,
        })
    }
}

/// The router: walks its tiers under the configured policy, escalating on
/// any error; see the module docs. Tag `"tier"`.
pub struct TieredService {
    policy: RoutePolicy,
    model: String,
    tiers: Vec<Tier>,
}

impl std::fmt::Debug for TieredService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredService")
            .field("policy", &self.policy)
            .field("model", &self.model)
            .field("tiers", &self.tiers)
            .finish()
    }
}

impl TieredService {
    /// The routing policy.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// The tiers in registration (cheap → strong) order.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Indexes into [`TieredService::tiers`] in the order this request
    /// will attempt them.
    fn walk_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.tiers.len()).collect();
        if self.policy == RoutePolicy::QualityFirst {
            order.reverse();
        }
        order
    }
}

impl CompletionService for TieredService {
    fn model(&self) -> &str {
        &self.model
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        let span = obs::Span::enter("route.request");
        let order = self.walk_order();
        let budget = match self.policy {
            RoutePolicy::BudgetCapped(b) => Some(b),
            _ => None,
        };
        let mut spent: u64 = 0;
        let mut attempted = 0usize;
        let mut last_err: Option<TransportError> = None;

        for (walk_pos, &ti) in order.iter().enumerate() {
            let tier = &self.tiers[ti];
            if let Some(b) = budget {
                // Always attempt at least one tier; past that, skip rungs
                // the remaining budget cannot pay for.
                if attempted > 0 && spent + tier.cost_units > b {
                    continue;
                }
            }
            attempted += 1;
            spent += tier.cost_units;
            obs::count("route.tier.requests_total", 1);
            obs::count(&format!("route.tier.{}.requests_total", tier.name), 1);
            obs::count("route.cost_units", tier.cost_units);
            let started = Instant::now();
            let outcome = tier.service.call(prompt, opts);
            obs::global()
                .histogram(&format!("route.tier.{}.duration_us", tier.name))
                .record_duration(started.elapsed());
            match outcome {
                Ok(text) => {
                    span.annotate("route.winner", &tier.name);
                    span.annotate("route.escalations", &walk_pos.to_string());
                    return Ok(text);
                }
                Err(e) => {
                    let will_escalate = walk_pos + 1 < order.len();
                    if will_escalate {
                        obs::count("route.tier.escalations_total", 1);
                        let reason = match e.kind {
                            TransportErrorKind::Status(VALIDATION_REJECTED_STATUS) => "validation",
                            _ => "transport",
                        };
                        obs::count(&format!("route.tier.{}.escalations_total", tier.name), 1);
                        span.annotate("route.escalated_from", &tier.name);
                        span.annotate("route.escalation_reason", reason);
                    }
                    last_err = Some(e);
                }
            }
        }
        span.annotate("route.winner", "none");
        Err(last_err.expect("build() guarantees at least one tier"))
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        // Deliberately no recursion into the tiers: each tier is its own
        // stack, validated at build() — flattening them here would make a
        // two-tier router look like an (illegal) double-cache stack.
        stack.push("tier");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{service_fn, stack_of};
    use nl2vis_data::schema::{ColumnDef, DatabaseSchema, TableDef};
    use nl2vis_data::value::DataType;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn good() -> &'static str {
        "VQL: VISUALIZE bar SELECT name , COUNT(name) FROM t"
    }

    #[test]
    fn syntax_validator_accepts_wellformed_and_rejects_prose() {
        let v = VqlSyntaxValidator;
        assert!(v.validate("p", good()).is_ok());
        let e = v.validate("p", "I cannot answer that.").unwrap_err();
        assert_eq!(e.stage, CheckStage::Syntax);
        let e = v.validate("p", "VQL: VISUALIZE bar SELECT").unwrap_err();
        assert_eq!(e.stage, CheckStage::Syntax);
    }

    #[test]
    fn exec_validator_catches_binding_failures_with_components() {
        let mut s = DatabaseSchema::new("d", "test");
        s.tables.push(TableDef::new(
            "t",
            vec![ColumnDef::new("name", DataType::Text)],
        ));
        let db = Arc::new(nl2vis_data::Database::new(s));
        let v = VqlExecValidator::new(move |_p: &str| Some(Arc::clone(&db)));
        assert!(v.validate("p", good()).is_ok());
        let e = v
            .validate("p", "VQL: VISUALIZE bar SELECT nope , COUNT(name) FROM t")
            .unwrap_err();
        assert_eq!(e.stage, CheckStage::Binding);
        assert_eq!(e.component, Some(nl2vis_query::component::Component::AxisX));
    }

    #[test]
    fn exec_validator_require_rows_rejects_empty_results() {
        // A schema with no data: every aggregate executes cleanly but
        // yields zero rows. The plain validator accepts; require_rows
        // escalates with an execution-stage failure.
        let mut s = DatabaseSchema::new("d", "test");
        s.tables.push(TableDef::new(
            "t",
            vec![ColumnDef::new("name", DataType::Text)],
        ));
        let db = Arc::new(nl2vis_data::Database::new(s));
        let resolve = {
            let db = Arc::clone(&db);
            move |_p: &str| Some(Arc::clone(&db))
        };
        assert!(VqlExecValidator::new(resolve.clone())
            .validate("p", good())
            .is_ok());
        let e = VqlExecValidator::new(resolve)
            .require_rows()
            .validate("p", good())
            .unwrap_err();
        assert_eq!(e.stage, CheckStage::Execution);
        assert!(e.detail.contains("empty result"), "{}", e.detail);
    }

    #[test]
    fn exec_validator_without_schema_degrades_to_syntax() {
        let v = VqlExecValidator::new(|_p: &str| None);
        assert!(v
            .validate("p", "VQL: VISUALIZE bar SELECT x , COUNT(x) FROM missing")
            .is_ok());
        assert!(v.validate("p", "no query here").is_err());
    }

    #[test]
    fn validate_layer_converts_invalid_completions_to_422() {
        let svc = ValidateLayer::new(VqlSyntaxValidator)
            .layer(service_fn("m", |_, _| Ok("garbage".to_string())));
        let err = svc.call("p", &GenOptions::default()).unwrap_err();
        assert_eq!(
            err.kind,
            TransportErrorKind::Status(VALIDATION_REJECTED_STATUS)
        );
        assert_eq!(stack_of(&svc), vec!["validate", "fn"]);
        // And 422 is not retryable under the standard policy.
        assert!(!crate::RetryPolicy::default().retryable(&err.kind));
    }

    #[test]
    fn validate_layer_passes_valid_completions_through() {
        let svc = ValidateLayer::new(VqlSyntaxValidator)
            .layer(service_fn("m", |_, _| Ok(good().to_string())));
        assert_eq!(svc.call("p", &GenOptions::default()).unwrap(), good());
    }

    #[test]
    fn cheap_first_escalates_past_a_failing_tier() {
        let cheap_calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&cheap_calls);
        let svc = RouteLayer::new(RoutePolicy::CheapFirst)
            .tier(
                "cheap",
                1,
                ValidateLayer::new(VqlSyntaxValidator).layer(service_fn("cheap", move |_, _| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok("not a query".to_string())
                })),
            )
            .tier("strong", 10, service_fn("strong", |_, _| Ok(good().into())))
            .build()
            .unwrap();
        assert_eq!(svc.call("p", &GenOptions::default()).unwrap(), good());
        assert_eq!(cheap_calls.load(Ordering::SeqCst), 1);
        assert_eq!(stack_of(&svc), vec!["tier"]);
    }

    #[test]
    fn quality_first_reverses_the_walk() {
        let cheap_calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&cheap_calls);
        let svc = RouteLayer::new(RoutePolicy::QualityFirst)
            .tier(
                "cheap",
                1,
                service_fn("cheap", move |_, _| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(good().to_string())
                }),
            )
            .tier("strong", 10, service_fn("strong", |_, _| Ok(good().into())))
            .build()
            .unwrap();
        svc.call("p", &GenOptions::default()).unwrap();
        assert_eq!(
            cheap_calls.load(Ordering::SeqCst),
            0,
            "strong answers first"
        );
    }

    #[test]
    fn budget_cap_skips_unaffordable_tiers() {
        let strong_calls = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&strong_calls);
        let svc = RouteLayer::new(RoutePolicy::BudgetCapped(5))
            .tier(
                "cheap",
                1,
                ValidateLayer::new(VqlSyntaxValidator)
                    .layer(service_fn("cheap", |_, _| Ok("garbage".to_string()))),
            )
            .tier(
                "strong",
                10,
                service_fn("strong", move |_, _| {
                    s.fetch_add(1, Ordering::SeqCst);
                    Ok(good().to_string())
                }),
            )
            .build()
            .unwrap();
        // Budget 5 cannot pay 1 + 10, so the strong tier is skipped and the
        // request fails with the cheap tier's validation rejection.
        let err = svc.call("p", &GenOptions::default()).unwrap_err();
        assert_eq!(
            err.kind,
            TransportErrorKind::Status(VALIDATION_REJECTED_STATUS)
        );
        assert_eq!(strong_calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn budget_cap_always_attempts_at_least_one_tier() {
        let svc = RouteLayer::new(RoutePolicy::BudgetCapped(0))
            .tier("only", 7, service_fn("only", |_, _| Ok(good().into())))
            .build()
            .unwrap();
        assert!(svc.call("p", &GenOptions::default()).is_ok());
    }

    #[test]
    fn transport_failure_escalates_and_is_never_scored_as_output() {
        let svc = RouteLayer::new(RoutePolicy::CheapFirst)
            .tier(
                "down",
                1,
                service_fn("down", |_, _| {
                    Err(TransportError::new(TransportErrorKind::Connect, 1, "down"))
                }),
            )
            .tier("strong", 10, service_fn("strong", |_, _| Ok(good().into())))
            .build()
            .unwrap();
        assert_eq!(svc.call("p", &GenOptions::default()).unwrap(), good());
    }

    #[test]
    fn build_rejects_empty_nested_and_retrying_tiers() {
        assert!(RouteLayer::new(RoutePolicy::CheapFirst).build().is_err());

        let inner = RouteLayer::new(RoutePolicy::CheapFirst)
            .tier("t", 1, service_fn("m", |_, _| Ok("x".into())))
            .build()
            .unwrap();
        let err = RouteLayer::new(RoutePolicy::CheapFirst)
            .tier("outer", 1, inner)
            .build()
            .unwrap_err();
        assert!(err.contains("nests another router"), "{err}");

        let retrying = crate::RetryLayer::new(crate::RetryPolicy::no_retry())
            .layer(service_fn("m", |_, _| Ok("x".into())));
        let err = RouteLayer::new(RoutePolicy::CheapFirst)
            .tier("r", 1, retrying)
            .build()
            .unwrap_err();
        assert!(err.contains("retry layer"), "{err}");
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in [
            RoutePolicy::CheapFirst,
            RoutePolicy::QualityFirst,
            RoutePolicy::BudgetCapped(42),
        ] {
            assert_eq!(RoutePolicy::parse(&p.name()).unwrap(), p);
        }
        assert!(RoutePolicy::parse("fastest").is_err());
        assert!(RoutePolicy::parse("budget:lots").is_err());
    }

    #[test]
    fn route_metrics_move_on_escalation() {
        let before_esc = obs::global().counter("route.tier.escalations_total").get();
        let before_cost = obs::global().counter("route.cost_units").get();
        let svc = RouteLayer::new(RoutePolicy::CheapFirst)
            .tier(
                "cheap",
                2,
                ValidateLayer::new(VqlSyntaxValidator)
                    .layer(service_fn("cheap", |_, _| Ok("garbage".to_string()))),
            )
            .tier("strong", 11, service_fn("strong", |_, _| Ok(good().into())))
            .build()
            .unwrap();
        svc.call("p", &GenOptions::default()).unwrap();
        assert_eq!(
            obs::global().counter("route.tier.escalations_total").get(),
            before_esc + 1
        );
        assert_eq!(
            obs::global().counter("route.cost_units").get(),
            before_cost + 13
        );
    }
}
