//! The request/response vocabulary of the completion stack: generation
//! options in, model text or a typed transport failure out.
//!
//! Remote backends can fail for reasons the model is not responsible for —
//! a refused connection, a stalled socket, a 5xx from the serving layer, a
//! load-shedding 429. Those failures must never be scored as model output
//! (the paper's Execution Accuracy and failure taxonomy both assume every
//! scored completion is something the model actually said), so every
//! [`CompletionService`](crate::CompletionService) call returns a
//! [`CompletionOutcome`] whose error arm is a [`TransportError`].

use std::time::Duration;

/// Per-call generation options; the iterative-repair strategies of RQ3
/// tweak these.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Retry counter: different attempts resample the stochastic stream.
    pub attempt: u64,
    /// Multiplier on the total corruption budget (role-play < 1).
    pub error_scale: f64,
    /// Multiplier on *structural* corruption (chart/bin/group/order); the
    /// chain-of-thought sketch pass reduces this.
    pub structural_scale: f64,
}

impl Default for GenOptions {
    fn default() -> GenOptions {
        GenOptions {
            attempt: 0,
            error_scale: 1.0,
            structural_scale: 1.0,
        }
    }
}

/// Why a completion never produced model output.
///
/// The distinction that matters downstream is *attribution*: all of these
/// mean the infrastructure failed, so the request lands in the
/// `error.transport` bucket instead of the model-failure taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// A read/write/connect deadline expired.
    Timeout,
    /// The connection could not be established.
    Connect,
    /// The peer closed the connection before sending a response.
    ConnectionClosed,
    /// The server answered with a non-2xx status.
    Status(u16),
    /// The response violated the HTTP or JSON protocol.
    Protocol,
    /// Any other socket-level failure.
    Io,
}

impl std::fmt::Display for TransportErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportErrorKind::Timeout => write!(f, "timeout"),
            TransportErrorKind::Connect => write!(f, "connect"),
            TransportErrorKind::ConnectionClosed => write!(f, "connection-closed"),
            TransportErrorKind::Status(code) => write!(f, "status-{code}"),
            TransportErrorKind::Protocol => write!(f, "protocol"),
            TransportErrorKind::Io => write!(f, "io"),
        }
    }
}

/// A completion request that failed below the model: no text was generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// What went wrong.
    pub kind: TransportErrorKind,
    /// How many attempts were made before giving up (1 = no retries).
    pub attempts: u32,
    /// Human-readable detail of the last failure.
    pub message: String,
    /// The backoff the server asked for (a 429 `Retry-After`), if any. A
    /// retrying layer honors this over its own backoff schedule.
    pub retry_after: Option<Duration>,
}

impl TransportError {
    /// A transport error with no server-requested backoff — the common
    /// constructor; set [`TransportError::retry_after`] explicitly for the
    /// load-shed path.
    pub fn new(kind: TransportErrorKind, attempts: u32, message: impl Into<String>) -> Self {
        TransportError {
            kind,
            attempts,
            message: message.into(),
            retry_after: None,
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transport error ({}, {} attempt{}): {}",
            self.kind,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl std::error::Error for TransportError {}

/// The typed result of a completion call: model text, or a transport
/// failure that must be attributed to the infrastructure.
pub type CompletionOutcome = Result<String, TransportError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_error_display_is_informative() {
        let e = TransportError::new(
            TransportErrorKind::Status(503),
            3,
            "http 503: overloaded".to_string(),
        );
        let text = e.to_string();
        assert!(text.contains("status-503"), "{text}");
        assert!(text.contains("3 attempts"), "{text}");
        let single = TransportError::new(TransportErrorKind::Timeout, 1, "read deadline");
        assert!(single.to_string().contains("1 attempt)"));
    }

    #[test]
    fn new_has_no_retry_after() {
        let e = TransportError::new(TransportErrorKind::Status(429), 1, "shed");
        assert_eq!(e.retry_after, None);
    }
}
