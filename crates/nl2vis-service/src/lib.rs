//! # nl2vis-service — the layered completion stack
//!
//! The serving path of this workspace grew four generations of concrete
//! wrapper structs — retry, cache, trace propagation, metrics, fault
//! injection — each hand-rolled around the next, with ordering constraints
//! ("the cache must sit outside retry", "trace headers are injected
//! innermost") living only in doc comments. This crate replaces that with
//! a tower-style middleware architecture:
//!
//! - [`CompletionService`]: the one request/response abstraction — a
//!   prompt plus [`GenOptions`] in, a typed [`CompletionOutcome`] out.
//!   Leaf services (the HTTP client, the simulated model) and every
//!   middleware implement it, so stacks compose by plain nesting.
//! - [`Layer`]: a middleware constructor — `layer.layer(inner)` wraps a
//!   service in a new one. Shipped layers: [`RetryLayer`] (bounded retry
//!   with deterministic backoff and 429 `Retry-After` honoring),
//!   [`TraceLayer`] (one request span per call), [`MetricsLayer`]
//!   (transport-failure attribution counters), and [`FaultLayer`]
//!   (scripted client-side fault injection for tests).
//! - [`stack_of`] / [`validate_stack`]: runtime introspection of a
//!   composed stack's layer order, so misordered stacks (a cache inside
//!   retry would memoize per-attempt state) are rejected by debug
//!   assertions instead of silently corrupting results.
//! - [`tier`]: validation-gated tiered routing — [`RouteLayer`] builds a
//!   [`TieredService`] that serves the cheapest model tier first, checks
//!   the answer with the VQL parser/executor ([`ValidateLayer`]), and
//!   escalates to a stronger tier on failure.
//!
//! The canonical order, outermost first, is
//! `Trace(Metrics(Cache(Retry(leaf))))` — the cache layer itself lives in
//! `nl2vis-cache` (it needs the completion cache), and the typestate
//! `StackBuilder` in the root crate enforces the order at compile time.
//!
//! The wire-level transport types ([`TransportError`],
//! [`TransportErrorKind`], [`GenOptions`]) live here — the bottom of the
//! dependency stack — and are re-exported by `nl2vis-llm` for
//! back-compatibility.

pub mod fault;
pub mod metrics;
pub mod outcome;
pub mod retry;
pub mod service;
pub mod tier;
pub mod trace;

pub use fault::{FaultLayer, Faulted};
pub use metrics::{Metrics, MetricsLayer};
pub use outcome::{CompletionOutcome, GenOptions, TransportError, TransportErrorKind};
pub use retry::{Retry, RetryLayer, RetryPolicy};
pub use service::{service_fn, stack_of, validate_stack, CompletionService, Layer, ServiceFn};
pub use tier::{
    RouteLayer, RoutePolicy, Tier, TieredService, ValidateLayer, Validated, ValidationFailure,
    Validator, VqlExecValidator, VqlSyntaxValidator, VALIDATION_REJECTED_STATUS,
};
pub use trace::{Trace, TraceLayer};
