//! The fault-injection middleware: scripted client-side transport
//! failures for tests.
//!
//! Where the server-side `FaultInjector` in `nl2vis-llm` breaks requests
//! on the wire, [`FaultLayer`] breaks them *inside the stack* — no server
//! needed — which is what the layer-ordering invariant tests use to prove
//! properties like "an injected 500 is never memoized" independently of
//! socket behavior. Each scripted entry consumes one call: `Some(kind)`
//! fails it with that kind before the inner service is reached, `None`
//! passes it through. An exhausted script is transparent.

use crate::outcome::{CompletionOutcome, GenOptions, TransportError, TransportErrorKind};
use crate::service::{CompletionService, Layer};
use std::collections::VecDeque;
use std::sync::Mutex;

/// [`Layer`] injecting a scripted sequence of transport failures.
#[derive(Debug)]
pub struct FaultLayer {
    script: Mutex<VecDeque<Option<TransportErrorKind>>>,
}

impl FaultLayer {
    /// A fault layer that applies `script` in order, one entry per call.
    pub fn script(script: impl IntoIterator<Item = Option<TransportErrorKind>>) -> FaultLayer {
        FaultLayer {
            script: Mutex::new(script.into_iter().collect()),
        }
    }

    /// A fault layer that fails the first `n` calls with `kind`.
    pub fn fail_first(n: usize, kind: TransportErrorKind) -> FaultLayer {
        FaultLayer::script(std::iter::repeat_n(Some(kind), n))
    }
}

impl<S: CompletionService> Layer<S> for FaultLayer {
    type Service = Faulted<S>;

    /// Wraps `inner`, moving the remaining script into the service.
    fn layer(&self, inner: S) -> Faulted<S> {
        Faulted {
            inner,
            script: Mutex::new(std::mem::take(&mut self.script.lock().unwrap())),
        }
    }
}

/// The fault-injection middleware; see [`FaultLayer`].
pub struct Faulted<S> {
    inner: S,
    script: Mutex<VecDeque<Option<TransportErrorKind>>>,
}

impl<S> Faulted<S> {
    /// Scripted faults not yet consumed.
    pub fn remaining(&self) -> usize {
        self.script.lock().unwrap().len()
    }
}

impl<S: CompletionService> CompletionService for Faulted<S> {
    fn model(&self) -> &str {
        self.inner.model()
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        let next = self.script.lock().unwrap().pop_front();
        match next {
            Some(Some(kind)) => Err(TransportError::new(kind, 1, "injected fault")),
            _ => self.inner.call(prompt, opts),
        }
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("fault");
        self.inner.describe(stack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{service_fn, stack_of};

    #[test]
    fn script_consumes_one_entry_per_call() {
        let layer = FaultLayer::script([
            Some(TransportErrorKind::Status(500)),
            None,
            Some(TransportErrorKind::Timeout),
        ]);
        let svc = layer.layer(service_fn("m", |_, _| Ok("clean".to_string())));
        let e = svc.call("p", &GenOptions::default()).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::Status(500));
        assert_eq!(svc.call("p", &GenOptions::default()).unwrap(), "clean");
        let e = svc.call("p", &GenOptions::default()).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::Timeout);
        // Exhausted script is transparent.
        assert_eq!(svc.remaining(), 0);
        assert!(svc.call("p", &GenOptions::default()).is_ok());
        assert_eq!(stack_of(&svc), vec!["fault", "fn"]);
    }

    #[test]
    fn fail_first_breaks_then_recovers() {
        let svc = FaultLayer::fail_first(2, TransportErrorKind::ConnectionClosed)
            .layer(service_fn("m", |_, _| Ok("up".to_string())));
        assert!(svc.call("p", &GenOptions::default()).is_err());
        assert!(svc.call("p", &GenOptions::default()).is_err());
        assert!(svc.call("p", &GenOptions::default()).is_ok());
    }
}
