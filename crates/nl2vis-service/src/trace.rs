//! The trace middleware: one request span per completion call.
//!
//! [`TraceLayer`] opens an `llm.request` span (by default) around the
//! inner service, so the whole stack beneath it — metrics attribution,
//! cache lookups, every retry attempt — shares one trace. Layers below
//! annotate this span via [`nl2vis_obs::annotate_current`] rather than
//! opening spans of their own, which is what keeps the set of emitted span
//! names (and therefore `<name>.duration_us` histograms) byte-identical to
//! the pre-layered stack.

use crate::outcome::{CompletionOutcome, GenOptions};
use crate::service::{CompletionService, Layer};
use nl2vis_obs as obs;

/// [`Layer`] opening a named span around every call of the inner service.
#[derive(Debug, Clone, Copy)]
pub struct TraceLayer {
    name: &'static str,
}

impl TraceLayer {
    /// A trace layer opening spans named `name`.
    pub fn new(name: &'static str) -> TraceLayer {
        TraceLayer { name }
    }

    /// The canonical request layer: spans named `llm.request`, matching
    /// the span the pre-layered `ResilientLlmClient` opened.
    pub fn request() -> TraceLayer {
        TraceLayer::new("llm.request")
    }
}

impl<S: CompletionService> Layer<S> for TraceLayer {
    type Service = Trace<S>;

    fn layer(&self, inner: S) -> Trace<S> {
        Trace {
            inner,
            name: self.name,
        }
    }
}

/// The trace middleware; see [`TraceLayer`].
pub struct Trace<S> {
    inner: S,
    name: &'static str,
}

impl<S> Trace<S> {
    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: CompletionService> CompletionService for Trace<S> {
    fn model(&self) -> &str {
        self.inner.model()
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        let _span = obs::Span::enter(self.name);
        self.inner.call(prompt, opts)
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("trace");
        self.inner.describe(stack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{service_fn, stack_of};

    #[test]
    fn trace_layer_opens_the_request_span_around_the_call() {
        let leaf = service_fn("m", |_, _| {
            // The request span must be live while the inner service runs.
            assert!(obs::current_trace().is_some());
            Ok("x".to_string())
        });
        let svc = TraceLayer::request().layer(leaf);
        assert!(obs::current_trace().is_none());
        assert!(svc.call("p", &GenOptions::default()).is_ok());
        assert!(obs::current_trace().is_none());
        assert_eq!(stack_of(&svc), vec!["trace", "fn"]);
    }

    #[test]
    fn request_span_duration_lands_on_the_legacy_histogram() {
        let before = obs::global().histogram("llm.request.duration_us").count();
        let svc = TraceLayer::request().layer(service_fn("m", |_, _| Ok("x".to_string())));
        svc.call("p", &GenOptions::default()).unwrap();
        assert!(obs::global().histogram("llm.request.duration_us").count() > before);
    }
}
