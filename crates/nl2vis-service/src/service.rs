//! The [`CompletionService`] trait, the [`Layer`] combinator, and stack
//! introspection.
//!
//! A service is one question answered: *given this prompt and these
//! generation options, what did the model say (or how did the transport
//! fail)?* Middlewares are services wrapping services; a [`Layer`] is the
//! constructor that does the wrapping. Because every middleware reports a
//! stable tag through [`CompletionService::describe`], a composed stack
//! can be inspected ([`stack_of`]) and checked against the ordering
//! contract ([`validate_stack`]) at runtime — the typestate `StackBuilder`
//! in the root crate enforces the same contract at compile time.

use crate::outcome::{CompletionOutcome, GenOptions};

/// A text-completion service: request in, typed outcome out.
///
/// Implemented by leaf backends (HTTP client, simulated model) and by
/// every middleware, so arbitrary stacks present one uniform surface.
pub trait CompletionService {
    /// The model identifier requests are billed to — used for cache keys
    /// and reporting. Middlewares forward to their inner service.
    fn model(&self) -> &str;

    /// Performs one completion request.
    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome;

    /// Appends this service's layer tag (and, for middlewares, the inner
    /// service's tags after it) to `stack` — outermost first. Tags are
    /// stable identifiers (`"trace"`, `"metrics"`, `"cache"`, `"retry"`,
    /// `"fault"`, or a leaf tag) consumed by [`validate_stack`].
    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("leaf");
    }
}

/// References delegate, so stacks can borrow shared leaves.
impl<S: CompletionService + ?Sized> CompletionService for &S {
    fn model(&self) -> &str {
        (**self).model()
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        (**self).call(prompt, opts)
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        (**self).describe(stack)
    }
}

/// Boxed services delegate, so `Box<dyn CompletionService>` composes with
/// generic layers.
impl<S: CompletionService + ?Sized> CompletionService for Box<S> {
    fn model(&self) -> &str {
        (**self).model()
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        (**self).call(prompt, opts)
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        (**self).describe(stack)
    }
}

impl<S: CompletionService + ?Sized> CompletionService for std::sync::Arc<S> {
    fn model(&self) -> &str {
        (**self).model()
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        (**self).call(prompt, opts)
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        (**self).describe(stack)
    }
}

/// A middleware constructor: wraps an inner [`CompletionService`] in a new
/// one. `Trace(Metrics(Retry(leaf)))` is literally
/// `trace.layer(metrics.layer(retry.layer(leaf)))`.
pub trait Layer<S: CompletionService> {
    /// The wrapped service this layer produces.
    type Service: CompletionService;

    /// Wraps `inner`.
    fn layer(&self, inner: S) -> Self::Service;
}

/// The layer tags of a composed stack, outermost first — e.g.
/// `["trace", "metrics", "cache", "retry", "http"]`.
pub fn stack_of<S: CompletionService + ?Sized>(service: &S) -> Vec<&'static str> {
    let mut stack = Vec::new();
    service.describe(&mut stack);
    stack
}

/// Checks a stack's layer order against the serving contract. Returns the
/// first violation as an error message, or `Ok` for a conforming stack.
///
/// The contract (outermost first):
///
/// 1. **`cache` must sit outside `retry`.** A cache inside retry would be
///    consulted (and populated) per *attempt*: a completion produced on
///    attempt 2 of a request could be keyed identically to attempt 1's
///    failure, and single-flight deduplication would collapse concurrent
///    *attempts* rather than concurrent *requests*. Outside retry, an
///    entry is stored only after the whole retry budget concluded in
///    model text, and a transport failure is retried — never memoized.
/// 2. **At most one `cache` and one `retry`.** Nested retries multiply
///    attempt budgets (3 × 3 = 9 upstream calls); nested caches double
///    insertions and skew hit-rate accounting.
/// 3. **`route` (replica selection, hedging) sits inside `cache` and
///    `retry`, and at most once.** A client-side cache hit must answer
///    without touching the replica ring at all, so the cache wraps the
///    router; and a retry that wraps the router re-enters replica
///    selection, letting the retried attempt fail over to a different
///    (healthy, unpenalized) replica instead of hammering the one that
///    just failed. Two nested routers would hedge hedges — up to 4
///    upstream calls for one request.
/// 4. **`tier` (model-tier routing) sits inside `retry` and outside
///    `cache` and `route`, at most once.** A retry above the tier router
///    re-enters tier selection, so a transient failure can fail over to a
///    stronger tier; a cache outside the router would memoize whichever
///    tier happened to answer under one key, collapsing the tiers'
///    distinct (tier-qualified) keyspaces — per-tier caches belong inside
///    each tier. Replica selection likewise happens per tier, inside it.
/// 5. **`validate` sits inside `cache`, at most once.** With
///    `Validate(Cache(leaf))` the inner cache stores a completion *before*
///    validation sees it, so an invalid answer is memoized and replayed —
///    a poisoned entry that rejects forever. `Cache(Validate(leaf))`
///    stores only answers that passed the check, because errors are never
///    cached.
pub fn validate_stack(stack: &[&str]) -> Result<(), String> {
    let position = |tag: &str| stack.iter().position(|t| *t == tag);
    if stack.iter().filter(|t| **t == "retry").count() > 1 {
        return Err(format!("stack nests two retry layers: {stack:?}"));
    }
    if stack.iter().filter(|t| **t == "cache").count() > 1 {
        return Err(format!("stack nests two cache layers: {stack:?}"));
    }
    if stack.iter().filter(|t| **t == "route").count() > 1 {
        return Err(format!(
            "stack nests two route layers (hedges would hedge): {stack:?}"
        ));
    }
    if stack.iter().filter(|t| **t == "tier").count() > 1 {
        return Err(format!("stack nests two tier routers: {stack:?}"));
    }
    if stack.iter().filter(|t| **t == "validate").count() > 1 {
        return Err(format!("stack nests two validate layers: {stack:?}"));
    }
    if let Some(tier) = position("tier") {
        if let Some(cache) = position("cache") {
            if cache < tier {
                return Err(format!(
                    "cache sits outside tier (position {cache} vs {tier}): one shared cache \
                     would collapse the tiers' tier-qualified keyspaces; put a cache inside \
                     each tier instead: {stack:?}"
                ));
            }
        }
        if let Some(route) = position("route") {
            if route < tier {
                return Err(format!(
                    "route sits outside tier (position {route} vs {tier}): replica selection \
                     happens per tier; compose Tier(Route(..)) inside each tier: {stack:?}"
                ));
            }
        }
        if let Some(retry) = position("retry") {
            if retry > tier {
                return Err(format!(
                    "retry sits inside tier (position {retry} vs {tier}): retries would \
                     multiply one tier's cost before the router could escalate; compose \
                     Retry(Tier(..)) instead: {stack:?}"
                ));
            }
        }
    }
    if let (Some(validate), Some(cache)) = (position("validate"), position("cache")) {
        if validate < cache {
            return Err(format!(
                "cache sits inside validate (position {cache} vs {validate}): an invalid \
                 completion would be memoized before validation rejects it, poisoning the \
                 entry; compose Cache(Validate(..)) instead: {stack:?}"
            ));
        }
    }
    if let (Some(cache), Some(retry)) = (position("cache"), position("retry")) {
        if cache > retry {
            return Err(format!(
                "cache sits inside retry (position {cache} vs {retry}): failures could be \
                 memoized per-attempt; compose Cache(Retry(..)) instead: {stack:?}"
            ));
        }
    }
    if let Some(route) = position("route") {
        if let Some(cache) = position("cache") {
            if cache > route {
                return Err(format!(
                    "cache sits inside route (position {cache} vs {route}): a cache hit would \
                     still pay replica selection; compose Cache(Route(..)) instead: {stack:?}"
                ));
            }
        }
        if let Some(retry) = position("retry") {
            if retry > route {
                return Err(format!(
                    "retry sits inside route (position {retry} vs {route}): retried attempts \
                     would be pinned to the failing replica; compose Retry(Route(..)) so a \
                     retry can fail over: {stack:?}"
                ));
            }
        }
    }
    Ok(())
}

/// A leaf service built from a closure — the cheapest way to stand up a
/// scriptable backend in tests (`service_fn("m", |p, _| Ok(p.into()))`).
pub struct ServiceFn<F> {
    model: String,
    f: F,
}

/// Builds a [`ServiceFn`] leaf over `f`.
pub fn service_fn<F>(model: impl Into<String>, f: F) -> ServiceFn<F>
where
    F: Fn(&str, &GenOptions) -> CompletionOutcome,
{
    ServiceFn {
        model: model.into(),
        f,
    }
}

impl<F> CompletionService for ServiceFn<F>
where
    F: Fn(&str, &GenOptions) -> CompletionOutcome,
{
    fn model(&self) -> &str {
        &self.model
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        (self.f)(prompt, opts)
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("fn");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{TransportError, TransportErrorKind};
    use crate::retry::{RetryLayer, RetryPolicy};

    #[test]
    fn service_fn_is_a_leaf() {
        let svc = service_fn("echo", |p, _| Ok(format!("echo:{p}")));
        assert_eq!(svc.model(), "echo");
        assert_eq!(svc.call("hi", &GenOptions::default()).unwrap(), "echo:hi");
        assert_eq!(stack_of(&svc), vec!["fn"]);
    }

    #[test]
    fn boxed_and_borrowed_services_delegate() {
        let svc = service_fn("m", |_, _| Ok("x".to_string()));
        let by_ref: &dyn CompletionService = &svc;
        assert_eq!(by_ref.model(), "m");
        let boxed: Box<dyn CompletionService> = Box::new(service_fn("m2", |_, _| {
            Err(TransportError::new(TransportErrorKind::Io, 1, "down"))
        }));
        assert_eq!(boxed.model(), "m2");
        assert!(boxed.call("p", &GenOptions::default()).is_err());
        assert_eq!(stack_of(&boxed), vec!["fn"]);
    }

    #[test]
    fn validate_accepts_the_canonical_order() {
        assert!(validate_stack(&["trace", "metrics", "cache", "retry", "http"]).is_ok());
        assert!(validate_stack(&["cache", "trace", "metrics", "retry", "http"]).is_ok());
        assert!(validate_stack(&["retry", "http"]).is_ok());
        assert!(validate_stack(&["http"]).is_ok());
        assert!(validate_stack(&["trace", "metrics", "cache", "retry", "route", "http"]).is_ok());
        assert!(validate_stack(&["cache", "route", "http"]).is_ok());
        assert!(validate_stack(&["route", "http"]).is_ok());
    }

    #[test]
    fn validate_rejects_route_outside_cache_or_retry() {
        let err = validate_stack(&["route", "cache", "http"]).unwrap_err();
        assert!(err.contains("cache sits inside route"), "{err}");
        let err = validate_stack(&["route", "retry", "http"]).unwrap_err();
        assert!(err.contains("retry sits inside route"), "{err}");
        assert!(validate_stack(&["route", "route", "http"]).is_err());
    }

    #[test]
    fn validate_rejects_cache_inside_retry() {
        let err = validate_stack(&["retry", "cache", "fn"]).unwrap_err();
        assert!(err.contains("cache sits inside retry"), "{err}");
    }

    #[test]
    fn validate_rejects_nested_budget_multipliers() {
        assert!(validate_stack(&["retry", "retry", "fn"]).is_err());
        assert!(validate_stack(&["cache", "cache", "fn"]).is_err());
        assert!(validate_stack(&["tier", "tier"]).is_err());
        assert!(validate_stack(&["validate", "validate", "fn"]).is_err());
    }

    #[test]
    fn validate_accepts_the_canonical_tier_positions() {
        // The router's one legal position: below retry/metrics, no cache
        // or replica route outside it (those live inside each tier).
        assert!(validate_stack(&["trace", "metrics", "retry", "tier"]).is_ok());
        assert!(validate_stack(&["retry", "tier"]).is_ok());
        assert!(validate_stack(&["tier"]).is_ok());
        // An individual tier's inner stack: cache over validate over leaf.
        assert!(validate_stack(&["cache", "validate", "sim"]).is_ok());
        assert!(validate_stack(&["cache", "validate", "route", "http"]).is_ok());
    }

    #[test]
    fn validate_rejects_misplaced_tier_routers() {
        let err = validate_stack(&["cache", "tier"]).unwrap_err();
        assert!(err.contains("cache sits outside tier"), "{err}");
        let err = validate_stack(&["route", "tier"]).unwrap_err();
        assert!(err.contains("route sits outside tier"), "{err}");
        let err = validate_stack(&["tier", "retry"]).unwrap_err();
        assert!(err.contains("retry sits inside tier"), "{err}");
    }

    #[test]
    fn validate_rejects_cache_inside_validate() {
        let err = validate_stack(&["validate", "cache", "sim"]).unwrap_err();
        assert!(err.contains("cache sits inside validate"), "{err}");
    }

    #[test]
    fn layered_stack_describes_outermost_first() {
        let leaf = service_fn("m", |_, _| Ok("x".to_string()));
        let stack = RetryLayer::new(RetryPolicy::no_retry()).layer(leaf);
        assert_eq!(stack_of(&stack), vec!["retry", "fn"]);
    }
}
