//! The metrics middleware: transport-failure attribution counters.
//!
//! [`MetricsLayer`] sits just inside the trace layer and counts each call
//! whose *final* outcome is a transport failure — once, regardless of how
//! many attempts the retry layer below it burned. It emits the exact
//! counter names the pre-layered stack emitted
//! (`llm.errors_total`, `llm.error.transport`), which the golden-list test
//! in the root crate pins.

use crate::outcome::{CompletionOutcome, GenOptions};
use crate::service::{CompletionService, Layer};
use nl2vis_obs as obs;

/// [`Layer`] attributing final transport failures to a component's
/// error counters.
#[derive(Debug, Clone, Copy)]
pub struct MetricsLayer {
    component: &'static str,
}

impl MetricsLayer {
    /// A metrics layer attributing failures to `component`.
    pub fn new(component: &'static str) -> MetricsLayer {
        MetricsLayer { component }
    }
}

impl Default for MetricsLayer {
    /// The canonical serving-path component: `llm`.
    fn default() -> MetricsLayer {
        MetricsLayer::new("llm")
    }
}

impl<S: CompletionService> Layer<S> for MetricsLayer {
    type Service = Metrics<S>;

    fn layer(&self, inner: S) -> Metrics<S> {
        Metrics {
            inner,
            component: self.component,
        }
    }
}

/// The metrics middleware; see [`MetricsLayer`].
pub struct Metrics<S> {
    inner: S,
    component: &'static str,
}

impl<S> Metrics<S> {
    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: CompletionService> CompletionService for Metrics<S> {
    fn model(&self) -> &str {
        self.inner.model()
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        let outcome = self.inner.call(prompt, opts);
        if let Err(e) = &outcome {
            obs::transport_error(self.component, &e.message);
        }
        outcome
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("metrics");
        self.inner.describe(stack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{TransportError, TransportErrorKind};
    use crate::retry::{RetryLayer, RetryPolicy};
    use crate::service::service_fn;

    #[test]
    fn final_failure_is_counted_once_despite_retries() {
        let errors = obs::global().counter("llm.errors_total");
        let before = errors.get();
        let leaf = service_fn("m", |_, _| {
            Err(TransportError::new(
                TransportErrorKind::Timeout,
                1,
                "deadline",
            ))
        });
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(1),
            jitter_seed: 0,
        };
        let svc = MetricsLayer::default().layer(RetryLayer::new(policy).layer(leaf));
        assert!(svc.call("p", &GenOptions::default()).is_err());
        // Three attempts failed below, but the *request* failed once.
        assert_eq!(errors.get(), before + 1);
    }

    #[test]
    fn success_counts_nothing() {
        let errors = obs::global().counter("llm.errors_total");
        let before = errors.get();
        let svc = MetricsLayer::default().layer(service_fn("m", |_, _| Ok("x".to_string())));
        assert!(svc.call("p", &GenOptions::default()).is_ok());
        assert_eq!(errors.get(), before);
    }
}
