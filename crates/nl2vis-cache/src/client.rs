//! The completion cache and the middleware that serves from it.
//!
//! [`CompletionCache`] composes the three mechanisms of this crate —
//! sharded LRU, single-flight, JSONL persistence — behind one call,
//! [`CompletionCache::complete_through`]. [`CacheLayer`] lifts that call
//! into the layered completion stack: it wraps any
//! [`CompletionService`], keying by a canonical hash input of (model,
//! generation options, prompt). In the canonical stack the cache sits
//! *outside* retry (`Cache(Retry(leaf))` — the ordering
//! `nl2vis_service::validate_stack` enforces), so a completion only
//! enters the cache after the whole retry budget concluded in model text.
//! Transport errors — timeouts, refused connects, 4xx/5xx — are **never**
//! cached: the next identical request goes upstream again.
//! [`CachedLlmClient`] remains as a back-compat shim composing
//! `Cached(ClientService(inner))` behind the [`LlmClient`] trait.

use crate::lru::ShardedLru;
use crate::persist::{load, Appender};
use crate::singleflight::{FlightRole, SingleFlight};
use nl2vis_llm::{ClientService, CompletionOutcome, GenOptions, LlmClient};
use nl2vis_obs as obs;
use nl2vis_service::{CompletionService, Layer};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Unit separator: cannot occur in model names and never terminates a
/// prompt, so the canonical key decomposes unambiguously.
const SEP: char = '\u{1f}';

/// The canonical cache key of a completion request: model configuration
/// plus the exact prompt. Two requests share a key iff the backend would
/// be asked the exact same question.
pub fn completion_key(model: &str, opts: &GenOptions, prompt: &str) -> String {
    format!(
        "{model}{SEP}attempt={};error_scale={};structural_scale={}{SEP}{prompt}",
        opts.attempt, opts.error_scale, opts.structural_scale
    )
}

/// Cache sizing and persistence configuration.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum number of cached completions (approximate: capacity is
    /// split evenly across shards).
    pub capacity: usize,
    /// Number of independently locked LRU shards.
    pub shards: usize,
    /// When set, completions are appended to this JSONL file and replayed
    /// on open for a warm cross-run start.
    pub persist: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            capacity: 4096,
            shards: 8,
            persist: None,
        }
    }
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that went upstream.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Successful completions inserted.
    pub insertions: u64,
    /// Requests that deduplicated into a concurrent identical flight.
    pub singleflight_waits: u64,
    /// Entries replayed from the persistence file on open.
    pub persisted_loads: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, capacity-bounded completion cache with single-flight
/// deduplication and optional JSONL persistence.
///
/// Every event is mirrored onto the global [`nl2vis_obs`] registry
/// (`cache.hits`, `cache.misses`, `cache.evictions`, `cache.insertions`,
/// `cache.singleflight_waits`) and tracked locally for [`CompletionCache::stats`].
pub struct CompletionCache {
    lru: ShardedLru<String>,
    flight: SingleFlight<CompletionOutcome>,
    appender: Option<Mutex<Appender>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    singleflight_waits: AtomicU64,
    persisted_loads: u64,
}

impl CompletionCache {
    /// Opens a cache. With `config.persist` set, the existing file is
    /// replayed (malformed lines skipped) and subsequent insertions are
    /// appended to it.
    pub fn open(config: CacheConfig) -> std::io::Result<CompletionCache> {
        let lru = ShardedLru::new(config.capacity, config.shards);
        let (appender, persisted_loads) = match &config.persist {
            None => (None, 0),
            Some(path) => {
                let loaded = load(path, |key, completion| {
                    lru.insert(key, completion);
                })?;
                obs::count("cache.persist_loaded", loaded as u64);
                (Some(Mutex::new(Appender::open(path)?)), loaded as u64)
            }
        };
        Ok(CompletionCache {
            lru,
            flight: SingleFlight::new(),
            appender,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            singleflight_waits: AtomicU64::new(0),
            persisted_loads,
        })
    }

    /// An in-memory cache of `capacity` completions with default sharding.
    pub fn in_memory(capacity: usize) -> CompletionCache {
        CompletionCache::open(CacheConfig {
            capacity,
            persist: None,
            ..CacheConfig::default()
        })
        .expect("in-memory caches cannot fail to open")
    }

    /// Number of cached completions.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            singleflight_waits: self.singleflight_waits.load(Ordering::Relaxed),
            persisted_loads: self.persisted_loads,
        }
    }

    /// Looks up a completion without going upstream (counts a hit or miss).
    pub fn get(&self, key: &str) -> Option<String> {
        match self.lru.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::count("cache.hits", 1);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::count("cache.misses", 1);
                None
            }
        }
    }

    /// Inserts a successful completion (persisting it when configured).
    pub fn insert(&self, key: &str, completion: &str) {
        if self.lru.insert(key.to_string(), completion.to_string()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            obs::count("cache.evictions", 1);
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        obs::count("cache.insertions", 1);
        if let Some(appender) = &self.appender {
            // Best-effort: a full disk degrades persistence, not serving.
            if let Err(e) = appender
                .lock()
                .expect("cache appender")
                .append(key, completion)
            {
                obs::error("cache", "persist", &e.to_string());
            }
        }
    }

    /// The serving-path entry point: returns the cached completion for
    /// `key`, or runs `work` under single-flight deduplication. Only
    /// successful outcomes enter the cache; an `Err` (transport failure)
    /// is returned to this request — and to any request deduplicated into
    /// the same flight — but never stored.
    pub fn complete_through<F>(&self, key: &str, work: F) -> CompletionOutcome
    where
        F: FnOnce() -> CompletionOutcome,
    {
        // One span per lookup, annotated with how the request was served
        // (`cache=hit|miss`, plus `singleflight=wait` for deduplicated
        // requests) — in a stitched trace this is what distinguishes "the
        // model answered" from "the cache answered".
        let span = obs::span!("cache.lookup");
        if let Some(hit) = self.get(key) {
            span.annotate("cache", "hit");
            return Ok(hit);
        }
        span.annotate("cache", "miss");
        let (outcome, role) = self.flight.run(key, || {
            // Re-check under the flight: a concurrent leader may have
            // populated the cache between our miss and winning the flight.
            // That is a logical hit (this request never goes upstream), so
            // it counts as one.
            if let Some(hit) = self.lru.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::count("cache.hits", 1);
                span.annotate("cache", "flight_hit");
                return Ok(hit);
            }
            let outcome = work();
            if let Ok(completion) = &outcome {
                self.insert(key, completion);
            }
            outcome
        });
        if role == FlightRole::Waiter {
            self.singleflight_waits.fetch_add(1, Ordering::Relaxed);
            obs::count("cache.singleflight_waits", 1);
            span.annotate("singleflight", "wait");
        }
        outcome
    }
}

/// [`Layer`] serving an inner [`CompletionService`] through a
/// [`CompletionCache`].
///
/// The cache is shared (`Arc`), so many stacks — one per eval worker, or
/// the pipeline plus the eval runner — can serve from the same entries.
pub struct CacheLayer {
    cache: Arc<CompletionCache>,
}

impl CacheLayer {
    /// A cache layer over a fresh in-memory cache of `capacity` entries.
    pub fn new(capacity: usize) -> CacheLayer {
        CacheLayer::with_cache(Arc::new(CompletionCache::in_memory(capacity)))
    }

    /// A cache layer over a shared cache.
    pub fn with_cache(cache: Arc<CompletionCache>) -> CacheLayer {
        CacheLayer { cache }
    }

    /// The shared cache handle.
    pub fn cache(&self) -> &Arc<CompletionCache> {
        &self.cache
    }
}

impl<S: CompletionService> Layer<S> for CacheLayer {
    type Service = Cached<S>;

    fn layer(&self, inner: S) -> Cached<S> {
        Cached {
            inner,
            cache: Arc::clone(&self.cache),
        }
    }
}

/// The cache middleware; see [`CacheLayer`].
pub struct Cached<S> {
    inner: S,
    cache: Arc<CompletionCache>,
}

impl<S> Cached<S> {
    /// The shared cache handle.
    pub fn cache(&self) -> &Arc<CompletionCache> {
        &self.cache
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: CompletionService> CompletionService for Cached<S> {
    fn model(&self) -> &str {
        self.inner.model()
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        let key = completion_key(self.inner.model(), opts, prompt);
        self.cache
            .complete_through(&key, || self.inner.call(prompt, opts))
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("cache");
        self.inner.describe(stack);
    }
}

/// Back-compat shim: an [`LlmClient`] wrapper that serves completions
/// through a [`CompletionCache`] — now composed as
/// `Cached(ClientService(inner))` on the layered stack. Transport
/// failures fold into a marker string on the infallible surface (the same
/// contract as `HttpLlmClient::complete`); scoring paths use
/// [`LlmClient::try_complete_with`].
pub struct CachedLlmClient<C> {
    stack: Cached<ClientService<C>>,
}

impl<C: LlmClient> CachedLlmClient<C> {
    /// Wraps `inner` with a fresh in-memory cache of `capacity` entries.
    pub fn new(inner: C, capacity: usize) -> CachedLlmClient<C> {
        CachedLlmClient::with_cache(inner, Arc::new(CompletionCache::in_memory(capacity)))
    }

    /// Wraps `inner` over a shared cache.
    pub fn with_cache(inner: C, cache: Arc<CompletionCache>) -> CachedLlmClient<C> {
        CachedLlmClient {
            stack: CacheLayer::with_cache(cache).layer(ClientService::new(inner)),
        }
    }

    /// The shared cache handle.
    pub fn cache(&self) -> &Arc<CompletionCache> {
        self.stack.cache()
    }

    /// The wrapped client.
    pub fn inner(&self) -> &C {
        self.stack.inner().inner()
    }
}

impl<C: LlmClient> LlmClient for CachedLlmClient<C> {
    fn name(&self) -> &str {
        self.stack.model()
    }

    fn try_complete_with(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        self.stack.call(prompt, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_llm::{TransportError, TransportErrorKind};
    use std::sync::atomic::AtomicUsize;

    /// A scriptable fake backend: pops the next outcome per call and
    /// counts upstream traffic.
    struct ScriptedLlm {
        outcomes: Mutex<Vec<CompletionOutcome>>,
        calls: AtomicUsize,
    }

    impl ScriptedLlm {
        fn new(outcomes: Vec<CompletionOutcome>) -> ScriptedLlm {
            ScriptedLlm {
                outcomes: Mutex::new(outcomes),
                calls: AtomicUsize::new(0),
            }
        }

        fn calls(&self) -> usize {
            self.calls.load(Ordering::SeqCst)
        }
    }

    impl LlmClient for ScriptedLlm {
        fn complete(&self, prompt: &str) -> String {
            self.try_complete_with(prompt, &GenOptions::default())
                .unwrap_or_else(|e| format!("[{e}]"))
        }

        fn name(&self) -> &str {
            "scripted"
        }

        fn try_complete_with(&self, prompt: &str, _opts: &GenOptions) -> CompletionOutcome {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let mut outcomes = self.outcomes.lock().unwrap();
            if outcomes.is_empty() {
                Ok(format!("echo:{prompt}"))
            } else {
                outcomes.remove(0)
            }
        }
    }

    fn transport_err() -> TransportError {
        TransportError::new(TransportErrorKind::Timeout, 3, "read deadline")
    }

    #[test]
    fn key_distinguishes_model_opts_and_prompt() {
        let base = GenOptions::default();
        let retry = GenOptions {
            attempt: 1,
            ..GenOptions::default()
        };
        let k1 = completion_key("gpt-4", &base, "p");
        assert_eq!(k1, completion_key("gpt-4", &base, "p"));
        assert_ne!(k1, completion_key("gpt-3.5-turbo-16k", &base, "p"));
        assert_ne!(k1, completion_key("gpt-4", &retry, "p"));
        assert_ne!(k1, completion_key("gpt-4", &base, "p2"));
    }

    #[test]
    fn second_identical_request_is_a_hit() {
        let client = CachedLlmClient::new(ScriptedLlm::new(vec![]), 16);
        let a = client
            .try_complete_with("q", &GenOptions::default())
            .unwrap();
        let b = client
            .try_complete_with("q", &GenOptions::default())
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(client.inner().calls(), 1, "the repeat must not go upstream");
        let stats = client.cache().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transport_errors_are_returned_but_never_cached() {
        let client = CachedLlmClient::new(
            ScriptedLlm::new(vec![Err(transport_err()), Ok("recovered".to_string())]),
            16,
        );
        let first = client.try_complete_with("q", &GenOptions::default());
        assert!(first.is_err());
        assert_eq!(client.cache().len(), 0, "failures must not be stored");
        // The identical retry goes upstream again and succeeds...
        let second = client.try_complete_with("q", &GenOptions::default());
        assert_eq!(second.unwrap(), "recovered");
        assert_eq!(client.inner().calls(), 2);
        // ...and only now is the entry cached.
        let third = client.try_complete_with("q", &GenOptions::default());
        assert_eq!(third.unwrap(), "recovered");
        assert_eq!(client.inner().calls(), 2);
    }

    #[test]
    fn concurrent_identical_requests_make_one_upstream_call() {
        struct SlowLlm {
            calls: AtomicUsize,
        }
        impl LlmClient for SlowLlm {
            fn complete(&self, prompt: &str) -> String {
                self.try_complete_with(prompt, &GenOptions::default())
                    .unwrap()
            }
            fn name(&self) -> &str {
                "slow"
            }
            fn try_complete_with(&self, prompt: &str, _opts: &GenOptions) -> CompletionOutcome {
                self.calls.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(60));
                Ok(format!("slow:{prompt}"))
            }
        }
        let client = Arc::new(CachedLlmClient::new(
            SlowLlm {
                calls: AtomicUsize::new(0),
            },
            16,
        ));
        let gate = Arc::new(std::sync::Barrier::new(6));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let client = Arc::clone(&client);
            let gate = Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                gate.wait();
                client
                    .try_complete_with("same prompt", &GenOptions::default())
                    .unwrap()
            }));
        }
        let results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|r| r == "slow:same prompt"));
        assert_eq!(
            client.inner().calls.load(Ordering::SeqCst),
            1,
            "exactly one upstream call for six concurrent identical requests"
        );
        let stats = client.cache().stats();
        assert_eq!(stats.singleflight_waits + stats.hits, 5);
    }

    #[test]
    fn eviction_counts_and_capacity_hold_under_churn() {
        let client = CachedLlmClient::new(ScriptedLlm::new(vec![]), 4);
        for i in 0..32 {
            client
                .try_complete_with(&format!("prompt {i}"), &GenOptions::default())
                .unwrap();
        }
        let stats = client.cache().stats();
        assert!(client.cache().len() <= 8, "len {}", client.cache().len());
        assert!(stats.evictions > 0);
        assert_eq!(stats.insertions, 32);
    }

    #[test]
    fn tier_qualified_keys_keep_escalated_results_distinct() {
        // In a tiered stack each tier's cache wraps that tier's leaf, so
        // the same prompt answered by the cheap tier and (after
        // escalation) by the strong tier lands under *different* keys —
        // an escalated answer can never be served back as the cheap
        // tier's.
        let opts = GenOptions::default();
        let cheap_key = completion_key("gpt-3.5-turbo-16k", &opts, "plot sales by month");
        let strong_key = completion_key("gpt-4", &opts, "plot sales by month");
        assert_ne!(cheap_key, strong_key);

        let cache = Arc::new(CompletionCache::in_memory(16));
        let layer = CacheLayer::with_cache(Arc::clone(&cache));
        let cheap = layer.layer(nl2vis_service::service_fn("gpt-3.5-turbo-16k", |_, _| {
            Ok("VISUALIZE BAR".to_string())
        }));
        let strong = layer.layer(nl2vis_service::service_fn("gpt-4", |_, _| {
            Ok("VISUALIZE LINE".to_string())
        }));
        assert_eq!(
            cheap.call("plot sales by month", &opts).unwrap(),
            "VISUALIZE BAR"
        );
        assert_eq!(
            strong.call("plot sales by month", &opts).unwrap(),
            "VISUALIZE LINE"
        );
        // Both answers coexist in the shared cache, and each tier keeps
        // serving its own entry on the repeat hit.
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cheap.call("plot sales by month", &opts).unwrap(),
            "VISUALIZE BAR"
        );
        assert_eq!(
            strong.call("plot sales by month", &opts).unwrap(),
            "VISUALIZE LINE"
        );
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn persistence_roundtrip_warms_a_fresh_cache() {
        let path = std::env::temp_dir().join(format!(
            "nl2vis-cache-roundtrip-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let config = CacheConfig {
            capacity: 16,
            shards: 2,
            persist: Some(path.clone()),
        };
        {
            let cache = Arc::new(CompletionCache::open(config.clone()).unwrap());
            let client = CachedLlmClient::with_cache(ScriptedLlm::new(vec![]), cache);
            client
                .try_complete_with("warm me", &GenOptions::default())
                .unwrap();
            assert_eq!(client.inner().calls(), 1);
        }
        // A brand-new cache over the same file starts hot: zero upstream.
        let cache = Arc::new(CompletionCache::open(config).unwrap());
        assert_eq!(cache.stats().persisted_loads, 1);
        let client = CachedLlmClient::with_cache(ScriptedLlm::new(vec![]), cache);
        let out = client
            .try_complete_with("warm me", &GenOptions::default())
            .unwrap();
        assert_eq!(out, "echo:warm me");
        assert_eq!(client.inner().calls(), 0, "served entirely from disk");
        std::fs::remove_file(&path).unwrap();
    }
}
