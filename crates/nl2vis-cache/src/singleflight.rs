//! Single-flight deduplication: concurrent identical requests collapse
//! into one upstream call.
//!
//! When `n` eval workers miss the cache on the same prompt at the same
//! moment, only the first (the *leader*) goes upstream; the rest park on a
//! condvar and receive a clone of the leader's outcome. Errors are shared
//! with the waiters too — they were deduplicated into that exact call, so
//! its failure is their failure — but sharing is strictly per-flight:
//! nothing is memoized, so the *next* request for the same key goes
//! upstream again unless a success was cached by the layer above.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Lifecycle of one in-flight call.
enum FlightState<T> {
    /// The leader is still working.
    Pending,
    /// The leader finished; waiters clone this outcome.
    Done(T),
    /// The leader panicked before producing an outcome. Waiters restart.
    Abandoned,
}

/// One in-flight call: the slot the leader fills and the condvar waiters
/// park on.
struct Call<T> {
    state: Mutex<FlightState<T>>,
    done: Condvar,
}

/// How a [`SingleFlight::run`] resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightRole {
    /// This caller performed the upstream work.
    Leader,
    /// This caller waited on a concurrent identical call.
    Waiter,
}

/// A keyed single-flight group.
pub struct SingleFlight<T> {
    inflight: Mutex<HashMap<String, Arc<Call<T>>>>,
}

impl<T: Clone> Default for SingleFlight<T> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

/// Removes the leader's flight from the map on scope exit — including a
/// panicking `work` — and wakes every waiter. Without this, a dead leader
/// would leave waiters parked forever and the key permanently wedged.
struct Deregister<'a, T: Clone> {
    group: &'a SingleFlight<T>,
    key: &'a str,
    call: &'a Arc<Call<T>>,
}

impl<T: Clone> Drop for Deregister<'_, T> {
    fn drop(&mut self) {
        self.group
            .inflight
            .lock()
            .expect("singleflight map")
            .remove(self.key);
        let mut state = self.call.state.lock().expect("singleflight slot");
        if matches!(*state, FlightState::Pending) {
            *state = FlightState::Abandoned;
        }
        drop(state);
        self.call.done.notify_all();
    }
}

impl<T: Clone> SingleFlight<T> {
    /// An empty group.
    pub fn new() -> SingleFlight<T> {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `work` under single-flight semantics for `key`: if an identical
    /// call is already in flight, blocks until it completes and returns a
    /// clone of its outcome; otherwise runs `work` and wakes every waiter.
    /// A waiter whose leader panicked restarts and may become the leader of
    /// a fresh flight.
    pub fn run<F: FnOnce() -> T>(&self, key: &str, work: F) -> (T, FlightRole) {
        let mut work = Some(work);
        loop {
            let existing = {
                let mut inflight = self.inflight.lock().expect("singleflight map");
                match inflight.get(key) {
                    Some(call) => Some(Arc::clone(call)),
                    None => {
                        let call = Arc::new(Call {
                            state: Mutex::new(FlightState::Pending),
                            done: Condvar::new(),
                        });
                        inflight.insert(key.to_string(), Arc::clone(&call));
                        drop(inflight);
                        // Leader path.
                        let guard = Deregister {
                            group: self,
                            key,
                            call: &call,
                        };
                        let outcome = work.take().expect("work runs at most once")();
                        *call.state.lock().expect("singleflight slot") =
                            FlightState::Done(outcome.clone());
                        drop(guard); // removes the flight, wakes waiters
                        return (outcome, FlightRole::Leader);
                    }
                }
            };
            // Waiter path.
            let call = existing.expect("non-leader always has a call");
            let mut state = call.state.lock().expect("singleflight slot");
            loop {
                match &*state {
                    FlightState::Pending => {
                        state = call.done.wait(state).expect("singleflight wait");
                    }
                    FlightState::Done(outcome) => {
                        return (outcome.clone(), FlightRole::Waiter);
                    }
                    FlightState::Abandoned => break,
                }
            }
            // The leader died without an outcome; retry from the top.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn sequential_calls_each_lead() {
        let sf: SingleFlight<u32> = SingleFlight::new();
        let (a, role_a) = sf.run("k", || 1);
        let (b, role_b) = sf.run("k", || 2);
        assert_eq!((a, role_a), (1, FlightRole::Leader));
        assert_eq!((b, role_b), (2, FlightRole::Leader), "nothing is memoized");
    }

    #[test]
    fn concurrent_identical_calls_collapse_to_one() {
        let sf = Arc::new(SingleFlight::<usize>::new());
        let upstream = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(9));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let sf = Arc::clone(&sf);
            let upstream = Arc::clone(&upstream);
            let gate = Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                gate.wait();
                sf.run("same-key", || {
                    // Hold the flight open long enough that the other
                    // threads arrive while it is still in progress.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    upstream.fetch_add(1, Ordering::SeqCst) + 100
                })
            }));
        }
        gate.wait();
        let results: Vec<(usize, FlightRole)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let leaders = results
            .iter()
            .filter(|(_, r)| *r == FlightRole::Leader)
            .count();
        assert_eq!(upstream.load(Ordering::SeqCst), leaders);
        assert!(
            leaders < 8,
            "at least one thread must have deduplicated into the flight"
        );
        // Every waiter saw its leader's value.
        let values: std::collections::HashSet<usize> = results.iter().map(|(v, _)| *v).collect();
        assert_eq!(values.len(), leaders, "one distinct value per actual call");
    }

    #[test]
    fn distinct_keys_do_not_dedup() {
        let sf = Arc::new(SingleFlight::<usize>::new());
        let upstream = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let sf = Arc::clone(&sf);
                let upstream = Arc::clone(&upstream);
                s.spawn(move || {
                    sf.run(&format!("key-{i}"), || {
                        upstream.fetch_add(1, Ordering::SeqCst)
                    })
                });
            }
        });
        assert_eq!(upstream.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_leader_does_not_wedge_the_key() {
        let sf = Arc::new(SingleFlight::<u32>::new());
        let sf2 = Arc::clone(&sf);
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::thread::spawn(move || {
            sf2.run("k", || panic!("leader dies"));
        })
        .join();
        std::panic::set_hook(prev_hook);
        // The key must be usable again (a wedged flight would hang here).
        let (v, role) = sf.run("k", || 7);
        assert_eq!((v, role), (7, FlightRole::Leader));
    }

    #[test]
    fn waiter_survives_a_panicking_leader() {
        let sf = Arc::new(SingleFlight::<u32>::new());
        let gate = Arc::new(Barrier::new(2));
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let leader = {
            let sf = Arc::clone(&sf);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                sf.run("k", || {
                    gate.wait();
                    // Give the waiter time to park on the flight.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    panic!("leader dies mid-flight");
                })
            })
        };
        gate.wait();
        // This call either joins the doomed flight (then restarts and
        // leads a fresh one) or arrives after deregistration and leads
        // directly; both must produce 9.
        let (v, _) = sf.run("k", || 9);
        assert_eq!(v, 9);
        assert!(leader.join().is_err(), "the leader thread panicked");
        std::panic::set_hook(prev_hook);
    }
}
