//! A sharded, capacity-bounded LRU map for completion caching.
//!
//! The serving path re-issues near-identical prompts thousands of times
//! (demo-count sweeps, repair rounds, repeated eval runs), so the cache is
//! built for concurrent readers: keys hash to one of `N` shards, each an
//! independent mutex-guarded LRU, so two requests for different prompts
//! almost never contend on the same lock. Within a shard the LRU is an
//! intrusive doubly-linked list over a slot vector — `get`, `insert`, and
//! eviction are all O(1).

use std::collections::HashMap;
use std::sync::Mutex;

/// Sentinel for "no slot" in the intrusive list.
const NIL: usize = usize::MAX;

/// FNV-1a, the std-only stable hash used to pick a shard and to bucket
/// keys. Stability matters: persisted caches must re-shard identically
/// across runs (`std::collections` hashing is randomized per process).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Slot<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// One LRU shard: hash map for lookup, intrusive list for recency.
struct Shard<V> {
    map: HashMap<String, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot (the eviction victim).
    tail: usize,
}

impl<V: Clone> Shard<V> {
    fn new() -> Shard<V> {
        Shard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &str) -> Option<V> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].value.clone())
    }

    /// Inserts or refreshes `key`. Returns `true` when an unrelated entry
    /// was evicted to make room.
    fn insert(&mut self, key: String, value: V, capacity: usize) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "a full shard has a tail");
            self.unlink(victim);
            let old_key = std::mem::take(&mut self.slots[victim].key);
            self.map.remove(&old_key);
            self.free.push(victim);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }
}

/// A sharded LRU map with a total capacity bound.
///
/// Capacity is divided evenly across shards (rounded up), so the map never
/// holds more than `shards * ceil(capacity / shards)` entries and each
/// shard evicts independently in strict per-shard LRU order.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_capacity: usize,
}

impl<V: Clone> ShardedLru<V> {
    /// Creates a map bounded at roughly `capacity` entries spread over
    /// `shards` locks (both clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<V> {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity: capacity.div_ceil(shards),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard<V>> {
        // High bits select the shard; the low bits feed the in-shard map.
        let h = fnv1a(key.as_bytes());
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&self, key: &str) -> Option<V> {
        self.shard(key).lock().expect("lru shard").get(key)
    }

    /// Inserts or refreshes `key`; returns `true` if an entry was evicted.
    pub fn insert(&self, key: String, value: V) -> bool {
        let shard = self.shard(&key);
        shard
            .lock()
            .expect("lru shard")
            .insert(key, value, self.per_shard_capacity)
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard").map.len())
            .sum()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots every `(key, value)` pair, LRU order *within* each shard
    /// (least recent first), shard by shard. Used by persistence.
    pub fn snapshot(&self) -> Vec<(String, V)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let shard = s.lock().expect("lru shard");
            // Walk tail -> head so re-inserting the snapshot in order
            // reproduces the recency ranking.
            let mut i = shard.tail;
            while i != NIL {
                out.push((shard.slots[i].key.clone(), shard.slots[i].value.clone()));
                i = shard.slots[i].prev;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_miss_then_hit() {
        let lru: ShardedLru<String> = ShardedLru::new(8, 2);
        assert_eq!(lru.get("a"), None);
        assert!(!lru.insert("a".into(), "1".into()));
        assert_eq!(lru.get("a"), Some("1".into()));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn insert_refreshes_value_without_growth() {
        let lru: ShardedLru<i32> = ShardedLru::new(4, 1);
        lru.insert("k".into(), 1);
        lru.insert("k".into(), 2);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get("k"), Some(2));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let lru: ShardedLru<i32> = ShardedLru::new(3, 1);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        lru.insert("c".into(), 3);
        // Touch `a` so `b` becomes the LRU victim.
        assert_eq!(lru.get("a"), Some(1));
        let evicted = lru.insert("d".into(), 4);
        assert!(evicted);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.get("b"), None, "the least recently used entry goes");
        assert_eq!(lru.get("a"), Some(1));
        assert_eq!(lru.get("c"), Some(3));
        assert_eq!(lru.get("d"), Some(4));
    }

    #[test]
    fn sharded_capacity_never_exceeded() {
        let lru: ShardedLru<usize> = ShardedLru::new(64, 8);
        for i in 0..1000 {
            lru.insert(format!("key-{i}"), i);
        }
        // ceil(64/8) = 8 per shard, 8 shards.
        assert!(lru.len() <= 64, "len {} exceeds the bound", lru.len());
        assert!(lru.len() >= 8, "every shard retains its most recent keys");
    }

    #[test]
    fn eviction_reuses_slots() {
        let lru: ShardedLru<i32> = ShardedLru::new(2, 1);
        for i in 0..100 {
            lru.insert(format!("k{i}"), i);
        }
        let shard = lru.shards[0].lock().unwrap();
        assert!(
            shard.slots.len() <= 3,
            "slot storage must not grow past capacity: {}",
            shard.slots.len()
        );
    }

    #[test]
    fn snapshot_roundtrips_recency() {
        let lru: ShardedLru<i32> = ShardedLru::new(8, 1);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        lru.insert("c".into(), 3);
        lru.get("a");
        let snap = lru.snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "c", "a"], "LRU first, MRU last");
    }

    #[test]
    fn concurrent_access_is_safe_and_bounded() {
        let lru = std::sync::Arc::new(ShardedLru::<usize>::new(32, 4));
        std::thread::scope(|s| {
            for t in 0..4 {
                let lru = std::sync::Arc::clone(&lru);
                s.spawn(move || {
                    for i in 0..500 {
                        lru.insert(format!("t{t}-{i}"), i);
                        lru.get(&format!("t{t}-{}", i / 2));
                    }
                });
            }
        });
        assert!(lru.len() <= 32);
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned values: persisted caches depend on this hash never moving.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
