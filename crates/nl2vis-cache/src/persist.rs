//! JSONL persistence for warm cross-run cache reuse.
//!
//! One JSON object per line, `{"key": ..., "completion": ...}`, appended as
//! entries are inserted. On open the existing file is replayed in order
//! (later lines win, reproducing recency), so a repeated eval run starts
//! with yesterday's completions already hot. Malformed lines are skipped
//! and counted (`cache.persist_skipped`), never fatal: a truncated final
//! line from a killed process must not poison the warm start.

use nl2vis_data::Json;
use nl2vis_obs as obs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// An append-only JSONL writer for cache entries.
pub struct Appender {
    out: BufWriter<std::fs::File>,
}

impl Appender {
    /// Opens `path` for appending (creating it if absent).
    pub fn open(path: &Path) -> std::io::Result<Appender> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Appender {
            out: BufWriter::new(file),
        })
    }

    /// Appends one entry and flushes, so a killed process loses at most the
    /// line being written.
    pub fn append(&mut self, key: &str, completion: &str) -> std::io::Result<()> {
        let line = encode_entry(key, completion);
        writeln!(self.out, "{line}")?;
        self.out.flush()
    }
}

/// Serializes one cache entry as a compact JSON line.
pub fn encode_entry(key: &str, completion: &str) -> String {
    Json::object(vec![
        ("key", Json::from(key)),
        ("completion", Json::from(completion)),
    ])
    .to_compact()
}

/// Parses one JSONL line into `(key, completion)`.
pub fn decode_entry(line: &str) -> Option<(String, String)> {
    let json = Json::parse(line).ok()?;
    let key = json.get("key")?.as_str()?.to_string();
    let completion = json.get("completion")?.as_str()?.to_string();
    Some((key, completion))
}

/// Replays a persisted cache file, invoking `insert` per decoded entry in
/// file order. Returns the number of entries loaded; a missing file loads
/// zero entries (first run), any other IO failure is an error.
pub fn load(path: &Path, mut insert: impl FnMut(String, String)) -> std::io::Result<usize> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut loaded = 0usize;
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match decode_entry(&line) {
            Some((key, completion)) => {
                insert(key, completion);
                loaded += 1;
            }
            None => obs::count("cache.persist_skipped", 1),
        }
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nl2vis-cache-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn encode_decode_roundtrip_with_tricky_content() {
        let key = "gpt-4\u{1f}opts\u{1f}line1\nline2 \"quoted\" \\back";
        let completion = "VISUALIZE bar\nSELECT \"x\" , y";
        let line = encode_entry(key, completion);
        assert!(!line.contains('\n'), "entries must stay one line: {line}");
        let (k, c) = decode_entry(&line).expect("roundtrip");
        assert_eq!(k, key);
        assert_eq!(c, completion);
    }

    #[test]
    fn append_then_load_replays_in_order() {
        let path = temp_path("append-load");
        let _ = std::fs::remove_file(&path);
        {
            let mut appender = Appender::open(&path).unwrap();
            appender.append("k1", "first").unwrap();
            appender.append("k2", "second").unwrap();
            appender.append("k1", "first-updated").unwrap();
        }
        let mut seen = Vec::new();
        let loaded = load(&path, |k, v| seen.push((k, v))).unwrap();
        assert_eq!(loaded, 3);
        assert_eq!(seen[2], ("k1".to_string(), "first-updated".to_string()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_loads_nothing() {
        let path = temp_path("never-created");
        let _ = std::fs::remove_file(&path);
        let loaded = load(&path, |_, _| panic!("nothing to load")).unwrap();
        assert_eq!(loaded, 0);
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        let path = temp_path("malformed");
        std::fs::write(
            &path,
            format!(
                "{}\nnot json at all\n{{\"key\":\"only-key\"}}\n{}\n",
                encode_entry("good1", "a"),
                encode_entry("good2", "b")
            ),
        )
        .unwrap();
        let mut seen = Vec::new();
        let loaded = load(&path, |k, _| seen.push(k)).unwrap();
        assert_eq!(loaded, 2);
        assert_eq!(seen, vec!["good1", "good2"]);
        std::fs::remove_file(&path).unwrap();
    }
}
