//! JSONL persistence for warm cross-run cache reuse.
//!
//! One JSON object per line, `{"key": ..., "completion": ...}`, appended as
//! entries are inserted. On open the existing file is replayed in order
//! (later lines win, reproducing recency), so a repeated eval run starts
//! with yesterday's completions already hot. Malformed *interior* lines are
//! skipped and counted (`cache.persist_skipped`), never fatal. A process
//! killed mid-append leaves exactly one partial line at the end of the file
//! with no trailing newline; that is the expected crash shape, not
//! corruption, so replay tolerates it silently (counted separately as
//! `cache.persist_truncated_tail`) and [`Appender::open`] truncates it away
//! before new entries are written after it.

use nl2vis_data::Json;
use nl2vis_obs as obs;
use std::io::{BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

/// An append-only JSONL writer for cache entries.
pub struct Appender {
    out: BufWriter<std::fs::File>,
}

impl Appender {
    /// Opens `path` for appending (creating it if absent). If the file ends
    /// in a partial line — the residue of a process killed mid-append — the
    /// partial tail is truncated first, so the next entry starts on a clean
    /// line instead of gluing itself onto the dead one.
    pub fn open(path: &Path) -> std::io::Result<Appender> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let keep = complete_prefix_len(&mut file)?;
        if keep < file.metadata()?.len() {
            file.set_len(keep)?;
            // Append mode seeks to the (new) end on write, but be explicit
            // so the writer's position matches the truncated length.
            file.seek(SeekFrom::End(0))?;
        }
        Ok(Appender {
            out: BufWriter::new(file),
        })
    }

    /// Appends one entry and flushes, so a killed process loses at most the
    /// line being written.
    pub fn append(&mut self, key: &str, completion: &str) -> std::io::Result<()> {
        let line = encode_entry(key, completion);
        writeln!(self.out, "{line}")?;
        self.out.flush()
    }
}

impl Drop for Appender {
    /// Best-effort flush so entries buffered near shutdown still reach the
    /// file even when the appender is dropped without an explicit flush.
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// The length of the newline-terminated prefix of `file`: everything up to
/// and including the last `\n`, i.e. the file minus any partial tail line.
fn complete_prefix_len(file: &mut std::fs::File) -> std::io::Result<u64> {
    use std::io::Read;
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(0);
    }
    // Scan backwards in small chunks for the last newline.
    let mut end = len;
    let mut chunk = [0u8; 4096];
    while end > 0 {
        let start = end.saturating_sub(chunk.len() as u64);
        let n = (end - start) as usize;
        file.seek(SeekFrom::Start(start))?;
        file.read_exact(&mut chunk[..n])?;
        if let Some(pos) = chunk[..n].iter().rposition(|&b| b == b'\n') {
            return Ok(start + pos as u64 + 1);
        }
        end = start;
    }
    Ok(0)
}

/// Serializes one cache entry as a compact JSON line.
pub fn encode_entry(key: &str, completion: &str) -> String {
    Json::object(vec![
        ("key", Json::from(key)),
        ("completion", Json::from(completion)),
    ])
    .to_compact()
}

/// Parses one JSONL line into `(key, completion)`.
pub fn decode_entry(line: &str) -> Option<(String, String)> {
    let json = Json::parse(line).ok()?;
    let key = json.get("key")?.as_str()?.to_string();
    let completion = json.get("completion")?.as_str()?.to_string();
    Some((key, completion))
}

/// Replays a persisted cache file, invoking `insert` per decoded entry in
/// file order. Returns the number of entries loaded; a missing file loads
/// zero entries (first run), any other IO failure is an error.
///
/// A malformed line that is the *final* line of the file and lacks a
/// trailing newline is the signature of a process killed mid-append — it is
/// skipped without touching the malformed-line counter (it bumps
/// `cache.persist_truncated_tail` instead). Every other undecodable line is
/// genuine corruption and counts against `cache.persist_skipped`.
pub fn load(path: &Path, mut insert: impl FnMut(String, String)) -> std::io::Result<usize> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut reader = BufReader::new(file);
    let mut loaded = 0usize;
    let mut raw = Vec::new();
    loop {
        raw.clear();
        let n = reader.read_until(b'\n', &mut raw)?;
        if n == 0 {
            break;
        }
        let terminated = raw.last() == Some(&b'\n');
        let line = String::from_utf8_lossy(&raw);
        let line = line.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            continue;
        }
        match decode_entry(line) {
            Some((key, completion)) => {
                insert(key, completion);
                loaded += 1;
            }
            None if !terminated => {
                // An unterminated final line is the one crash artifact the
                // append protocol can leave behind; tolerate it quietly.
                obs::count("cache.persist_truncated_tail", 1);
            }
            None => obs::count("cache.persist_skipped", 1),
        }
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nl2vis-cache-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn encode_decode_roundtrip_with_tricky_content() {
        let key = "gpt-4\u{1f}opts\u{1f}line1\nline2 \"quoted\" \\back";
        let completion = "VISUALIZE bar\nSELECT \"x\" , y";
        let line = encode_entry(key, completion);
        assert!(!line.contains('\n'), "entries must stay one line: {line}");
        let (k, c) = decode_entry(&line).expect("roundtrip");
        assert_eq!(k, key);
        assert_eq!(c, completion);
    }

    #[test]
    fn append_then_load_replays_in_order() {
        let path = temp_path("append-load");
        let _ = std::fs::remove_file(&path);
        {
            let mut appender = Appender::open(&path).unwrap();
            appender.append("k1", "first").unwrap();
            appender.append("k2", "second").unwrap();
            appender.append("k1", "first-updated").unwrap();
        }
        let mut seen = Vec::new();
        let loaded = load(&path, |k, v| seen.push((k, v))).unwrap();
        assert_eq!(loaded, 3);
        assert_eq!(seen[2], ("k1".to_string(), "first-updated".to_string()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_loads_nothing() {
        let path = temp_path("never-created");
        let _ = std::fs::remove_file(&path);
        let loaded = load(&path, |_, _| panic!("nothing to load")).unwrap();
        assert_eq!(loaded, 0);
    }

    #[test]
    fn truncated_tail_from_kill_mid_append_is_tolerated_silently() {
        let path = temp_path("kill-mid-write");
        // Two good entries, then a partial third line with no trailing
        // newline — exactly what a process killed mid-append leaves behind.
        std::fs::write(
            &path,
            format!(
                "{}\n{}\n{{\"key\":\"half-writ",
                encode_entry("good1", "a"),
                encode_entry("good2", "b")
            ),
        )
        .unwrap();
        let registry = nl2vis_obs::registry::global();
        let skipped_before = registry.counter("cache.persist_skipped").get();
        let tail_before = registry.counter("cache.persist_truncated_tail").get();
        let mut seen = Vec::new();
        let loaded = load(&path, |k, _| seen.push(k)).unwrap();
        assert_eq!(loaded, 2);
        assert_eq!(seen, vec!["good1", "good2"]);
        // The crash artifact is not corruption: the malformed-line counter
        // must not move, only the truncated-tail counter.
        assert_eq!(
            registry.counter("cache.persist_skipped").get(),
            skipped_before,
            "a lone unterminated tail must not count as a malformed line"
        );
        assert_eq!(
            registry.counter("cache.persist_truncated_tail").get(),
            tail_before + 1
        );
        // Re-opening for append truncates the dead tail, so the next entry
        // starts on a clean line instead of gluing onto the partial one.
        {
            let mut appender = Appender::open(&path).unwrap();
            appender.append("good3", "c").unwrap();
        }
        let mut seen = Vec::new();
        let loaded = load(&path, |k, _| seen.push(k)).unwrap();
        assert_eq!(loaded, 3);
        assert_eq!(seen, vec!["good1", "good2", "good3"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_interior_line_still_counts_even_with_truncated_tail() {
        let path = temp_path("interior-vs-tail");
        std::fs::write(
            &path,
            format!("{}\nnot json\n{{\"key\":\"part", encode_entry("good", "a")),
        )
        .unwrap();
        let registry = nl2vis_obs::registry::global();
        let skipped_before = registry.counter("cache.persist_skipped").get();
        let loaded = load(&path, |_, _| {}).unwrap();
        assert_eq!(loaded, 1);
        assert_eq!(
            registry.counter("cache.persist_skipped").get(),
            skipped_before + 1,
            "terminated garbage is corruption regardless of the tail state"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn drop_flushes_buffered_entries() {
        let path = temp_path("drop-flush");
        let _ = std::fs::remove_file(&path);
        {
            let mut appender = Appender::open(&path).unwrap();
            appender.append("k", "v").unwrap();
            // Dropped here without an explicit flush call.
        }
        let mut seen = Vec::new();
        load(&path, |k, _| seen.push(k)).unwrap();
        assert_eq!(seen, vec!["k"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        let path = temp_path("malformed");
        std::fs::write(
            &path,
            format!(
                "{}\nnot json at all\n{{\"key\":\"only-key\"}}\n{}\n",
                encode_entry("good1", "a"),
                encode_entry("good2", "b")
            ),
        )
        .unwrap();
        let mut seen = Vec::new();
        let loaded = load(&path, |k, _| seen.push(k)).unwrap();
        assert_eq!(loaded, 2);
        assert_eq!(seen, vec!["good1", "good2"]);
        std::fs::remove_file(&path).unwrap();
    }
}
