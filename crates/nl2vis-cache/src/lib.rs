//! Serving-path completion cache for nl2vis.
//!
//! LLM calls dominate the serving path's wall-clock and cost, and the
//! workloads in this repo are extremely repetitive: demo-count sweeps,
//! repair rounds, and repeated eval runs all re-issue the same
//! `(model, options, prompt)` triples. This crate removes that redundancy
//! with three composable pieces:
//!
//! - [`ShardedLru`] — a capacity-bounded, sharded LRU map (O(1) get /
//!   insert / evict; std-only).
//! - [`SingleFlight`] — concurrent identical requests collapse into one
//!   upstream call; waiters share the leader's outcome (errors included,
//!   but errors are never memoized).
//! - [`CompletionCache`] / [`CacheLayer`] — the serving-path glue: a
//!   `nl2vis_service::Layer` that checks the cache, dedups in-flight
//!   misses, stores only *successful* completions, and optionally
//!   persists them as JSONL for warm cross-run starts.
//!   [`CachedLlmClient`] keeps the pre-refactor [`nl2vis_llm::LlmClient`]
//!   wrapper surface as a shim over the layer.
//!
//! Layering matters: the cache wraps *outside* retry (`Cache(Retry(leaf))`
//! — the contract `nl2vis_service::validate_stack` enforces), so a cached
//! entry is always a completion that survived the full
//! retry-and-attribution path — transport errors, timeouts, and HTTP
//! error statuses never enter the cache.

pub mod client;
pub mod lru;
pub mod persist;
pub mod singleflight;

pub use client::{
    completion_key, CacheConfig, CacheLayer, CacheStats, Cached, CachedLlmClient, CompletionCache,
};
pub use lru::{fnv1a, ShardedLru};
pub use persist::{decode_entry, encode_entry, Appender};
pub use singleflight::{FlightRole, SingleFlight};
