//! Serving-path completion cache for nl2vis.
//!
//! LLM calls dominate the serving path's wall-clock and cost, and the
//! workloads in this repo are extremely repetitive: demo-count sweeps,
//! repair rounds, and repeated eval runs all re-issue the same
//! `(model, options, prompt)` triples. This crate removes that redundancy
//! with three composable pieces:
//!
//! - [`ShardedLru`] — a capacity-bounded, sharded LRU map (O(1) get /
//!   insert / evict; std-only).
//! - [`SingleFlight`] — concurrent identical requests collapse into one
//!   upstream call; waiters share the leader's outcome (errors included,
//!   but errors are never memoized).
//! - [`CompletionCache`] / [`CachedLlmClient`] — the serving-path glue:
//!   an [`nl2vis_llm::LlmClient`] wrapper that checks the cache, dedups
//!   in-flight misses, stores only *successful* completions, and
//!   optionally persists them as JSONL for warm cross-run starts.
//!
//! Layering matters: the cache wraps *outside* retry
//! (`CachedLlmClient<ResilientLlmClient<HttpLlmClient>>`), so a cached
//! entry is always a completion that survived the full
//! retry-and-attribution path — transport errors, timeouts, and HTTP
//! error statuses never enter the cache.

pub mod client;
pub mod lru;
pub mod persist;
pub mod singleflight;

pub use client::{completion_key, CacheConfig, CacheStats, CachedLlmClient, CompletionCache};
pub use lru::{fnv1a, ShardedLru};
pub use persist::{decode_entry, encode_entry, Appender};
pub use singleflight::{FlightRole, SingleFlight};
