//! Serving-path end-to-end: a cached client driving a real eval run
//! against a live [`CompletionServer`].
//!
//! This is the acceptance surface for the cache: a repeated identical eval
//! must serve (almost) entirely from memory — high hit rate, strictly
//! fewer TCP connections, lower wall-clock — while transport failures
//! (injected 500s, tripped deadlines) never poison the cache.

use nl2vis_cache::{CachedLlmClient, CompletionCache};
use nl2vis_corpus::{Corpus, CorpusConfig};
use nl2vis_eval::runner::{evaluate_llm, EvalReport, LlmEvalConfig};
use nl2vis_llm::fault::{Fault, FaultInjector};
use nl2vis_llm::http::{CompletionServer, HttpLlmClient, Timeouts};
use nl2vis_llm::{GenOptions, LlmClient, ModelProfile, SimLlm, TransportErrorKind};
use nl2vis_obs::MetricsRegistry;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn accuracy_key(r: &EvalReport) -> Vec<(usize, bool, bool)> {
    r.results
        .iter()
        .map(|x| (x.id, x.outcome.exact, x.outcome.exec))
        .collect()
}

#[test]
fn repeated_eval_serves_from_cache_with_fewer_connections() {
    let corpus = Corpus::build(&CorpusConfig::small(17));
    let split = corpus.split_cross_domain(1);
    let llm = SimLlm::new(ModelProfile::davinci_003(), 5);
    let registry = Arc::new(MetricsRegistry::new());
    // Every completion pays a small injected stall — a deterministic
    // stand-in for real upstream inference latency, so the cold/warm
    // wall-clock gap cannot drown in measurement noise.
    let server = CompletionServer::start_with_faults(
        llm,
        Arc::clone(&registry),
        FaultInjector::parse("stall=1.0,stall_ms=3,seed=1").unwrap(),
    )
    .unwrap();
    let cache = Arc::new(CompletionCache::in_memory(4096));
    let client = CachedLlmClient::with_cache(
        HttpLlmClient::new(server.address(), "text-davinci-003"),
        Arc::clone(&cache),
    );
    let config = LlmEvalConfig::default();
    let limit = Some(30);

    let cold_started = Instant::now();
    let cold = evaluate_llm(&client, &corpus, &split.train, &split.test, &config, limit);
    let cold_wall = cold_started.elapsed();
    let cold_conns = registry.counter("server.connections_total").get();
    let cold_stats = cache.stats();

    let warm_started = Instant::now();
    let warm = evaluate_llm(&client, &corpus, &split.train, &split.test, &config, limit);
    let warm_wall = warm_started.elapsed();
    let warm_conns = registry.counter("server.connections_total").get() - cold_conns;
    let stats = cache.stats();

    let n = cold.results.len();
    assert!(n >= 10, "need a meaningful run, got {n} examples");
    assert_eq!(
        accuracy_key(&cold),
        accuracy_key(&warm),
        "a cache hit must reproduce the exact completion, hence the exact score"
    );

    // >= 90% of the warm run's lookups hit.
    let warm_hits = stats.hits - cold_stats.hits;
    let warm_lookups = (stats.hits + stats.misses) - (cold_stats.hits + cold_stats.misses);
    assert!(warm_lookups > 0);
    let warm_hit_rate = warm_hits as f64 / warm_lookups as f64;
    assert!(
        warm_hit_rate >= 0.9,
        "warm hit rate {warm_hit_rate:.3} ({warm_hits}/{warm_lookups})"
    );

    // Strictly fewer TCP connections (typically zero) on the warm run.
    assert!(cold_conns >= 1);
    assert!(
        warm_conns < cold_conns,
        "warm run opened {warm_conns} connections vs {cold_conns} cold"
    );

    // And it is actually faster: the cold run paid >= n * 3 ms of upstream
    // latency that the warm run skipped.
    assert!(
        warm_wall < cold_wall,
        "warm {warm_wall:?} must beat cold {cold_wall:?}"
    );
}

#[test]
fn injected_500_and_timeout_are_never_cached() {
    let llm = SimLlm::new(ModelProfile::davinci_003(), 5);
    let registry = Arc::new(MetricsRegistry::new());
    // Request 1: HTTP 500. Request 2: a stall past the client's read
    // deadline. Request 3 (the retry of the same prompt): clean.
    let server = CompletionServer::start_with_faults(
        llm,
        Arc::clone(&registry),
        FaultInjector::script(vec![
            Fault::Http500,
            Fault::Stall(Duration::from_millis(600)),
            Fault::None,
            Fault::None,
        ]),
    )
    .unwrap();
    let timeouts = Timeouts {
        connect: Duration::from_secs(2),
        read: Duration::from_millis(200),
        write: Duration::from_secs(2),
    };
    let cache = Arc::new(CompletionCache::in_memory(64));
    let client = CachedLlmClient::with_cache(
        HttpLlmClient::with_timeouts(server.address(), "text-davinci-003", timeouts),
        Arc::clone(&cache),
    );
    let prompt = "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question\nVQL:";
    let opts = GenOptions::default();

    // 500 surfaces as a typed status error and caches nothing.
    match client.try_complete_with(prompt, &opts) {
        Err(e) => assert_eq!(e.kind, TransportErrorKind::Status(500), "{e}"),
        Ok(text) => panic!("the injected 500 must not yield a completion: {text}"),
    }
    assert_eq!(cache.stats().insertions, 0, "an error must never be cached");

    // The tripped deadline surfaces as a timeout and caches nothing.
    match client.try_complete_with(prompt, &opts) {
        Err(e) => assert_eq!(e.kind, TransportErrorKind::Timeout, "{e}"),
        Ok(text) => panic!("the stalled request must not yield a completion: {text}"),
    }
    assert_eq!(cache.stats().insertions, 0);

    // The same prompt now succeeds — proving the earlier failures were not
    // memoized — and only then becomes cacheable.
    let ok = client
        .try_complete_with(prompt, &opts)
        .expect("clean request succeeds");
    assert!(!ok.is_empty());
    assert_eq!(cache.stats().insertions, 1);

    // Fourth call: served from cache, no new upstream completion.
    let upstream_before = registry.counter("llm.requests_total").get();
    let again = client.try_complete_with(prompt, &opts).unwrap();
    assert_eq!(again, ok);
    assert_eq!(
        registry.counter("llm.requests_total").get(),
        upstream_before,
        "a cache hit must not reach the server"
    );
    assert_eq!(cache.stats().hits, 1);
}
