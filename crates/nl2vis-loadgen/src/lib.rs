//! # nl2vis-loadgen — sustained load harness for the completion server
//!
//! The serving claims of this reproduction (and its ROADMAP north star of
//! production-scale traffic) need load-shaped numbers, not 80-example eval
//! loops. This crate is a crud-bench-style generator that drives a
//! [`CompletionServer`](nl2vis_llm::http::CompletionServer) over real
//! HTTP:
//!
//! - **open- or closed-loop arrival** ([`config::Arrival`]) with
//!   coordinated-omission correction — open-loop latency is measured from
//!   each request's *intended* send time, so server stalls cannot hide by
//!   throttling the generator (see [`runner`] for the full argument);
//! - **Zipf-skewed prompt keys** ([`prompts::PromptPool`]) drawn from the
//!   real corpus, the hot-key pattern that exercises the completion cache
//!   and single-flight dedup;
//! - **warmup + sustained measurement** phases with per-phase latency
//!   breakdown (connect / queue / serve / end-to-end);
//! - **live windowed telemetry** — a rolling throughput/p99/shed line
//!   printed during the run from an
//!   [`obs::WindowedRegistry`](nl2vis_obs::WindowedRegistry), mirroring
//!   the server's own `GET /stats`;
//! - **a regression trajectory** — results land in `BENCH_load.json`, and
//!   [`diff`] compares two such files and flags moves past a threshold.
//!
//! Binaries: `nl2vis-loadgen` (the harness) and `bench_diff` (the
//! comparator, also reachable via `scripts/bench_diff`).

pub mod client;
pub mod config;
pub mod diff;
pub mod prompts;
pub mod results;
pub mod runner;

pub use config::{Arrival, LoadConfig, Skew, Target};
pub use diff::{diff, DiffReport};
pub use runner::{run_once, RunStats, RunTarget};

use nl2vis_data::Json;
use prompts::PromptPool;
use std::sync::Arc;

/// Runs the full configured sweep (every thread count) and returns the
/// `BENCH_load.json` document plus the per-run stats.
pub fn run_load(config: &LoadConfig) -> Result<(Json, Vec<RunStats>), String> {
    let target = RunTarget::start(config)?;
    let pool = Arc::new(PromptPool::build(config.prompts, config.skew, config.seed));
    let mut runs = Vec::with_capacity(config.threads.len());
    for &threads in &config.threads {
        runs.push(runner::run_once(config, threads, &target, &pool));
    }
    Ok((results::bench_json(config, &runs), runs))
}
