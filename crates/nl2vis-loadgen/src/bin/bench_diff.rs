//! `bench_diff`: compares two `BENCH_load.json` files and flags
//! regressions beyond a threshold.
//!
//! ```text
//! cargo run -p nl2vis-loadgen --bin bench_diff -- \
//!     BENCH_load.baseline.json BENCH_load.json [--threshold=0.2] [--strict]
//! ```
//!
//! Exit status: 0 when clean (or nothing comparable), 1 on regression —
//! or, under `--strict`, when the baseline has runs the candidate lacks
//! (lost regression coverage) — 2 on usage/parse errors.

use nl2vis_data::Json;

fn main() {
    let mut files = Vec::new();
    let mut threshold = 0.2f64;
    let mut strict = false;
    for arg in std::env::args().skip(1) {
        if let Some(value) = arg.strip_prefix("--threshold=") {
            threshold = match value.parse::<f64>() {
                Ok(t) if t > 0.0 && t.is_finite() => t,
                _ => {
                    eprintln!("error: bad threshold `{value}`");
                    std::process::exit(2);
                }
            };
        } else if arg == "--strict" {
            strict = true;
        } else {
            files.push(arg);
        }
    }
    if files.len() != 2 {
        eprintln!(
            "usage: bench_diff <baseline.json> <candidate.json> [--threshold=0.2] [--strict]"
        );
        std::process::exit(2);
    }
    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(&files[0]);
    let candidate = load(&files[1]);
    let report = nl2vis_loadgen::diff(&baseline, &candidate, threshold);
    println!(
        "bench_diff: {} vs {} (threshold {:.0}%)",
        files[0],
        files[1],
        threshold * 100.0
    );
    print!("{}", report.table);
    if !report.unmatched_baseline.is_empty() {
        println!(
            "baseline runs with no candidate counterpart ({}):",
            report.unmatched_baseline.len()
        );
        for key in &report.unmatched_baseline {
            println!("  - {key}");
        }
    }
    if !report.unmatched_candidate.is_empty() {
        println!(
            "candidate runs with no baseline counterpart ({}):",
            report.unmatched_candidate.len()
        );
        for key in &report.unmatched_candidate {
            println!("  + {key}");
        }
    }
    if !report.clean() {
        println!("verdict: {} regression(s)", report.regressions.len());
        for regression in &report.regressions {
            println!("  - {regression}");
        }
        std::process::exit(1);
    }
    if strict && !report.strict_clean() {
        println!(
            "verdict: strict failure ({} baseline run(s) lost coverage)",
            report.unmatched_baseline.len()
        );
        std::process::exit(1);
    }
    println!("verdict: clean");
}
