//! The `nl2vis-loadgen` binary: parse flags, run the sweep, print the
//! table, write `BENCH_load.json`.
//!
//! ```text
//! cargo run -p nl2vis-loadgen --release -- \
//!     --threads=32 --duration=60 --rate=open:500 --skew=zipf:1.1
//! ```

use nl2vis_loadgen::{results, run_load, LoadConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", help());
        return;
    }
    let config = match LoadConfig::parse_args(&args) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", help());
            std::process::exit(2);
        }
    };
    eprintln!(
        "[loadgen] threads={:?} rate={} skew={} prompts={} cache={} replicas={} warmup={:.0}s duration={:.0}s",
        config.threads,
        config.arrival.label(),
        config.skew.label(),
        config.prompts,
        config.cache_capacity,
        config.replicas,
        config.warmup.as_secs_f64(),
        config.duration.as_secs_f64(),
    );
    match run_load(&config) {
        Ok((json, runs)) => {
            print!("{}", results::render_table(&runs));
            if !config.out.is_empty() {
                match std::fs::write(&config.out, json.to_pretty()) {
                    Ok(()) => eprintln!("[loadgen] wrote {}", config.out),
                    Err(e) => {
                        eprintln!("[loadgen] failed to write {}: {e}", config.out);
                        std::process::exit(1);
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn help() -> String {
    "\
nl2vis-loadgen: sustained load harness for the completion server

flags (all --key=value):
  --threads=N[,N..]    worker thread counts to sweep        [8]
  --duration=SECS      measured phase per thread count      [10]
  --warmup=SECS        unmeasured warmup phase              [2]
  --rate=closed|open:RPS arrival discipline                 [closed]
  --skew=uniform|zipf:THETA prompt-key distribution         [zipf:1.1]
  --prompts=N          distinct prompts in the pool         [256]
  --cache=N            client-side cache capacity, 0 = off  [0]
  --service-ms=MS      injected service time (self-hosted)  [2]
  --tail=P:MS|off      heavy-tail stall: probability P, MS  [off]
  --replicas=N         self-hosted replica fleet size       [1]
  --hedge-ms=MS        hedge delay when routed, 0 = off     [15]
  --server=self|HOST:PORT target server                     [self]
  --server-workers=N   self-hosted worker pool size         [16]
  --server-queue=N     self-hosted accept-queue depth       [64]
  --dashboard=on|off   live fleet table (per-replica + merged
                       rps/p50/p99/shed, SLO burn rates)    [off]
  --out=PATH           results file, empty to skip          [BENCH_load.json]
  --report=SECS        live progress interval, 0 = quiet    [2]
  --seed=N             prompt sampling seed                 [42]
  --model=NAME         model profile                        [text-davinci-003]
  --tiers=T[,T..]      tiered self-hosted stack, cheap to
                       strong; model names or `bad`         [untiered]
  --route-policy=P     cheap-first|quality-first|budget:N   [cheap-first]
"
    .to_string()
}
