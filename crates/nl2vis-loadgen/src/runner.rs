//! The load run itself: warmup + sustained measurement, open- or
//! closed-loop arrival, coordinated-omission correction, live windowed
//! reporting.
//!
//! ## Coordinated omission, and why two end-to-end histograms
//!
//! A closed-loop generator only sends its next request when the previous
//! one returns — so when the server stalls, the generator politely stops
//! generating, and the stall's victims never appear in the latency
//! distribution. The open loop fixes the *schedule*: request `i` of
//! worker `k` has an **intended** send time fixed up front
//! (`epoch + (k + i·T)/rate`), and latency is measured from that intended
//! time. A request the server delayed pays for the delay even though the
//! socket only carried it later. Both views are recorded:
//!
//! - `e2e_corrected` — completion minus *intended* send (the honest open-
//!   loop number);
//! - `e2e_uncorrected` — completion minus *actual* send (what a
//!   coordinated, closed-loop measurement would have reported).
//!
//! Their divergence at saturation is the whole point: if they agree, the
//! server kept up; if corrected >> uncorrected, the generator was being
//! throttled and uncorrected numbers were lying.

use crate::client::{fetch, LoadConn, Outcome};
use crate::config::{Arrival, LoadConfig, Target};
use crate::prompts::PromptPool;
use nl2vis_cache::{completion_key, CompletionCache};
use nl2vis_data::{Json, Rng};
use nl2vis_llm::{FaultInjector, GenOptions, ModelProfile, ServerConfig, SimLlm};
use nl2vis_obs as obs;
use nl2vis_obs::{Histogram, HistogramSummary, MetricsRegistry, WindowConfig, WindowedRegistry};
use nl2vis_router::fleet::{FleetConfig, FleetObserver};
use nl2vis_router::{Router, RouterConfig, RouterStatsSnapshot};
use nl2vis_service::{
    service_fn, Layer, RouteLayer, TieredService, ValidateLayer, VqlSyntaxValidator,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregated result of one measured run at one thread count.
pub struct RunStats {
    /// Worker threads driving load.
    pub threads: usize,
    /// Arrival label (`closed`, `open:500`).
    pub rate: String,
    /// Wall-clock of the measured phase.
    pub measured: Duration,
    /// Requests whose *intended* time fell inside the measured phase.
    pub sent: u64,
    /// ... of which completed `200` (including cache hits).
    pub ok: u64,
    /// ... of which were shed with `429`.
    pub shed: u64,
    /// ... of which failed (transport/protocol/unexpected status).
    pub errors: u64,
    /// `200`s served from the client-side cache without touching the wire.
    pub cache_hits: u64,
    /// End-to-end latency from *intended* send time.
    pub e2e_corrected: HistogramSummary,
    /// End-to-end latency from *actual* send time.
    pub e2e_uncorrected: HistogramSummary,
    /// TCP connect phase (fresh connections only).
    pub connect: HistogramSummary,
    /// Scheduling delay: actual send minus intended send.
    pub queue: HistogramSummary,
    /// Wire service phase: request write to response read.
    pub serve: HistogramSummary,
    /// The server's own `GET /stats` snapshot at the end of the run.
    pub server_stats: Option<Json>,
    /// Replica count the run drove (1 = direct, >1 = routed).
    pub replicas: usize,
    /// Hedge delay the routed run used (0 = hedging off or not routed).
    /// Part of the run's identity: `bench_diff` must never compare a
    /// hedged run against an unhedged one at the same topology.
    pub hedge_ms: u64,
    /// Router counters when the run went through the replica router.
    pub router: Option<RouterStatsSnapshot>,
    /// The fleet observer's final `/fleet/stats` view (`--dashboard`
    /// runs): merged + per-replica rollup and SLO burn rates.
    pub fleet: Option<Json>,
    /// Tier routing telemetry for `--tiers` runs: policy, per-tier
    /// request/escalation counts, validation failures, and cost units —
    /// the deltas this run put on the `route.*` counters.
    pub tiers: Option<Json>,
}

impl RunStats {
    /// Completed requests per second of measured wall-clock.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.measured.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }

    /// Fraction of sent requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.shed as f64 / self.sent as f64
        }
    }

    /// Fraction of `200`s answered by the client-side cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.ok as f64
        }
    }
}

/// Everything the workers share during one run.
struct RunShared {
    epoch: Instant,
    /// Elapsed offset where measurement begins (the warmup boundary).
    measure_from: Duration,
    /// Elapsed offset where the run ends.
    end_at: Duration,
    stop: AtomicBool,
    sent: AtomicU64,
    ok: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    e2e_corrected: Histogram,
    e2e_uncorrected: Histogram,
    connect: Histogram,
    queue: Histogram,
    serve: Histogram,
    /// Rolling view feeding the live reporter; fed from warmup onward so
    /// the first report line isn't empty.
    windowed: WindowedRegistry,
    cache: Option<CompletionCache>,
}

/// The servers a run drives: either borrowed (remote) or owned
/// (self-hosted replicas, shut down when the run ends).
pub struct RunTarget {
    /// Address workers connect to directly (`--replicas=1` path): the
    /// remote server or the first self-hosted replica.
    pub addr: SocketAddr,
    /// Every replica address, ring order (length 1 unless `--replicas`).
    pub addrs: Vec<SocketAddr>,
    /// Model name sent with each request.
    pub model: String,
    servers: Vec<nl2vis_llm::http::CompletionServer>,
}

/// Composes the tiered completion service for a `--tiers` run. Every
/// non-final tier is validation-gated: a completion that fails the VQL
/// syntax check comes back as a 422 and the router escalates. The final
/// tier answers unconditionally (the quality floor). A `bad` tier is a
/// deliberately broken backend whose every answer fails the gate.
fn build_tiers(config: &LoadConfig) -> Result<TieredService, String> {
    let mut route = RouteLayer::new(config.route_policy).model("tiered");
    let last = config.tiers.len().saturating_sub(1);
    for (i, name) in config.tiers.iter().enumerate() {
        let gated = i < last;
        if name == "bad" {
            let leaf = service_fn("bad", |_, _| Ok("I cannot answer that.".to_string()));
            route = if gated {
                route.tier("bad", 1, ValidateLayer::new(VqlSyntaxValidator).layer(leaf))
            } else {
                route.tier("bad", 1, leaf)
            };
        } else {
            let profile = ModelProfile::by_name(name)
                .ok_or_else(|| format!("unknown tier model `{name}`"))?;
            let cost = profile.cost_units();
            let llm = SimLlm::new(profile, config.seed);
            route = if gated {
                route.tier(
                    name.clone(),
                    cost,
                    ValidateLayer::new(VqlSyntaxValidator).layer(llm),
                )
            } else {
                route.tier(name.clone(), cost, llm)
            };
        }
    }
    route.build()
}

impl RunTarget {
    /// Resolves the configured target, starting the in-process replica
    /// fleet for [`Target::SelfHosted`].
    pub fn start(config: &LoadConfig) -> Result<RunTarget, String> {
        let model = config.model.clone();
        if !config.tiers.is_empty() {
            if config.target != Target::SelfHosted {
                return Err("--tiers needs --server=self (the harness owns the stack)".to_string());
            }
            if config.replicas > 1 {
                return Err(
                    "--tiers and --replicas don't combine (one routing layer per run)".to_string(),
                );
            }
            let tiered = build_tiers(config)?;
            let model = "tiered".to_string();
            let faults = if config.service_ms > 0 || config.tail_prob > 0.0 {
                FaultInjector::random_with_tail(
                    1,
                    0.0,
                    0.0,
                    if config.service_ms > 0 { 1.0 } else { 0.0 },
                    Duration::from_millis(config.service_ms),
                    config.tail_prob,
                    Duration::from_millis(config.tail_ms),
                )
            } else {
                FaultInjector::none()
            };
            let server = nl2vis_llm::http::CompletionServer::start_with_service_config(
                tiered,
                Arc::new(MetricsRegistry::new()),
                faults,
                ServerConfig {
                    max_inflight: config.server_workers,
                    queue_depth: config.server_queue,
                    retry_after: Duration::from_millis(5),
                },
            )
            .map_err(|e| format!("tiered server start failed: {e}"))?;
            return Ok(RunTarget {
                addr: server.address(),
                addrs: vec![server.address()],
                model,
                servers: vec![server],
            });
        }
        match &config.target {
            Target::Remote(addr) => {
                if config.replicas > 1 {
                    return Err(
                        "--replicas needs --server=self (the harness owns the fleet)".to_string(),
                    );
                }
                let addr: SocketAddr = addr
                    .parse()
                    .map_err(|e| format!("bad --server address `{addr}`: {e}"))?;
                Ok(RunTarget {
                    addr,
                    addrs: vec![addr],
                    model,
                    servers: Vec::new(),
                })
            }
            Target::SelfHosted => {
                let profile = match model.as_str() {
                    "gpt-4" => ModelProfile::gpt_4(),
                    "gpt-3.5-turbo-16k" => ModelProfile::turbo_16k(),
                    _ => ModelProfile::davinci_003(),
                };
                let model = profile.name.to_string();
                let mut servers = Vec::with_capacity(config.replicas);
                for replica in 0..config.replicas {
                    // The simulated model completes in microseconds of CPU;
                    // the injected stall gives every completion a realistic
                    // service time (plus an optional heavy tail) so queueing
                    // dynamics and hedging have something to act on. Each
                    // replica draws from its own seed so tails de-correlate.
                    let faults = if config.service_ms > 0 || config.tail_prob > 0.0 {
                        FaultInjector::random_with_tail(
                            1 + replica as u64,
                            0.0,
                            0.0,
                            if config.service_ms > 0 { 1.0 } else { 0.0 },
                            Duration::from_millis(config.service_ms),
                            config.tail_prob,
                            Duration::from_millis(config.tail_ms),
                        )
                    } else {
                        FaultInjector::none()
                    };
                    let server = nl2vis_llm::http::CompletionServer::start_with_config(
                        SimLlm::new(profile.clone(), config.seed),
                        Arc::new(MetricsRegistry::new()),
                        faults,
                        ServerConfig {
                            max_inflight: config.server_workers,
                            queue_depth: config.server_queue,
                            retry_after: Duration::from_millis(5),
                        },
                    )
                    .map_err(|e| format!("replica {replica} start failed: {e}"))?;
                    servers.push(server);
                }
                Ok(RunTarget {
                    addr: servers[0].address(),
                    addrs: servers.iter().map(|s| s.address()).collect(),
                    model,
                    servers,
                })
            }
        }
    }

    /// The first in-process server, when self-hosted.
    pub fn server(&self) -> Option<&nl2vis_llm::http::CompletionServer> {
        self.servers.first()
    }

    /// Builds the replica router for this fleet, per run so cache shards
    /// and latency windows start cold like every other per-run stat.
    fn router(&self, config: &LoadConfig) -> Router {
        let router_config = RouterConfig {
            hedge: config.hedge_ms > 0,
            default_hedge_delay: Duration::from_millis(config.hedge_ms.max(1)),
            hedge_delay_floor: Duration::from_millis(1),
            // Split the configured cache budget over the shards so a
            // 1-replica --cache=C run and an N-replica run compare the
            // same total capacity.
            shard_capacity: config.cache_capacity.div_ceil(self.addrs.len()),
            health_interval: Some(Duration::from_millis(500)),
            ..RouterConfig::default()
        };
        Router::over_http(&self.addrs, &self.model, router_config)
    }
}

/// Point-in-time read of the `route.*` counters a tiered run moves; two
/// snapshots bracket a run, and their difference is that run's telemetry
/// (the counters are process-global, so a thread sweep accumulates).
struct RouteCounters {
    requests: u64,
    escalations: u64,
    validation_failures: u64,
    cost_units: u64,
    /// `(tier name, requests, escalations)` per configured tier.
    per_tier: Vec<(String, u64, u64)>,
}

fn route_counters(tiers: &[String]) -> RouteCounters {
    let g = obs::global();
    RouteCounters {
        requests: g.counter("route.tier.requests_total").get(),
        escalations: g.counter("route.tier.escalations_total").get(),
        validation_failures: g.counter("route.tier.validation_failures_total").get(),
        cost_units: g.counter("route.cost_units").get(),
        per_tier: tiers
            .iter()
            .map(|t| {
                (
                    t.clone(),
                    g.counter(&format!("route.tier.{t}.requests_total")).get(),
                    g.counter(&format!("route.tier.{t}.escalations_total"))
                        .get(),
                )
            })
            .collect(),
    }
}

impl RouteCounters {
    /// The run's tier telemetry as a JSON object: this snapshot minus
    /// `before`.
    fn delta_json(&self, before: &RouteCounters, policy: &str) -> Json {
        let rows: Vec<String> = self
            .per_tier
            .iter()
            .zip(&before.per_tier)
            .map(|((name, reqs, escs), (_, reqs0, escs0))| {
                format!(
                    "{{\"name\":\"{name}\",\"requests\":{},\"escalations\":{}}}",
                    reqs - reqs0,
                    escs - escs0,
                )
            })
            .collect();
        let text = format!(
            "{{\"policy\":\"{policy}\",\"requests_total\":{},\"escalations_total\":{},\
             \"validation_failures_total\":{},\"cost_units\":{},\"tiers\":[{}]}}",
            self.requests - before.requests,
            self.escalations - before.escalations,
            self.validation_failures - before.validation_failures,
            self.cost_units - before.cost_units,
            rows.join(","),
        );
        Json::parse(&text).expect("tier telemetry is well-formed JSON")
    }
}

/// Runs warmup + measurement at one thread count against `target`.
pub fn run_once(
    config: &LoadConfig,
    threads: usize,
    target: &RunTarget,
    pool: &Arc<PromptPool>,
) -> RunStats {
    let route_before = (!config.tiers.is_empty()).then(|| route_counters(&config.tiers));
    let shared = Arc::new(RunShared {
        epoch: Instant::now(),
        measure_from: config.warmup,
        end_at: config.warmup + config.duration,
        stop: AtomicBool::new(false),
        sent: AtomicU64::new(0),
        ok: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        e2e_corrected: Histogram::default(),
        e2e_uncorrected: Histogram::default(),
        connect: Histogram::default(),
        queue: Histogram::default(),
        serve: Histogram::default(),
        windowed: WindowedRegistry::new(WindowConfig {
            bucket: Duration::from_millis(500),
            buckets: 10,
        }),
        // With replicas the router's per-replica shards carry the cache
        // budget instead; a second client-side cache in front would hide
        // exactly the shard locality the topology runs measure.
        cache: (config.cache_capacity > 0 && config.replicas == 1)
            .then(|| CompletionCache::in_memory(config.cache_capacity)),
    });

    let router = (config.replicas > 1).then(|| Arc::new(target.router(config)));

    // The dashboard observes the fleet exactly as the router's fleet
    // plane would: scraping every replica's /metrics.json and merging.
    let observer = config
        .dashboard
        .then(|| FleetObserver::new(&target.addrs, FleetConfig::default()));

    let reporter = (config.report > Duration::ZERO || observer.is_some()).then(|| {
        let shared = Arc::clone(&shared);
        let interval = config.report.max(Duration::from_millis(500));
        let observer = observer.clone();
        let router = router.clone();
        std::thread::spawn(move || match &observer {
            Some(observer) => dashboard_loop(&shared, observer, router.as_deref(), interval),
            None => report_loop(&shared, interval, threads),
        })
    });

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(pool);
            let addr = target.addr;
            let model = target.model.clone();
            let arrival = config.arrival;
            let seed = config.seed;
            let router = router.clone();
            scope.spawn(move || {
                worker_loop(
                    worker,
                    threads,
                    &shared,
                    &pool,
                    addr,
                    &model,
                    arrival,
                    seed,
                    router.as_deref(),
                )
            });
        }
    });
    shared.stop.store(true, Ordering::Relaxed);
    if let Some(handle) = reporter {
        let _ = handle.join();
    }

    let server_stats = fetch(target.addr, "/stats").and_then(|body| Json::parse(&body).ok());
    // A final poll so the recorded fleet snapshot covers the whole run.
    let fleet = observer.map(|observer| {
        observer.poll_once();
        Json::parse(&observer.fleet_stats_json()).expect("fleet stats is well-formed JSON")
    });
    let measured = shared
        .epoch
        .elapsed()
        .saturating_sub(config.warmup)
        .min(config.duration.max(Duration::from_millis(1)));
    RunStats {
        threads,
        rate: config.arrival.label(),
        measured,
        sent: shared.sent.load(Ordering::Relaxed),
        ok: shared.ok.load(Ordering::Relaxed),
        shed: shared.shed.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        cache_hits: shared.cache_hits.load(Ordering::Relaxed),
        e2e_corrected: shared.e2e_corrected.summary(),
        e2e_uncorrected: shared.e2e_uncorrected.summary(),
        connect: shared.connect.summary(),
        queue: shared.queue.summary(),
        serve: shared.serve.summary(),
        server_stats,
        replicas: target.addrs.len(),
        hedge_ms: if config.replicas > 1 {
            config.hedge_ms
        } else {
            0
        },
        router: router.map(|r| r.stats().snapshot()),
        fleet,
        tiers: route_before.map(|before| {
            route_counters(&config.tiers).delta_json(&before, &config.route_policy.name())
        }),
    }
}

/// One worker: schedule, send, classify, record.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: usize,
    threads: usize,
    shared: &RunShared,
    pool: &PromptPool,
    addr: SocketAddr,
    model: &str,
    arrival: Arrival,
    seed: u64,
    router: Option<&Router>,
) {
    let mut rng = Rng::new(seed).fork(worker as u64 + 1);
    let mut conn = LoadConn::new(addr, model);
    let options = GenOptions::default();
    let mut iteration = 0u64;

    loop {
        // Fixed-rate schedule: this worker owns ticks worker, worker+T,
        // worker+2T, ... of the aggregate arrival process.
        let intended = match arrival {
            Arrival::Closed => shared.epoch.elapsed(),
            Arrival::Open { rps } => {
                Duration::from_secs_f64((worker as f64 + iteration as f64 * threads as f64) / rps)
            }
        };
        if intended >= shared.end_at || shared.epoch.elapsed() >= shared.end_at {
            return;
        }
        if let Some(wait) = intended.checked_sub(shared.epoch.elapsed()) {
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
        iteration += 1;

        let rank = pool.sample_rank(&mut rng);
        let prompt = pool.prompt(rank);
        let actual_send = shared.epoch.elapsed();

        // Issue the request — via the replica router when one is driving
        // the fleet, else through the completion cache when one is
        // configured (hot Zipf ranks then answer locally; misses share a
        // single flight per key), bare otherwise.
        let mut connect_us = 0u64;
        let mut serve_us = 0u64;
        let mut wire = false;
        let outcome = if let Some(router) = router {
            let issued = Instant::now();
            let call = router.call_detailed(prompt, &options);
            serve_us = issued.elapsed().as_micros() as u64;
            // A shard hit never touched the wire; everything else did
            // (connect time is folded into the attempt, so `connect`
            // stays empty on routed runs).
            wire = !call.shard_hit;
            match call.outcome {
                Ok(_) => Outcome::Ok,
                Err(e) if matches!(e.kind, nl2vis_llm::TransportErrorKind::Status(429)) => {
                    Outcome::Shed
                }
                Err(e) => Outcome::Error(e.message),
            }
        } else {
            match &shared.cache {
                None => {
                    wire = true;
                    let result = conn.request(prompt);
                    connect_us = result.connect_us;
                    serve_us = result.serve_us;
                    result.outcome
                }
                Some(cache) => {
                    let key = completion_key(model, &options, prompt);
                    let through = cache.complete_through(&key, || {
                        wire = true;
                        let result = conn.request(prompt);
                        connect_us = result.connect_us;
                        serve_us = result.serve_us;
                        match result.outcome {
                            // The harness discards completion text; cache an
                            // empty marker so hits are hits.
                            Outcome::Ok => Ok(String::new()),
                            Outcome::Shed => Err(nl2vis_llm::TransportError::new(
                                nl2vis_llm::TransportErrorKind::Status(429),
                                1,
                                "shed",
                            )),
                            Outcome::Error(message) => Err(nl2vis_llm::TransportError::new(
                                nl2vis_llm::TransportErrorKind::Io,
                                1,
                                message,
                            )),
                        }
                    });
                    match through {
                        Ok(_) => Outcome::Ok,
                        Err(e) if matches!(e.kind, nl2vis_llm::TransportErrorKind::Status(429)) => {
                            Outcome::Shed
                        }
                        Err(e) => Outcome::Error(e.message),
                    }
                }
            }
        };

        let done = shared.epoch.elapsed();
        let corrected_us = done.saturating_sub(intended).as_micros() as u64;
        let uncorrected_us = done.saturating_sub(actual_send).as_micros() as u64;
        let queue_us = actual_send.saturating_sub(intended).as_micros() as u64;
        // A sample belongs to the measured phase if it *completed* after
        // the warmup boundary — completion time, not intended time: a
        // saturated open loop falls behind its schedule, and intended
        // times lagging the wall clock must not re-label sustained-phase
        // damage as warmup.
        let measured = done >= shared.measure_from;

        match outcome {
            Outcome::Ok => {
                shared.windowed.counter("loadgen.ok").inc();
                shared
                    .windowed
                    .histogram("loadgen.e2e_us")
                    .record(corrected_us);
                if measured {
                    shared.sent.fetch_add(1, Ordering::Relaxed);
                    shared.ok.fetch_add(1, Ordering::Relaxed);
                    if !wire {
                        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    shared.e2e_corrected.record(corrected_us);
                    shared.e2e_uncorrected.record(uncorrected_us);
                    shared.queue.record(queue_us);
                    if wire {
                        shared.serve.record(serve_us);
                        if connect_us > 0 {
                            shared.connect.record(connect_us);
                        }
                    }
                }
            }
            Outcome::Shed => {
                shared.windowed.counter("loadgen.shed").inc();
                if measured {
                    shared.sent.fetch_add(1, Ordering::Relaxed);
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                }
                // A shed advertised Retry-After: 5ms; honoring a small
                // backoff keeps the closed loop from busy-hammering the
                // accept queue.
                if matches!(arrival, Arrival::Closed) {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            Outcome::Error(message) => {
                shared.windowed.counter("loadgen.errors").inc();
                if measured {
                    shared.sent.fetch_add(1, Ordering::Relaxed);
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                }
                obs::count("loadgen.errors_total", 1);
                if shared.errors.load(Ordering::Relaxed) <= 3 {
                    eprintln!("[loadgen] worker {worker}: {message}");
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Prints a rolling one-line status from the windowed registry until the
/// run stops: throughput, windowed p50/p99 (corrected), shed rate.
fn report_loop(shared: &RunShared, interval: Duration, threads: usize) {
    let e2e = shared.windowed.histogram("loadgen.e2e_us");
    let ok = shared.windowed.counter("loadgen.ok");
    let sheds = shared.windowed.counter("loadgen.shed");
    let errors = shared.windowed.counter("loadgen.errors");
    let mut last_ms = 0u64;
    while !shared.stop.load(Ordering::Relaxed) {
        // Nap in short slices so a finished run isn't held open (and no
        // stale final line is printed), reporting once per interval.
        std::thread::sleep(interval.min(Duration::from_millis(200)));
        let elapsed = shared.epoch.elapsed();
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let now_ms = elapsed.as_millis() as u64;
        if now_ms.saturating_sub(last_ms) < interval.as_millis() as u64 {
            continue;
        }
        last_ms = now_ms;
        let window = e2e.summary();
        let shed_window = sheds.window_total();
        let total = window.count + shed_window + errors.window_total();
        let shed_rate = if total == 0 {
            0.0
        } else {
            shed_window as f64 / total as f64
        };
        let phase = if elapsed < shared.measure_from {
            "warmup "
        } else {
            ""
        };
        eprintln!(
            "[loadgen t={:>5.1}s {phase}threads={threads}] rps={:7.1} ok={} p50={:.1}ms p99={:.1}ms shed={:.1}% ",
            elapsed.as_secs_f64(),
            window.rate_per_sec(),
            ok.window_total(),
            window.p50 / 1_000.0,
            window.p99 / 1_000.0,
            shed_rate * 100.0,
        );
    }
}

/// One dashboard row from a `/fleet/stats` replica object (or the merged
/// `fleet` object, which shares the field names).
fn dashboard_row(label: &str, node: &Json) -> String {
    let f = |key: &str| node.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let window_requests = f("window_requests");
    let shed_pct = if window_requests + f("window_shed") > 0.0 {
        f("window_shed") / (window_requests + f("window_shed")) * 100.0
    } else {
        0.0
    };
    format!(
        "  {label:<22} {:>8.1} {:>8.1} {:>8.1} {:>6.1}% {:>8}",
        f("throughput_rps"),
        f("window_p50_us") / 1_000.0,
        f("window_p99_us") / 1_000.0,
        shed_pct,
        f("requests_total") as u64,
    )
}

/// The `--dashboard` reporter: scrape the fleet each tick and render a
/// rolling table — one row per replica, one merged row, one SLO burn
/// line, plus the router's hedge/shard-hit counters when routing.
fn dashboard_loop(
    shared: &RunShared,
    observer: &FleetObserver,
    router: Option<&Router>,
    interval: Duration,
) {
    while !shared.stop.load(Ordering::Relaxed) {
        let mut left = interval;
        while !shared.stop.load(Ordering::Relaxed) && !left.is_zero() {
            let step = left.min(Duration::from_millis(200));
            std::thread::sleep(step);
            left -= step;
        }
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        observer.poll_once();
        let stats = match Json::parse(&observer.fleet_stats_json()) {
            Ok(stats) => stats,
            Err(_) => continue,
        };
        let elapsed = shared.epoch.elapsed();
        let phase = if elapsed < shared.measure_from {
            " warmup"
        } else {
            ""
        };
        let mut out = format!(
            "[fleet t={:>5.1}s{phase}]  {:<21} {:>8} {:>8} {:>8} {:>7} {:>8}\n",
            elapsed.as_secs_f64(),
            "replica",
            "rps",
            "p50ms",
            "p99ms",
            "shed",
            "reqs",
        );
        if let Some(rows) = stats.get("replicas").and_then(Json::as_array) {
            for row in rows {
                let id = row.get("id").and_then(Json::as_str).unwrap_or("?");
                if row.get("ok").and_then(Json::as_bool) == Some(true) {
                    out.push_str(&dashboard_row(id, row));
                } else {
                    let error = row.get("error").and_then(Json::as_str).unwrap_or("down");
                    out.push_str(&format!("  {id:<22} UNREACHABLE ({error})"));
                }
                out.push('\n');
            }
        }
        if let Some(fleet) = stats.get("fleet") {
            out.push_str(&dashboard_row("MERGED", fleet));
            out.push('\n');
        }
        if let Some(statuses) = stats.get("slo").and_then(Json::as_array) {
            let burns: Vec<String> = statuses
                .iter()
                .map(|s| {
                    format!(
                        "{}={:.2}/{:.2}",
                        s.get("name").and_then(Json::as_str).unwrap_or("?"),
                        s.get("fast_burn").and_then(Json::as_f64).unwrap_or(0.0),
                        s.get("slow_burn").and_then(Json::as_f64).unwrap_or(0.0),
                    )
                })
                .collect();
            out.push_str(&format!("  slo burn (fast/slow): {}", burns.join("  ")));
        }
        if let Some(router) = router {
            let snap = router.stats().snapshot();
            let hit_rate = if snap.requests == 0 {
                0.0
            } else {
                snap.shard_hits as f64 / snap.requests as f64 * 100.0
            };
            out.push_str(&format!(
                "   router: hit={hit_rate:.0}% hedges={} wins={}",
                snap.hedges_fired, snap.hedge_wins,
            ));
        }
        eprintln!("{out}");
    }
}
