//! The load generator's wire client: one persistent keep-alive connection
//! per worker, with per-phase timing.
//!
//! [`HttpLlmClient`](nl2vis_llm::http::HttpLlmClient) hides connection
//! management — which is right for the serving path and wrong for a load
//! harness, where *connect time is a measured phase* and the shed path
//! (`429` on a fresh connection) must be counted, not retried away. This
//! client keeps the socket visible: it reuses its one connection while the
//! server keeps it alive, reconnects (timed) when it does not, and retries
//! exactly once when a parked socket turns out to be stale.

use nl2vis_data::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Per-request socket deadlines. Generous enough for a server under
/// deliberate overload, small enough that a dead server fails the run
/// instead of hanging it.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// What the server said to one request.
#[derive(Debug)]
pub enum Outcome {
    /// 200 with a completion body.
    Ok,
    /// 429 — admission control shed the request.
    Shed,
    /// Transport or protocol failure, or an unexpected status.
    Error(String),
}

/// One request's result with its phase breakdown (microseconds).
#[derive(Debug)]
pub struct WireResult {
    /// How the request ended.
    pub outcome: Outcome,
    /// TCP connect time; 0 when the request rode the kept-alive socket.
    pub connect_us: u64,
    /// Write-to-last-byte service time as seen from the client.
    pub serve_us: u64,
}

/// A worker's connection to the completion server.
pub struct LoadConn {
    addr: SocketAddr,
    model: String,
    stream: Option<TcpStream>,
}

enum WireError {
    /// The reused socket died before delivering a status line — retryable
    /// once on a fresh connection.
    Stale,
    /// A real failure.
    Fatal(String),
}

impl LoadConn {
    /// A client for `addr` requesting completions from `model`.
    pub fn new(addr: SocketAddr, model: impl Into<String>) -> LoadConn {
        LoadConn {
            addr,
            model: model.into(),
            stream: None,
        }
    }

    /// Issues one completion request, reusing the kept-alive connection
    /// when one is parked. A stale parked socket costs one transparent
    /// reconnect; every other failure is the request's outcome.
    pub fn request(&mut self, prompt: &str) -> WireResult {
        let body = Json::object(vec![
            ("model", Json::from(self.model.as_str())),
            ("prompt", Json::from(prompt)),
        ])
        .to_compact();

        let mut connect_us = 0u64;
        let reused = self.stream.is_some();
        if self.stream.is_none() {
            let started = Instant::now();
            match TcpStream::connect_timeout(&self.addr, IO_TIMEOUT) {
                Ok(stream) => {
                    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                    // Request/response latency is the measurement; Nagle
                    // batching + delayed ACK would add spurious 40ms
                    // stalls to it.
                    let _ = stream.set_nodelay(true);
                    connect_us = started.elapsed().as_micros() as u64;
                    self.stream = Some(stream);
                }
                Err(e) => {
                    return WireResult {
                        outcome: Outcome::Error(format!("connect: {e}")),
                        connect_us: started.elapsed().as_micros() as u64,
                        serve_us: 0,
                    }
                }
            }
        }

        let started = Instant::now();
        match self.roundtrip(&body) {
            Ok(outcome) => WireResult {
                outcome,
                connect_us,
                serve_us: started.elapsed().as_micros() as u64,
            },
            Err(WireError::Stale) if reused => {
                // The parked socket died while idle; the request never
                // reached the server, so a single fresh-connection retry is
                // safe. `self.stream` is already cleared.
                self.request(prompt)
            }
            Err(WireError::Stale) => WireResult {
                outcome: Outcome::Error("connection closed before response".to_string()),
                connect_us,
                serve_us: started.elapsed().as_micros() as u64,
            },
            Err(WireError::Fatal(message)) => WireResult {
                outcome: Outcome::Error(message),
                connect_us,
                serve_us: started.elapsed().as_micros() as u64,
            },
        }
    }

    /// One exchange on the live socket. On any error the socket is
    /// dropped; on success it is kept only if the server said keep-alive.
    fn roundtrip(&mut self, body: &str) -> Result<Outcome, WireError> {
        let mut stream = self.stream.take().expect("live socket");
        let fatal = |e: std::io::Error| WireError::Fatal(format!("io: {e}"));
        // One write syscall for the whole request: header-then-body writes
        // on a non-NODELAY path would hand Nagle a stall opportunity, and
        // even with NODELAY two segments cost more than one.
        let request = format!(
            "POST /v1/completions HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        stream
            .write_all(request.as_bytes())
            .and_then(|_| stream.flush())
            .map_err(|e| {
                // A write failing on a reused socket is the stale signature too
                // (RST from a closed peer surfaces on write).
                if is_disconnect(&e) {
                    WireError::Stale
                } else {
                    fatal(e)
                }
            })?;

        let mut reader = BufReader::new(stream.try_clone().map_err(fatal)?);
        let mut status_line = String::new();
        // `Stale` (and the transparent retry it buys) is only safe while
        // the response has not started: once any status-line byte arrived,
        // the server *did* process the request, so replaying it would
        // double-send — and a readable 429 would be retried instead of
        // counted as the shed it is.
        match reader.read_line(&mut status_line) {
            Ok(0) => return Err(WireError::Stale),
            Ok(_) => {}
            Err(e) if is_disconnect(&e) && status_line.is_empty() => return Err(WireError::Stale),
            Err(e) => return Err(fatal(e)),
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| WireError::Fatal(format!("bad status line `{status_line}`")))?;

        // Past this point the status is authoritative. If the connection
        // dies mid-headers or mid-body, a 429 is still a shed (admission
        // control spoke; the body was only advisory) — anything else is a
        // fatal truncation. Never `Stale`.
        match Self::read_rest(&mut reader) {
            Ok((keep_alive, response)) => {
                drop(reader);
                if keep_alive && status == 200 {
                    self.stream = Some(stream);
                }
                Ok(match status {
                    200 => Outcome::Ok,
                    429 => Outcome::Shed,
                    other => Outcome::Error(format!(
                        "http {other}: {}",
                        String::from_utf8_lossy(&response)
                    )),
                })
            }
            Err(_) if status == 429 => Ok(Outcome::Shed),
            Err(e) => Err(e),
        }
    }

    /// Reads headers and body after the status line; returns
    /// `(keep_alive, body)`.
    fn read_rest(reader: &mut BufReader<TcpStream>) -> Result<(bool, Vec<u8>), WireError> {
        let fatal = |e: std::io::Error| WireError::Fatal(format!("io: {e}"));
        let mut content_length: Option<usize> = None;
        let mut keep_alive = false;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).map_err(fatal)? == 0 {
                return Err(WireError::Fatal("truncated headers".to_string()));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            // Shared header helpers: names match case-insensitively, values
            // keep their bytes, and a `Connection:` token list is matched
            // per token.
            if let Some(v) = nl2vis_llm::http::header_value(line, "content-length") {
                let parsed = v
                    .parse::<usize>()
                    .map_err(|_| WireError::Fatal(format!("bad content-length `{v}`")))?;
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Err(WireError::Fatal(
                        "conflicting duplicate content-length headers".to_string(),
                    ));
                }
                content_length = Some(parsed);
            }
            if let Some(v) = nl2vis_llm::http::header_value(line, "connection") {
                keep_alive = nl2vis_llm::http::connection_keeps_alive(v);
            }
        }
        let content_length = content_length.unwrap_or(0);
        let mut response = vec![0u8; content_length.min(nl2vis_llm::http::MAX_BODY_BYTES)];
        reader.read_exact(&mut response).map_err(fatal)?;
        Ok((keep_alive, response))
    }
}

fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// Fetches a debug endpoint (`/stats`, `/metrics`) from the server and
/// returns the response body. Best-effort: any failure yields `None`.
pub fn fetch(addr: SocketAddr, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2)).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\n\r\n"
    )
    .ok()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response).ok()?;
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_llm::{ModelProfile, SimLlm};
    use nl2vis_obs::MetricsRegistry;
    use std::sync::Arc;

    #[test]
    fn request_reuses_the_connection_and_times_phases() {
        let registry = Arc::new(MetricsRegistry::new());
        let server = nl2vis_llm::http::CompletionServer::start_with_registry(
            SimLlm::new(ModelProfile::davinci_003(), 1),
            Arc::clone(&registry),
        )
        .unwrap();
        let mut conn = LoadConn::new(server.address(), "text-davinci-003");
        let prompt = "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: hello\nVQL:";

        let first = conn.request(prompt);
        assert!(matches!(first.outcome, Outcome::Ok), "{:?}", first.outcome);
        assert!(first.connect_us > 0, "fresh request pays a connect");
        assert!(first.serve_us > 0);

        let second = conn.request(prompt);
        assert!(matches!(second.outcome, Outcome::Ok));
        assert_eq!(second.connect_us, 0, "second request rides keep-alive");
        assert_eq!(registry.counter("server.connections_total").get(), 1);

        let stats = fetch(server.address(), "/stats").expect("stats body");
        let json = Json::parse(&stats).unwrap();
        assert_eq!(
            json.get("window_requests").and_then(Json::as_f64),
            Some(2.0)
        );
    }

    /// Reads one HTTP request (headers + content-length body) off a raw
    /// socket; returns false on EOF before any byte.
    fn read_request(reader: &mut BufReader<TcpStream>) -> bool {
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                return false;
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = nl2vis_llm::http::header_value(line, "content-length") {
                content_length = v.parse().unwrap_or(0);
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        true
    }

    /// The satellite regression: a 429 delivered on a *reused* connection —
    /// even one whose body is truncated by the peer closing right after —
    /// must be counted as a shed, not misclassified down the stale-socket
    /// path and silently re-sent.
    #[test]
    fn truncated_429_on_reused_conn_is_a_shed_not_a_stale_retry() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let requests_seen = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let seen = Arc::clone(&requests_seen);
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            // First request: a normal keep-alive 200 so the client parks
            // the socket as reused.
            assert!(read_request(&mut reader));
            seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok",
                )
                .unwrap();
            // Second request: a shed whose advertised body never fully
            // arrives — the server dies right after the headers.
            assert!(read_request(&mut reader));
            seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            stream
                .write_all(b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 40\r\n\r\nshort")
                .unwrap();
            drop(stream);
            // A buggy client would reconnect and replay the request here;
            // give it a beat, then poll the backlog without hanging.
            std::thread::sleep(Duration::from_millis(200));
            listener.set_nonblocking(true).unwrap();
            if let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream);
                if read_request(&mut reader) {
                    seen.fetch_add(100, std::sync::atomic::Ordering::SeqCst);
                }
            }
        });

        let mut conn = LoadConn::new(addr, "m");
        let first = conn.request("p");
        assert!(matches!(first.outcome, Outcome::Ok), "{:?}", first.outcome);
        let second = conn.request("p");
        assert!(
            matches!(second.outcome, Outcome::Shed),
            "a readable 429 with a truncated body must classify as Shed, got {:?}",
            second.outcome
        );
        server.join().unwrap();
        assert_eq!(
            requests_seen.load(std::sync::atomic::Ordering::SeqCst),
            2,
            "the shed request must not be silently replayed on a fresh connection"
        );
    }
}
