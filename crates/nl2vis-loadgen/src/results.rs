//! `BENCH_load.json` assembly and the human-readable run table.
//!
//! The file is the perf-regression trajectory: every serving-path PR
//! re-runs the harness and `bench_diff` compares the new file against the
//! previous one, so "did p99 move" is a table, not an argument.

use crate::config::LoadConfig;
use crate::runner::RunStats;
use nl2vis_data::Json;
use nl2vis_obs::HistogramSummary;

fn ms(us: f64) -> f64 {
    (us / 1_000.0 * 1_000.0).round() / 1_000.0
}

/// One latency phase as JSON, milliseconds with µs precision.
fn phase_json(s: &HistogramSummary) -> Json {
    Json::object(vec![
        ("count", Json::from(s.count as i64)),
        ("min_ms", Json::Number(ms(s.min as f64))),
        ("max_ms", Json::Number(ms(s.max as f64))),
        ("mean_ms", Json::Number(ms(s.mean()))),
        ("p50_ms", Json::Number(ms(s.p50))),
        ("p95_ms", Json::Number(ms(s.p95))),
        ("p99_ms", Json::Number(ms(s.p99))),
    ])
}

/// One run (one thread count) as a JSON object.
pub fn run_json(run: &RunStats) -> Json {
    let mut fields = vec![
        ("threads", Json::from(run.threads as i64)),
        ("rate", Json::from(run.rate.as_str())),
        ("replicas", Json::from(run.replicas as i64)),
        ("hedge_ms", Json::from(run.hedge_ms as i64)),
        ("duration_s", Json::Number(run.measured.as_secs_f64())),
        ("requests", Json::from(run.sent as i64)),
        ("ok", Json::from(run.ok as i64)),
        ("shed", Json::from(run.shed as i64)),
        ("errors", Json::from(run.errors as i64)),
        ("throughput_rps", Json::Number(run.throughput_rps())),
        ("shed_rate", Json::Number(run.shed_rate())),
        ("cache_hit_rate", Json::Number(run.cache_hit_rate())),
        (
            "latency_ms",
            Json::object(vec![
                ("e2e_corrected", phase_json(&run.e2e_corrected)),
                ("e2e_uncorrected", phase_json(&run.e2e_uncorrected)),
                ("connect", phase_json(&run.connect)),
                ("queue", phase_json(&run.queue)),
                ("serve", phase_json(&run.serve)),
            ]),
        ),
    ];
    if let Some(router) = &run.router {
        fields.push((
            "router",
            Json::object(vec![
                ("requests", Json::from(router.requests as i64)),
                ("shard_hits", Json::from(router.shard_hits as i64)),
                ("hedges_fired", Json::from(router.hedges_fired as i64)),
                ("hedge_wins", Json::from(router.hedge_wins as i64)),
                ("primary_wins", Json::from(router.primary_wins as i64)),
                ("failovers", Json::from(router.failovers as i64)),
                ("penalties", Json::from(router.penalties as i64)),
                (
                    "penalty_deferrals",
                    Json::from(router.penalty_deferrals as i64),
                ),
                ("ejections", Json::from(router.ejections as i64)),
                ("readmissions", Json::from(router.readmissions as i64)),
            ]),
        ));
    }
    if let Some(fleet) = &run.fleet {
        fields.push(("fleet", fleet.clone()));
    }
    if let Some(tiers) = &run.tiers {
        fields.push(("tiers", tiers.clone()));
    }
    if let Some(stats) = &run.server_stats {
        fields.push(("server_stats", stats.clone()));
    }
    Json::object(fields)
}

/// The whole `BENCH_load.json` document.
pub fn bench_json(config: &LoadConfig, runs: &[RunStats]) -> Json {
    Json::object(vec![
        ("experiment", Json::from("load")),
        ("model", Json::from(config.model.as_str())),
        ("rate", Json::from(config.arrival.label().as_str())),
        ("skew", Json::from(config.skew.label().as_str())),
        ("prompts", Json::from(config.prompts as i64)),
        ("cache_capacity", Json::from(config.cache_capacity as i64)),
        ("service_ms", Json::from(config.service_ms as i64)),
        ("replicas", Json::from(config.replicas as i64)),
        ("hedge_ms", Json::from(config.hedge_ms as i64)),
        ("tail_prob", Json::Number(config.tail_prob)),
        ("tail_ms", Json::from(config.tail_ms as i64)),
        ("warmup_s", Json::Number(config.warmup.as_secs_f64())),
        ("duration_s", Json::Number(config.duration.as_secs_f64())),
        ("seed", Json::from(config.seed as i64)),
        (
            "tiers",
            Json::Array(
                config
                    .tiers
                    .iter()
                    .map(|t| Json::from(t.as_str()))
                    .collect(),
            ),
        ),
        (
            "route_policy",
            Json::from(config.route_policy.name().as_str()),
        ),
        ("runs", Json::Array(runs.iter().map(run_json).collect())),
    ])
}

/// Fixed-width summary table of the runs, for stdout.
pub fn render_table(runs: &[RunStats]) -> String {
    let mut out = String::from(
        "threads  rate       rps      ok      shed   err  hit%   p50corr  p99corr  p99uncorr\n",
    );
    out.push_str(&"-".repeat(88));
    out.push('\n');
    for run in runs {
        out.push_str(&format!(
            "{:<7}  {:<9}  {:>7.1}  {:>6}  {:>5}  {:>4}  {:>4.0}%  {:>6.1}ms  {:>6.1}ms  {:>7.1}ms\n",
            run.threads,
            run.rate,
            run.throughput_rps(),
            run.ok,
            run.shed,
            run.errors,
            run.cache_hit_rate() * 100.0,
            run.e2e_corrected.p50 / 1_000.0,
            run.e2e_corrected.p99 / 1_000.0,
            run.e2e_uncorrected.p99 / 1_000.0,
        ));
    }
    out
}
