//! CLI configuration for the load harness.
//!
//! Everything is a `--key=value` flag with a benchmark-friendly default,
//! so `cargo run -p nl2vis-loadgen --release` alone produces a meaningful
//! sustained run, and the acceptance invocation
//! `--threads=32 --duration=60 --rate=open:500 --skew=zipf:1.1` scales it
//! up.

use nl2vis_llm::ModelProfile;
use nl2vis_service::RoutePolicy;
use std::time::Duration;

/// How the load generator schedules request starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Each worker issues its next request the moment the previous one
    /// completes — throughput is *coordinated* with the server, so queueing
    /// delay hides from the latency distribution (the classic coordinated
    /// omission trap).
    Closed,
    /// Fixed-rate schedule: the run fires `rps` requests per second split
    /// round-robin across workers, and every latency is measured from the
    /// *intended* send time, so a slow server pays for the requests it
    /// delayed.
    Open {
        /// Target aggregate arrival rate, requests per second.
        rps: f64,
    },
}

impl Arrival {
    /// Stable label used in results and run matching (`closed`,
    /// `open:500`).
    pub fn label(&self) -> String {
        match self {
            Arrival::Closed => "closed".to_string(),
            Arrival::Open { rps } => format!("open:{rps}"),
        }
    }
}

/// Which prompts the generator draws, and how often.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    /// Every prompt equally likely.
    Uniform,
    /// Rank-`r` prompt drawn with probability proportional to
    /// `1 / r^theta` — hot-key skew, the access pattern that exercises the
    /// completion cache and single-flight dedup.
    Zipf {
        /// Skew exponent; ~0.99–1.2 models real workload hot keys.
        theta: f64,
    },
}

impl Skew {
    /// Stable label used in results (`uniform`, `zipf:1.1`).
    pub fn label(&self) -> String {
        match self {
            Skew::Uniform => "uniform".to_string(),
            Skew::Zipf { theta } => format!("zipf:{theta}"),
        }
    }
}

/// Where the harness finds its server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// Start an in-process [`CompletionServer`](nl2vis_llm::http::CompletionServer)
    /// sized by `--server-workers` / `--server-queue` and drive that.
    SelfHosted,
    /// Drive an already-running server at `host:port`.
    Remote(String),
}

/// Full configuration of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Thread counts to sweep, one measured run per entry.
    pub threads: Vec<usize>,
    /// Sustained measurement phase per thread count.
    pub duration: Duration,
    /// Warmup phase per thread count; requests sent but not measured.
    pub warmup: Duration,
    /// Arrival discipline.
    pub arrival: Arrival,
    /// Prompt-key distribution.
    pub skew: Skew,
    /// Distinct prompts in the pool.
    pub prompts: usize,
    /// Client-side completion-cache capacity; 0 disables the cache.
    pub cache_capacity: usize,
    /// Injected per-completion service time on the self-hosted server, in
    /// milliseconds (the simulated model itself is CPU-only).
    pub service_ms: u64,
    /// Probability that a request draws the heavy-tail service time
    /// instead of the base one (self-hosted only); 0 disables the tail.
    pub tail_prob: f64,
    /// Heavy-tail service time, milliseconds.
    pub tail_ms: u64,
    /// Self-hosted replica count. 1 drives the single server directly;
    /// larger counts start N servers and route through the
    /// prompt-affinity router (consistent hashing + hedging).
    pub replicas: usize,
    /// Hedge trigger before per-replica p95 data exists, milliseconds;
    /// 0 disables hedging. Only meaningful with `--replicas` > 1.
    pub hedge_ms: u64,
    /// Server to drive.
    pub target: Target,
    /// Worker threads of the self-hosted server.
    pub server_workers: usize,
    /// Accept-queue depth of the self-hosted server.
    pub server_queue: usize,
    /// Live fleet dashboard: replaces the one-line reporter with a
    /// rolling per-replica + merged table scraped from each replica's
    /// `/metrics.json` (self-hosted fleets and remote servers alike), and
    /// records the final fleet snapshot into the results file.
    pub dashboard: bool,
    /// Where the JSON results go; empty string suppresses the file.
    pub out: String,
    /// Live progress-report interval; zero silences the reporter.
    pub report: Duration,
    /// Seed for prompt sampling.
    pub seed: u64,
    /// Model profile name (`text-davinci-003`, `gpt-4`,
    /// `gpt-3.5-turbo-16k`).
    pub model: String,
    /// Tier names for a tiered self-hosted server, registration
    /// (cheap → strong) order. Each entry is a model profile name or the
    /// literal `bad` (a deliberately broken tier whose every completion
    /// fails validation — the escalation smoke case). Empty = untiered.
    pub tiers: Vec<String>,
    /// Routing policy when `--tiers` is set.
    pub route_policy: RoutePolicy,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            threads: vec![8],
            duration: Duration::from_secs(10),
            warmup: Duration::from_secs(2),
            arrival: Arrival::Closed,
            skew: Skew::Zipf { theta: 1.1 },
            prompts: 256,
            cache_capacity: 0,
            service_ms: 2,
            tail_prob: 0.0,
            tail_ms: 40,
            replicas: 1,
            hedge_ms: 15,
            target: Target::SelfHosted,
            server_workers: 16,
            server_queue: 64,
            dashboard: false,
            out: "BENCH_load.json".to_string(),
            report: Duration::from_secs(2),
            seed: 42,
            model: "text-davinci-003".to_string(),
            tiers: Vec::new(),
            route_policy: RoutePolicy::CheapFirst,
        }
    }
}

fn parse_secs(value: &str, flag: &str) -> Result<Duration, String> {
    value
        .parse::<f64>()
        .ok()
        .filter(|s| s.is_finite() && *s >= 0.0)
        .map(Duration::from_secs_f64)
        .ok_or_else(|| format!("{flag} wants seconds, got `{value}`"))
}

impl LoadConfig {
    /// Parses `--key=value` CLI flags over the defaults. Unknown flags are
    /// errors (a typo silently falling back to a default would invalidate
    /// a benchmark).
    pub fn parse_args<I, S>(args: I) -> Result<LoadConfig, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut config = LoadConfig::default();
        for arg in args {
            let arg = arg.as_ref();
            let (flag, value) = arg
                .split_once('=')
                .ok_or_else(|| format!("expected --flag=value, got `{arg}`"))?;
            match flag {
                "--threads" => {
                    config.threads = value
                        .split(',')
                        .map(|t| {
                            t.trim()
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n >= 1)
                                .ok_or_else(|| format!("bad thread count `{t}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if config.threads.is_empty() {
                        return Err("--threads wants at least one count".to_string());
                    }
                }
                "--duration" => config.duration = parse_secs(value, flag)?,
                "--warmup" => config.warmup = parse_secs(value, flag)?,
                "--rate" => {
                    config.arrival = if value == "closed" {
                        Arrival::Closed
                    } else if let Some(rps) = value.strip_prefix("open:") {
                        let rps: f64 = rps
                            .parse()
                            .map_err(|_| format!("bad open-loop rate `{rps}`"))?;
                        if !rps.is_finite() || rps <= 0.0 {
                            return Err(format!("open-loop rate must be positive, got `{rps}`"));
                        }
                        Arrival::Open { rps }
                    } else {
                        return Err(format!(
                            "--rate wants `closed` or `open:<rps>`, got `{value}`"
                        ));
                    };
                }
                "--skew" => {
                    config.skew = if value == "uniform" {
                        Skew::Uniform
                    } else if let Some(theta) = value.strip_prefix("zipf:") {
                        let theta: f64 = theta
                            .parse()
                            .map_err(|_| format!("bad zipf exponent `{theta}`"))?;
                        if !theta.is_finite() || theta < 0.0 {
                            return Err(format!("zipf exponent must be >= 0, got `{theta}`"));
                        }
                        Skew::Zipf { theta }
                    } else {
                        return Err(format!(
                            "--skew wants `uniform` or `zipf:<theta>`, got `{value}`"
                        ));
                    };
                }
                "--prompts" => {
                    config.prompts = value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad prompt count `{value}`"))?;
                }
                "--cache" => {
                    config.cache_capacity = value
                        .parse()
                        .map_err(|_| format!("bad cache capacity `{value}`"))?;
                }
                "--service-ms" => {
                    config.service_ms = value
                        .parse()
                        .map_err(|_| format!("bad service time `{value}`"))?;
                }
                "--tail" => {
                    if value == "off" {
                        config.tail_prob = 0.0;
                    } else {
                        let (prob, ms) = value.split_once(':').ok_or_else(|| {
                            format!("--tail wants `P:MS` or `off`, got `{value}`")
                        })?;
                        config.tail_prob = prob
                            .parse::<f64>()
                            .ok()
                            .filter(|p| (0.0..=1.0).contains(p))
                            .ok_or_else(|| format!("bad tail probability `{prob}`"))?;
                        config.tail_ms = ms
                            .parse()
                            .map_err(|_| format!("bad tail milliseconds `{ms}`"))?;
                    }
                }
                "--replicas" => {
                    config.replicas = value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad replica count `{value}`"))?;
                }
                "--hedge-ms" => {
                    config.hedge_ms = value
                        .parse()
                        .map_err(|_| format!("bad hedge delay `{value}`"))?;
                }
                "--server" => {
                    config.target = if value == "self" {
                        Target::SelfHosted
                    } else {
                        Target::Remote(value.to_string())
                    };
                }
                "--server-workers" => {
                    config.server_workers = value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad worker count `{value}`"))?;
                }
                "--server-queue" => {
                    config.server_queue = value
                        .parse()
                        .map_err(|_| format!("bad queue depth `{value}`"))?;
                }
                "--dashboard" => {
                    config.dashboard = match value {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(format!("--dashboard wants `on` or `off`, got `{other}`"))
                        }
                    };
                }
                "--out" => config.out = value.to_string(),
                "--report" => config.report = parse_secs(value, flag)?,
                "--seed" => {
                    config.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "--model" => config.model = value.to_string(),
                "--tiers" => {
                    config.tiers = value
                        .split(',')
                        .map(|t| {
                            let t = t.trim();
                            if t == "bad" || ModelProfile::by_name(t).is_some() {
                                Ok(t.to_string())
                            } else {
                                Err(format!(
                                    "unknown tier `{t}` (want a model profile name or `bad`)"
                                ))
                            }
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "--route-policy" => {
                    config.route_policy =
                        RoutePolicy::parse(value).map_err(|e| format!("--route-policy: {e}"))?;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_invocation_parses() {
        let config = LoadConfig::parse_args([
            "--threads=32",
            "--duration=60",
            "--rate=open:500",
            "--skew=zipf:1.1",
        ])
        .unwrap();
        assert_eq!(config.threads, vec![32]);
        assert_eq!(config.duration, Duration::from_secs(60));
        assert_eq!(config.arrival, Arrival::Open { rps: 500.0 });
        assert_eq!(config.skew, Skew::Zipf { theta: 1.1 });
        assert_eq!(config.arrival.label(), "open:500");
    }

    #[test]
    fn thread_sweep_and_remote_target_parse() {
        let config = LoadConfig::parse_args([
            "--threads=4,8,16",
            "--server=127.0.0.1:9999",
            "--rate=closed",
            "--skew=uniform",
            "--cache=128",
            "--out=",
        ])
        .unwrap();
        assert_eq!(config.threads, vec![4, 8, 16]);
        assert_eq!(config.target, Target::Remote("127.0.0.1:9999".to_string()));
        assert_eq!(config.arrival, Arrival::Closed);
        assert_eq!(config.skew.label(), "uniform");
        assert_eq!(config.cache_capacity, 128);
        assert!(config.out.is_empty());
    }

    #[test]
    fn bad_flags_are_rejected_not_defaulted() {
        assert!(LoadConfig::parse_args(["--rate=sometimes"]).is_err());
        assert!(LoadConfig::parse_args(["--threads=0"]).is_err());
        assert!(LoadConfig::parse_args(["--skew=zipf:banana"]).is_err());
        assert!(LoadConfig::parse_args(["--durations=5"]).is_err());
        assert!(LoadConfig::parse_args(["--rate=open:-3"]).is_err());
        assert!(LoadConfig::parse_args(["--replicas=0"]).is_err());
        assert!(LoadConfig::parse_args(["--tail=0.05"]).is_err());
        assert!(LoadConfig::parse_args(["--tail=1.5:40"]).is_err());
        assert!(LoadConfig::parse_args(["--dashboard=maybe"]).is_err());
    }

    #[test]
    fn topology_flags_parse() {
        let config = LoadConfig::parse_args([
            "--replicas=4",
            "--hedge-ms=12",
            "--tail=0.03:45",
            "--cache=512",
        ])
        .unwrap();
        assert_eq!(config.replicas, 4);
        assert_eq!(config.hedge_ms, 12);
        assert!((config.tail_prob - 0.03).abs() < 1e-9);
        assert_eq!(config.tail_ms, 45);
        let off = LoadConfig::parse_args(["--tail=off", "--hedge-ms=0"]).unwrap();
        assert_eq!(off.tail_prob, 0.0);
        assert_eq!(off.hedge_ms, 0);
    }

    #[test]
    fn tier_flags_parse_strictly() {
        let config = LoadConfig::parse_args([
            "--tiers=bad,gpt-3.5-turbo-16k,gpt-4",
            "--route-policy=budget:200",
        ])
        .unwrap();
        assert_eq!(config.tiers, vec!["bad", "gpt-3.5-turbo-16k", "gpt-4"]);
        assert_eq!(config.route_policy, RoutePolicy::BudgetCapped(200));
        assert_eq!(
            LoadConfig::parse_args(["--route-policy=quality-first"])
                .unwrap()
                .route_policy,
            RoutePolicy::QualityFirst
        );
        // Defaults: untiered, cheap-first.
        assert!(LoadConfig::default().tiers.is_empty());
        assert_eq!(LoadConfig::default().route_policy, RoutePolicy::CheapFirst);
        // Typos are rejected, never defaulted.
        assert!(LoadConfig::parse_args(["--tiers=gpt-5"]).is_err());
        assert!(LoadConfig::parse_args(["--tiers="]).is_err());
        assert!(LoadConfig::parse_args(["--route-policy=cheapest"]).is_err());
        assert!(LoadConfig::parse_args(["--route-policy=budget:lots"]).is_err());
    }

    #[test]
    fn dashboard_flag_parses_and_defaults_off() {
        assert!(!LoadConfig::default().dashboard);
        assert!(
            LoadConfig::parse_args(["--dashboard=on"])
                .unwrap()
                .dashboard
        );
        assert!(
            !LoadConfig::parse_args(["--dashboard=off"])
                .unwrap()
                .dashboard
        );
    }
}
