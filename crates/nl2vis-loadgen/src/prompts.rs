//! The prompt pool and its skewed sampler.
//!
//! Prompts are real: built from the deterministic corpus with the same
//! `build_prompt` path the eval harness uses, so the server parses and
//! completes genuine NL→VQL prompts, not padding. Under Zipf skew the
//! *rank-0* prompt is the hottest — exactly the hot-key pattern that lets
//! the client-side completion cache and the server's single-flight dedup
//! earn their keep under load.

use crate::config::Skew;
use nl2vis_corpus::{Corpus, CorpusConfig};
use nl2vis_data::Rng;
use nl2vis_prompt::{build_prompt, PromptOptions};

/// A fixed pool of rendered prompts plus the distribution over them.
pub struct PromptPool {
    prompts: Vec<String>,
    /// Cumulative probabilities per rank; `None` means uniform.
    cdf: Option<Vec<f64>>,
}

impl PromptPool {
    /// Builds `n` prompts from the deterministic corpus (cycling the
    /// example set if `n` exceeds it) with the given skew. Rank order is
    /// the corpus order, so the hot set is stable across runs with the
    /// same seed.
    pub fn build(n: usize, skew: Skew, seed: u64) -> PromptPool {
        let corpus = Corpus::build(&CorpusConfig::small(seed));
        let mut prompts = Vec::with_capacity(n);
        let options = PromptOptions::default();
        for i in 0..n {
            let example = &corpus.examples[i % corpus.examples.len()];
            let db = corpus
                .catalog
                .database(&example.db)
                .expect("corpus database");
            let mut prompt = build_prompt(&options, db, &example.nl, &[], |d| {
                corpus.catalog.database(&d.db).expect("demo database")
            })
            .text;
            if i >= corpus.examples.len() {
                // Disambiguate recycled examples so every rank is a distinct
                // cache key.
                prompt.push_str(&format!("\n-- variant {}", i / corpus.examples.len()));
            }
            prompts.push(prompt);
        }
        let cdf = match skew {
            Skew::Uniform => None,
            Skew::Zipf { theta } => {
                let weights: Vec<f64> =
                    (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(theta)).collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                Some(
                    weights
                        .iter()
                        .map(|w| {
                            acc += w / total;
                            acc
                        })
                        .collect(),
                )
            }
        };
        PromptPool { prompts, cdf }
    }

    /// Number of distinct prompts.
    pub fn len(&self) -> usize {
        self.prompts.len()
    }

    /// True when the pool is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.prompts.is_empty()
    }

    /// Draws a rank from the configured distribution.
    pub fn sample_rank(&self, rng: &mut Rng) -> usize {
        match &self.cdf {
            None => rng.below_usize(self.prompts.len()),
            Some(cdf) => {
                let u = rng.f64();
                // First rank whose cumulative probability covers `u`.
                cdf.partition_point(|&c| c < u).min(self.prompts.len() - 1)
            }
        }
    }

    /// The prompt at `rank`.
    pub fn prompt(&self, rank: usize) -> &str {
        &self.prompts[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_produces_distinct_real_prompts() {
        let pool = PromptPool::build(64, Skew::Uniform, 7);
        assert_eq!(pool.len(), 64);
        assert!(pool.prompt(0).contains("VQL"), "real prompt expected");
        let mut seen = std::collections::HashSet::new();
        for r in 0..pool.len() {
            assert!(seen.insert(pool.prompt(r).to_string()), "rank {r} repeats");
        }
    }

    #[test]
    fn zipf_sampling_concentrates_on_low_ranks() {
        let pool = PromptPool::build(100, Skew::Zipf { theta: 1.1 }, 7);
        let mut rng = Rng::new(3);
        let mut counts = vec![0u64; pool.len()];
        let draws = 20_000;
        for _ in 0..draws {
            counts[pool.sample_rank(&mut rng)] += 1;
        }
        // Rank 0 carries far more than the uniform share...
        assert!(
            counts[0] as f64 / draws as f64 > 0.10,
            "rank 0 got {} of {draws}",
            counts[0]
        );
        // ...ranks are (statistically) monotone hot→cold at the head...
        assert!(counts[0] > counts[10], "{} vs {}", counts[0], counts[10]);
        assert!(counts[1] > counts[30], "{} vs {}", counts[1], counts[30]);
        // ...and the tail still gets occasional traffic.
        let tail: u64 = counts[50..].iter().sum();
        assert!(tail > 0, "tail never sampled");
    }

    #[test]
    fn uniform_sampling_spreads_across_the_pool() {
        let pool = PromptPool::build(50, Skew::Uniform, 7);
        let mut rng = Rng::new(3);
        let mut counts = vec![0u64; pool.len()];
        for _ in 0..10_000 {
            counts[pool.sample_rank(&mut rng)] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(min > 0, "every rank sampled");
        assert!(max < 5 * min.max(1), "uniform draw skewed: {min}..{max}");
    }
}
