//! Regression detection between two `BENCH_load.json` files.
//!
//! Runs are matched by `(threads, rate, replicas)` (`replicas` defaults to
//! 1 for pre-topology rows); a metric regresses when it moves past the
//! relative threshold in the bad direction (throughput down, corrected
//! p50/p99 up, shed rate up). Latency comparisons also require a small
//! absolute movement so micro-runs don't flag on scheduler noise.
//!
//! Runs present in only one file are never silently dropped: both sides'
//! unmatched keys are listed in the report, and `--strict` mode treats a
//! baseline run the candidate lacks as a failure — otherwise deleting a
//! topology row would delete its regression coverage with it.

use nl2vis_data::Json;

/// The outcome of comparing two benchmark files.
pub struct DiffReport {
    /// Fixed-width comparison table, one row per matched (metric, run).
    pub table: String,
    /// Human-readable description of each regression found.
    pub regressions: Vec<String>,
    /// Runs present in only one of the files (total across both sides).
    pub unmatched: usize,
    /// Keys of baseline runs the candidate has no counterpart for — lost
    /// coverage; `--strict` fails on these.
    pub unmatched_baseline: Vec<String>,
    /// Keys of candidate runs the baseline has no counterpart for — new
    /// coverage, informational.
    pub unmatched_candidate: Vec<String>,
}

impl DiffReport {
    /// True when no metric crossed the threshold.
    pub fn clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// True when clean *and* every baseline run still has a counterpart —
    /// the bar `--strict` holds the candidate to.
    pub fn strict_clean(&self) -> bool {
        self.clean() && self.unmatched_baseline.is_empty()
    }
}

fn runs_of(doc: &Json) -> Vec<&Json> {
    doc.get("runs")
        .and_then(Json::as_array)
        .map(|runs| runs.iter().collect())
        .unwrap_or_default()
}

#[derive(PartialEq, Clone)]
struct RunKey {
    threads: i64,
    rate: String,
    replicas: i64,
    /// Hedge delay of a routed run (0 = unhedged / pre-hedging rows): a
    /// hedged run and an unhedged one at the same topology are different
    /// experiments, never comparable.
    hedge_ms: i64,
    /// `policy/tier,tier,...` of a tiered run; empty for untiered runs
    /// and for pre-routing rows. A tiered run's latency includes
    /// escalation round-trips, so it never compares against an untiered
    /// run (or a different tier stack) at the same thread count.
    tiers: String,
}

impl std::fmt::Display for RunKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "threads={} rate={}", self.threads, self.rate)?;
        if self.replicas != 1 {
            write!(f, " replicas={}", self.replicas)?;
        }
        if self.hedge_ms != 0 {
            write!(f, " hedge={}ms", self.hedge_ms)?;
        }
        if !self.tiers.is_empty() {
            write!(f, " tiers={}", self.tiers)?;
        }
        Ok(())
    }
}

fn run_key(run: &Json) -> RunKey {
    RunKey {
        threads: run.get("threads").and_then(Json::as_f64).unwrap_or(0.0) as i64,
        rate: run
            .get("rate")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        replicas: run.get("replicas").and_then(Json::as_f64).unwrap_or(1.0) as i64,
        hedge_ms: run.get("hedge_ms").and_then(Json::as_f64).unwrap_or(0.0) as i64,
        tiers: run
            .get("tiers")
            .map(|t| {
                let names = t
                    .get("tiers")
                    .and_then(Json::as_array)
                    .map(|rows| {
                        rows.iter()
                            .filter_map(|r| r.get("name").and_then(Json::as_str))
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .unwrap_or_default();
                let policy = t.get("policy").and_then(Json::as_str).unwrap_or("?");
                format!("{policy}/{names}")
            })
            .unwrap_or_default(),
    }
}

fn number(run: &Json, path: &[&str]) -> Option<f64> {
    let mut node = run;
    for key in path {
        node = node.get(key)?;
    }
    node.as_f64()
}

/// Latency below which relative movement is noise, not regression
/// (milliseconds).
const LATENCY_FLOOR_MS: f64 = 0.5;

/// Compares `baseline` against `candidate`, flagging moves beyond
/// `threshold` (relative, e.g. `0.2` = 20%).
pub fn diff(baseline: &Json, candidate: &Json, threshold: f64) -> DiffReport {
    struct Metric {
        label: &'static str,
        path: &'static [&'static str],
        /// +1: bigger is better (throughput); -1: smaller is better.
        direction: f64,
        /// Absolute slack under which movement is ignored.
        floor: f64,
    }
    const METRICS: &[Metric] = &[
        Metric {
            label: "throughput_rps",
            path: &["throughput_rps"],
            direction: 1.0,
            floor: 1.0,
        },
        Metric {
            label: "p50_corrected_ms",
            path: &["latency_ms", "e2e_corrected", "p50_ms"],
            direction: -1.0,
            floor: LATENCY_FLOOR_MS,
        },
        Metric {
            label: "p99_corrected_ms",
            path: &["latency_ms", "e2e_corrected", "p99_ms"],
            direction: -1.0,
            floor: LATENCY_FLOOR_MS,
        },
        Metric {
            label: "shed_rate",
            path: &["shed_rate"],
            direction: -1.0,
            floor: 0.05,
        },
    ];

    let old_runs = runs_of(baseline);
    let new_runs = runs_of(candidate);
    let mut table = format!(
        "{:<9} {:<10} {:<18} {:>12} {:>12} {:>9}  {}\n{}\n",
        "threads",
        "rate",
        "metric",
        "baseline",
        "candidate",
        "change",
        "verdict",
        "-".repeat(86),
    );
    let mut regressions = Vec::new();
    let mut matched = 0usize;
    let mut unmatched_baseline = Vec::new();

    for old in &old_runs {
        let key = run_key(old);
        let Some(new) = new_runs.iter().find(|r| run_key(r) == key) else {
            unmatched_baseline.push(key.to_string());
            continue;
        };
        matched += 1;
        let rate_cell = if key.replicas == 1 {
            key.rate.clone()
        } else {
            format!("{} x{}", key.rate, key.replicas)
        };
        for metric in METRICS {
            let (Some(was), Some(now)) = (number(old, metric.path), number(new, metric.path))
            else {
                continue;
            };
            let change = if was.abs() < 1e-9 {
                if now.abs() < 1e-9 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (now - was) / was
            };
            // A regression moves against the metric's good direction by
            // more than the threshold AND by more than the absolute floor.
            let bad_move = change * metric.direction < -threshold;
            let past_floor = (now - was).abs() > metric.floor;
            let regressed = bad_move && past_floor;
            let verdict = if regressed {
                "REGRESSED"
            } else if change * metric.direction > threshold && past_floor {
                "improved"
            } else {
                "ok"
            };
            let change_text = if change.is_infinite() {
                "new".to_string()
            } else {
                format!("{:+.1}%", change * 100.0)
            };
            table.push_str(&format!(
                "{:<9} {:<10} {:<18} {:>12.3} {:>12.3} {:>9}  {}\n",
                key.threads, rate_cell, metric.label, was, now, change_text, verdict
            ));
            if regressed {
                regressions.push(format!(
                    "{key}: {} {:.3} -> {:.3} ({})",
                    metric.label, was, now, change_text
                ));
            }
        }
    }
    let unmatched_candidate: Vec<String> = new_runs
        .iter()
        .filter(|new| {
            let key = run_key(new);
            !old_runs.iter().any(|old| run_key(old) == key)
        })
        .map(|new| run_key(new).to_string())
        .collect();
    let unmatched = unmatched_baseline.len() + unmatched_candidate.len();
    if matched == 0 {
        table.push_str("(no comparable runs: thread/rate combinations do not overlap)\n");
    }
    DiffReport {
        table,
        regressions,
        unmatched,
        unmatched_baseline,
        unmatched_candidate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(threads: i64, rps: f64, p99: f64, shed: f64) -> Json {
        Json::parse(&format!(
            r#"{{"experiment":"load","runs":[{{"threads":{threads},"rate":"open:500",
                "throughput_rps":{rps},"shed_rate":{shed},
                "latency_ms":{{"e2e_corrected":{{"p50_ms":1.0,"p99_ms":{p99}}}}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn clean_when_metrics_hold() {
        let report = diff(&doc(8, 500.0, 12.0, 0.0), &doc(8, 495.0, 12.5, 0.0), 0.2);
        assert!(report.clean(), "{:?}", report.regressions);
        assert!(report.table.contains("throughput_rps"), "{}", report.table);
        assert!(report.table.contains("ok"), "{}", report.table);
    }

    #[test]
    fn throughput_drop_and_p99_rise_are_flagged() {
        let report = diff(&doc(8, 500.0, 12.0, 0.0), &doc(8, 300.0, 30.0, 0.0), 0.2);
        assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
        assert!(report.table.contains("REGRESSED"), "{}", report.table);
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("throughput_rps")));
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("p99_corrected_ms")));
    }

    #[test]
    fn tiny_absolute_latency_noise_is_not_a_regression() {
        // 0.1ms -> 0.3ms is +200% but under the absolute floor.
        let report = diff(&doc(8, 500.0, 0.1, 0.0), &doc(8, 500.0, 0.3, 0.0), 0.2);
        assert!(report.clean(), "{:?}", report.regressions);
    }

    #[test]
    fn unmatched_runs_are_listed_on_both_sides() {
        let report = diff(&doc(8, 500.0, 12.0, 0.0), &doc(16, 900.0, 20.0, 0.0), 0.2);
        assert!(report.clean());
        assert!(
            !report.strict_clean(),
            "lost baseline coverage must fail strict"
        );
        assert_eq!(report.unmatched, 2);
        assert_eq!(report.unmatched_baseline, vec!["threads=8 rate=open:500"]);
        assert_eq!(report.unmatched_candidate, vec!["threads=16 rate=open:500"]);
        assert!(
            report.table.contains("no comparable runs"),
            "{}",
            report.table
        );
    }

    fn topology_doc(replicas: i64, extra_plain_run: bool) -> Json {
        let plain = if extra_plain_run {
            r#"{"threads":8,"rate":"open:500","throughput_rps":500.0,"shed_rate":0.0,
                "latency_ms":{"e2e_corrected":{"p50_ms":1.0,"p99_ms":12.0}}},"#
        } else {
            ""
        };
        Json::parse(&format!(
            r#"{{"experiment":"load","runs":[{plain}
                {{"threads":8,"rate":"open:500","replicas":{replicas},
                  "throughput_rps":900.0,"shed_rate":0.0,
                  "latency_ms":{{"e2e_corrected":{{"p50_ms":1.0,"p99_ms":6.0}}}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn new_candidate_rows_do_not_fail_strict() {
        // The candidate gained a topology row the baseline never had.
        let report = diff(&doc(8, 500.0, 12.0, 0.0), &topology_doc(4, true), 0.2);
        assert!(report.strict_clean(), "{:?}", report.unmatched_baseline);
        assert_eq!(
            report.unmatched_candidate,
            vec!["threads=8 rate=open:500 replicas=4"]
        );
    }

    #[test]
    fn replica_count_separates_otherwise_identical_runs() {
        // Same threads/rate but different replica counts: not comparable.
        let report = diff(&doc(8, 500.0, 12.0, 0.0), &topology_doc(4, false), 0.2);
        assert_eq!(report.unmatched, 2);
        assert!(report.clean());
        assert!(!report.strict_clean());
    }

    fn hedge_doc(hedge_ms: i64) -> Json {
        Json::parse(&format!(
            r#"{{"experiment":"load","runs":[{{"threads":8,"rate":"closed","replicas":4,
                "hedge_ms":{hedge_ms},"throughput_rps":900.0,"shed_rate":0.0,
                "latency_ms":{{"e2e_corrected":{{"p50_ms":1.0,"p99_ms":6.0}}}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn hedge_delay_separates_otherwise_identical_topology_runs() {
        // Same threads/rate/replicas but hedged vs unhedged: different
        // experiments, never compared against each other.
        let report = diff(&hedge_doc(12), &hedge_doc(0), 0.2);
        assert_eq!(report.unmatched, 2);
        assert_eq!(
            report.unmatched_baseline,
            vec!["threads=8 rate=closed replicas=4 hedge=12ms"]
        );
        let report = diff(&hedge_doc(12), &hedge_doc(12), 0.2);
        assert_eq!(report.unmatched, 0);
        assert!(report.strict_clean());
    }

    #[test]
    fn pre_fleet_baselines_match_fleet_era_candidates() {
        // A baseline written before the router/fleet fields existed has
        // no `replicas`, `hedge_ms`, `router`, or `fleet` members. A
        // candidate row from the fleet-era harness carries all of them
        // (with the default topology). The keys must still match, the
        // extra candidate fields must be ignored, and the diff stays
        // clean when the shared metrics hold.
        let old = Json::parse(
            r#"{"experiment":"load","runs":[{"threads":8,"rate":"open:500",
                "throughput_rps":500.0,"shed_rate":0.0,
                "latency_ms":{"e2e_corrected":{"p50_ms":1.0,"p99_ms":12.0}}}]}"#,
        )
        .unwrap();
        let new = Json::parse(
            r#"{"experiment":"load","runs":[{"threads":8,"rate":"open:500",
                "replicas":1,"hedge_ms":0,
                "throughput_rps":505.0,"shed_rate":0.0,
                "latency_ms":{"e2e_corrected":{"p50_ms":1.0,"p99_ms":12.2}},
                "router":{"requests":100,"hedges_fired":3},
                "fleet":{"replicas_ok":1,"slo":[{"name":"latency","fast_burn":0.0}]}}]}"#,
        )
        .unwrap();
        let report = diff(&old, &new, 0.2);
        assert_eq!(report.unmatched, 0, "{:?}", report.unmatched_baseline);
        assert!(report.strict_clean(), "{:?}", report.regressions);
    }

    #[test]
    fn pre_routing_baselines_match_routing_era_candidates() {
        // A baseline written before tiered routing existed has no `tiers`
        // or `route_policy` members anywhere. An *untiered* candidate row
        // from the routing-era harness adds the top-level fields (empty
        // stack, default policy) but no per-run `tiers` object. Keys must
        // still match and the diff stays clean.
        let old = Json::parse(
            r#"{"experiment":"load","runs":[{"threads":8,"rate":"open:500",
                "throughput_rps":500.0,"shed_rate":0.0,
                "latency_ms":{"e2e_corrected":{"p50_ms":1.0,"p99_ms":12.0}}}]}"#,
        )
        .unwrap();
        let new = Json::parse(
            r#"{"experiment":"load","tiers":[],"route_policy":"cheap-first",
                "runs":[{"threads":8,"rate":"open:500","replicas":1,"hedge_ms":0,
                "throughput_rps":505.0,"shed_rate":0.0,
                "latency_ms":{"e2e_corrected":{"p50_ms":1.0,"p99_ms":12.2}}}]}"#,
        )
        .unwrap();
        let report = diff(&old, &new, 0.2);
        assert_eq!(report.unmatched, 0, "{:?}", report.unmatched_baseline);
        assert!(report.strict_clean(), "{:?}", report.regressions);
    }

    fn tiered_doc(policy: &str) -> Json {
        Json::parse(&format!(
            r#"{{"experiment":"load","runs":[{{"threads":8,"rate":"open:500",
                "throughput_rps":480.0,"shed_rate":0.0,
                "latency_ms":{{"e2e_corrected":{{"p50_ms":1.2,"p99_ms":14.0}}}},
                "tiers":{{"policy":"{policy}","requests_total":100,
                    "escalations_total":12,"cost_units":1300,
                    "tiers":[{{"name":"gpt-3.5-turbo-16k","requests":100,"escalations":12}},
                             {{"name":"gpt-4","requests":12,"escalations":0}}]}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn tier_stack_separates_otherwise_identical_runs() {
        // Tiered vs untiered at the same threads/rate: a tiered run's
        // latency includes escalation round-trips, so they never compare.
        let report = diff(&doc(8, 500.0, 12.0, 0.0), &tiered_doc("cheap-first"), 0.2);
        assert_eq!(report.unmatched, 2);
        assert!(report.clean());
        assert!(report
            .unmatched_candidate
            .iter()
            .any(|k| k.contains("tiers=cheap-first/gpt-3.5-turbo-16k,gpt-4")));
        // Same stack, different policy: still different experiments.
        let report = diff(
            &tiered_doc("cheap-first"),
            &tiered_doc("quality-first"),
            0.2,
        );
        assert_eq!(report.unmatched, 2);
        // Identical stack and policy: comparable.
        let report = diff(&tiered_doc("cheap-first"), &tiered_doc("cheap-first"), 0.2);
        assert_eq!(report.unmatched, 0);
        assert!(report.strict_clean());
    }

    #[test]
    fn shed_rate_increase_is_flagged() {
        let report = diff(&doc(8, 500.0, 12.0, 0.0), &doc(8, 500.0, 12.0, 0.4), 0.2);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].contains("shed_rate"));
    }
}
