//! Sustained-load smoke tests: bounded observability memory, windowed vs
//! cumulative convergence, and the coordinated-omission correction being
//! real (not just two names for the same number).
//!
//! Scaled for a small CI box (the container has one core): a couple of
//! seconds of closed-loop traffic is still thousands of requests.

use nl2vis_data::Json;
use nl2vis_loadgen::{run_load, Arrival, LoadConfig, Skew};
use nl2vis_obs as obs;
use std::sync::Arc;
use std::time::Duration;

fn quick(threads: usize, arrival: Arrival) -> LoadConfig {
    LoadConfig {
        threads: vec![threads],
        duration: Duration::from_millis(1500),
        warmup: Duration::from_millis(300),
        arrival,
        skew: Skew::Zipf { theta: 1.1 },
        prompts: 64,
        cache_capacity: 0,
        service_ms: 0,
        report: Duration::ZERO,
        out: String::new(),
        ..LoadConfig::default()
    }
}

/// The flagship bounded-memory test: a multi-thousand-request run with a
/// small flight recorder installed must respect every ring bound (stored
/// traces, active map) while the windowed view converges on the
/// cumulative one. One test owns the global recorder — parallel tests
/// must not install their own.
#[test]
fn sustained_load_keeps_observability_memory_bounded() {
    let recorder = Arc::new(obs::FlightRecorder::new(64));
    obs::recorder::install(Arc::clone(&recorder));

    // 3 s closed-loop: thousands of requests in release, comfortably
    // over a thousand even in a contended debug run on one core.
    let mut config = quick(4, Arrival::Closed);
    config.duration = Duration::from_millis(3000);
    let (json, runs) = run_load(&config).expect("load run");
    obs::recorder::disable();

    let run = &runs[0];
    assert!(
        run.ok > 800,
        "expected a multi-hundred-to-thousand-request run, got {} ok ({} errors)",
        run.ok,
        run.errors
    );
    assert_eq!(run.errors, 0, "closed-loop run must not error");

    // Ring bound: stored traces never exceed capacity no matter how many
    // thousands of requests flowed through.
    assert!(
        recorder.len() <= 64,
        "recorder stored {} traces, capacity 64",
        recorder.len()
    );
    // Active-map bound: in-flight traces are capped at capacity*4; after
    // the run drained there should be almost nothing in flight at all.
    assert!(
        recorder.active_len() <= 256,
        "active map grew to {}",
        recorder.active_len()
    );
    let stats = recorder.stats();
    assert!(
        stats.finalized > 800,
        "server spans must have flowed through the recorder: {stats:?}"
    );

    // Windowed p99 converges on cumulative p99 on a steady workload: the
    // server's own /stats snapshot carries both views of the same
    // histogram name.
    let server_stats = run.server_stats.as_ref().expect("server /stats snapshot");
    let latency = server_stats.get("latency_us").expect("latency_us");
    let window_p99 = latency
        .get("window")
        .and_then(|w| w.get("p99_us"))
        .and_then(Json::as_f64)
        .expect("window p99");
    let cumulative_p99 = latency
        .get("cumulative")
        .and_then(|c| c.get("p99_us"))
        .and_then(Json::as_f64)
        .expect("cumulative p99");
    assert!(window_p99 > 0.0 && cumulative_p99 > 0.0);
    let ratio = window_p99 / cumulative_p99;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "windowed p99 {window_p99} vs cumulative {cumulative_p99} diverged (ratio {ratio:.2})"
    );

    // The emitted document carries the run.
    let runs_json = json.get("runs").and_then(Json::as_array).unwrap();
    assert_eq!(runs_json.len(), 1);
    assert!(
        runs_json[0]
            .get("latency_ms")
            .and_then(|l| l.get("e2e_corrected"))
            .is_some(),
        "{}",
        json.to_pretty()
    );
}

/// Coordinated-omission correction must *matter*: drive an open loop at a
/// rate the (deliberately tiny) server cannot sustain and the corrected
/// p99 must dwarf the uncorrected one, because uncorrected latency only
/// measures the requests the generator got around to sending.
#[test]
fn correction_diverges_from_uncorrected_at_saturation() {
    let mut config = quick(4, Arrival::Open { rps: 400.0 });
    // ~2 workers x 8ms service = ~250 rps capacity, under the 400 target.
    config.service_ms = 8;
    config.server_workers = 2;
    let (_, runs) = run_load(&config).expect("load run");
    let run = &runs[0];
    assert!(run.ok > 100, "saturated run still completes requests");
    let corrected = run.e2e_corrected.p99;
    let uncorrected = run.e2e_uncorrected.p99;
    assert!(
        corrected > 1.5 * uncorrected,
        "corrected p99 {corrected} must exceed uncorrected {uncorrected} at saturation"
    );
    // The queue phase is where the correction lives: scheduling delay
    // accounts for the gap.
    assert!(run.queue.p99 > 0.0, "queue phase must have recorded delay");
}

/// A routed 2-replica fleet: prompt affinity keeps the hot Zipf ranks
/// hitting the per-replica cache shards, the heavy tail makes hedges
/// fire, and the emitted run row carries the topology and router stats.
#[test]
fn routed_fleet_keeps_shard_hits_and_hedges_the_tail() {
    let mut config = quick(4, Arrival::Closed);
    config.replicas = 2;
    config.cache_capacity = 256;
    config.service_ms = 2;
    config.tail_prob = 0.05;
    config.tail_ms = 60;
    config.hedge_ms = 10;
    config.duration = Duration::from_millis(2000);
    let (json, runs) = run_load(&config).expect("load run");
    let run = &runs[0];
    assert_eq!(run.replicas, 2);
    assert!(run.ok > 100, "routed run too small: {} ok", run.ok);
    assert_eq!(run.errors, 0, "routed closed-loop run must not error");
    let router = run.router.as_ref().expect("router stats on routed runs");
    assert!(
        router.shard_hits > 0 && run.cache_hit_rate() > 0.3,
        "zipf hot ranks must hit the replica shards: {} hits, rate {:.2}",
        router.shard_hits,
        run.cache_hit_rate()
    );
    assert!(
        router.hedges_fired > 0,
        "a 5% 60ms tail over a 10ms hedge delay must fire hedges"
    );
    let row = json.get("runs").and_then(|r| r.at(0)).expect("run row");
    assert_eq!(row.get("replicas").and_then(Json::as_f64), Some(2.0));
    assert!(
        row.get("router")
            .and_then(|r| r.get("hedges_fired"))
            .and_then(Json::as_f64)
            .is_some_and(|n| n >= 1.0),
        "{}",
        row.to_pretty()
    );
}

/// Zipf skew + the client-side completion cache: hot ranks answer locally,
/// so the hit rate is substantial and cache hits count as completions.
#[test]
fn zipf_skew_drives_cache_hits() {
    let mut config = quick(2, Arrival::Closed);
    config.cache_capacity = 256;
    config.duration = Duration::from_millis(1000);
    let (json, runs) = run_load(&config).expect("load run");
    let run = &runs[0];
    assert!(run.ok > 200, "run too small to judge: {} ok", run.ok);
    assert!(
        run.cache_hit_rate() > 0.5,
        "zipf:1.1 over 64 prompts should mostly hit a 256-entry cache, got {:.2}",
        run.cache_hit_rate()
    );
    let rate = json
        .get("runs")
        .and_then(|r| r.at(0))
        .and_then(|r| r.get("cache_hit_rate"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!((rate - run.cache_hit_rate()).abs() < 1e-9);
}
